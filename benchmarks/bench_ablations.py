"""Benchmark E6 — ablations of the happens-before relation.

The paper argues (§1, §4.1, §7) that both prior relation families and
their naive combination fail on Android.  This benchmark runs every
relation through the unchanged detection pipeline on the same traces and
regenerates the comparison:

* multithreaded-only  — misses every single-threaded race;
* event-driven-only   — false positives on lock/fork-ordered pairs;
* naive combination   — misses races masked by spurious lock transitivity;
* no-enable           — false positives on lifecycle-ordered pairs;
* no-fifo             — spurious races between FIFO-ordered tasks.
"""

import pytest

from conftest import publish
from repro.apps.registry import DEMO_APPS
from repro.apps.specs import SPEC_BY_NAME
from repro.apps.synthetic import SyntheticApp
from repro.core import detect_races
from repro.core.baselines import ALL_CONFIGS
from repro.core.happens_before import ANDROID_HB
from repro.explorer import UIExplorer


@pytest.fixture(scope="module")
def ablation_traces(paper_results):
    names = ("Music Player", "Messenger", "SGTPuzzles")
    return {
        name: next(r.trace for r in paper_results if r.spec.name == name)
        for name in names
    }


def test_ablation_comparison_table(ablation_traces):
    lines = [
        "%-14s | %s" % ("relation", " | ".join("%-14s" % n for n in ablation_traces)),
        "-" * (18 + 17 * len(ablation_traces)),
    ]
    counts = {}
    for config_name, config in ALL_CONFIGS.items():
        row = []
        for app_name, trace in ablation_traces.items():
            report = detect_races(trace, config=config)
            counts[(config_name, app_name)] = len(report.races)
            row.append("%-14d" % len(report.races))
        lines.append("%-14s | %s" % (config_name, " | ".join(row)))
    publish("ablations.txt", "\n".join(lines))

    for app_name in ablation_traces:
        android = counts[("android", app_name)]
        # Event-only reports a superset of pairs (no lock/fork ordering).
        assert counts[("event-driven-only", app_name)] >= android
        # The naive combination only ever adds orderings.
        assert counts[("naive-combined", app_name)] <= android
        # Dropping enables can only add reports.
        assert counts[("no-enable", app_name)] >= android
        # Dropping FIFO can only add reports.
        assert counts[("no-fifo", app_name)] >= android


def test_mt_only_misses_all_single_threaded_races(ablation_traces):
    from repro.core.baselines import MULTITHREADED_ONLY

    trace = ablation_traces["Music Player"]  # all races single-threaded
    android = detect_races(trace, config=ANDROID_HB)
    mt_only = detect_races(trace, config=MULTITHREADED_ONLY)
    assert len(android.races) == 35
    single_threaded = [r for r in mt_only.races if r.is_single_threaded]
    assert single_threaded == []


def test_no_enable_flags_lifecycle_pairs(paper_results):
    """On the live music player with a realistic binder *pool* (lifecycle
    posts arrive on different binder threads, so binder program order
    cannot substitute for the enable edges), dropping enables produces
    lifecycle false positives."""
    from repro.android import AndroidSystem, UIEvent
    from repro.apps.music_player import DwFileAct
    from repro.core.baselines import NO_ENABLE

    # Two binder threads: LAUNCH_ACTIVITY and onDestroy arrive on different
    # ones, so binder program order cannot stand in for the enable edge.
    system = AndroidSystem(seed=3, name="music-player", binder_threads=2)
    system.launch(DwFileAct)
    system.run_to_quiescence()
    system.fire(UIEvent("back"))
    system.run_to_quiescence()
    trace = system.finish()
    android = detect_races(trace)
    without = detect_races(trace, config=NO_ENABLE)
    assert len(without.races) > len(android.races)
    # With enables the lifecycle pairs stay ordered: same reports as the
    # single-binder run.
    assert len(android.races) == 2


def test_ablation_speed(benchmark, ablation_traces):
    trace = ablation_traces["Messenger"]

    def run_all_relations():
        return [len(detect_races(trace, config=c).races) for c in ALL_CONFIGS.values()]

    counts = benchmark.pedantic(run_all_relations, rounds=1, iterations=1)
    assert len(counts) == len(ALL_CONFIGS)
