"""Closure-engine benchmark: full re-sweep vs incremental delta saturation.

Measures the two halves of the PR-2 optimisation on ladder traces
(:mod:`repro.apps.ladder` — adversarial inputs needing one outer
FIFO/NOPRE round per level):

* **saturation** — :class:`HappensBefore` construction with
  ``saturation="full"`` (re-sweep every row each round) vs
  ``saturation="incremental"`` (delta propagation through the closure
  predecessor index);
* **detection** — end-to-end :func:`detect_races` with the slow pair
  (``full`` + ``pairwise``) vs the fast pair (``incremental`` +
  ``batched``).

Every measurement double-checks equivalence (identical ``st``/``mt``
rows, identical reports) before recording a time, so the numbers can
never come from diverging analyses.

A second sweep compares the two *reachability backends* (``bitmask``
vs ``chains``, see :mod:`repro.core.reachability`) across trace sizes,
reporting wall time and peak/steady-state closure memory — the chains
backend trades O(n²) bits for O(n·C) ints, so its advantage grows with
the node-per-chain ratio (the ``body`` ladder parameter).  Its full run
ends with the PR-7 **100k-node saturation point**: a
:func:`repro.apps.ladder.scaled_ladder_trace` closed with the previous
best configuration (chains + incremental, reference kernel, no merging)
against the optimised one (word-batched kernel + chain merging), plus
the same optimised closure sharded across each ``--workers N[,M...]``
count — every configuration must reproduce the same sampled closure
rows, and the optimised saturation must beat the baseline by ≥ 5x.

This is a plain script, not a pytest file (the pytest benchmark suite in
this directory regenerates the paper's tables; this one guards a code
path).  Run it from the repository root:

    python benchmarks/bench_closure.py                      # saturation sweep
    python benchmarks/bench_closure.py --smoke              # tiny sizes, CI gate
    python benchmarks/bench_closure.py --reachability       # backend sweep
    python benchmarks/bench_closure.py --reachability-smoke # CI backend gate

The full runs write ``benchmarks/results/BENCH_closure.json`` /
``BENCH_reachability.json`` and fail if the largest configuration's
saturation speedup (resp. closure-memory reduction) drops below 5x; the
smoke runs use second-sized traces: ``--smoke`` asserts the incremental
path is not slower than the full sweep, ``--reachability-smoke`` asserts
the chains backend is bit-identical to bitmask on a mid-size ladder and
stays within 2x of its O(n·C) memory budget.

When a run-history directory is configured (``--history DIR`` or
``$DROIDRACER_HISTORY``, see ``docs/observability.md``), every sweep
additionally appends a :class:`repro.obs.RunRecord` — command
``bench.closure`` / ``bench.reachability`` — whose ``extra["payload"]``
on full runs is the exact result document above, making the committed
``BENCH_*.json`` files derived views (``droidracer obs history
--export-bench``).  Without a history dir the script writes exactly
what it always wrote.
"""

import hashlib
import json
import pathlib
import subprocess
import sys

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC_DIR)

from repro.apps.ladder import (  # noqa: E402
    ladder_trace,
    lock_handoff_trace,
    wide_trace,
)
from repro.core import (  # noqa: E402
    BACKEND_BITMASK,
    BACKEND_CHAINS,
    HappensBefore,
    KERNEL_AUTO,
    KERNEL_PYTHON,
    KERNEL_WORDS,
    SAT_FULL,
    SAT_INCREMENTAL,
    detect_races,
)
from repro.core.reachability import fork_available  # noqa: E402
from repro.core.race_detector import ENUM_BATCHED, ENUM_PAIRWISE  # noqa: E402
from repro.obs import (  # noqa: E402
    HistoryStore,
    RunRecord,
    Tracer,
    combine_digests,
    report_digest,
    resolve_history_dir,
    use_tracer,
)

RESULTS = pathlib.Path(__file__).resolve().parent / "results"

#: (levels, width) ladder sizes.  The full list tops out above 2000 graph
#: nodes; the smoke list keeps CI under a few seconds.
FULL_SIZES = [(14, 8), (20, 12), (30, 17), (34, 19)]
SMOKE_SIZES = [(5, 3), (8, 4), (10, 5)]

#: (levels, width, body) sizes for the backend sweep.  ``body`` inflates
#: the per-task node count without adding chains, sweeping the node-per-
#: chain ratio the backends trade on; the smallest size sits near the
#: memory crossover, the largest exceeds 10k nodes.
REACH_SIZES = [(4, 3, 6), (8, 4, 20), (10, 5, 30), (14, 6, 40)]
REACH_SMOKE_SIZE = (6, 3, 8)

#: Acceptance floor for the full run, checked on the largest config.
MIN_SPEEDUP = 5.0

#: Acceptance floor for the backend sweep: closure-memory reduction of
#: chains vs bitmask on the largest (>= 10k node) ladder.
MIN_MEMORY_RATIO = 5.0

#: The 100k-node saturation point (PR 7): requested size for
#: :func:`repro.apps.ladder.scaled_ladder_trace` (the coalesced graph
#: must still exceed 100k nodes) and the acceptance floor for the
#: optimised configuration (auto kernel + chain merging) against the
#: previous best (chains backend, reference kernel, no merging) —
#: measured on saturation wall-clock only, rule derivation excluded.
SCALE_NODES = 102_000
MIN_SATURATION_SPEEDUP = 5.0

#: Loop-stall guard for the sharded sweeps: one smoke saturation must
#: never need more than this many ``closure.shard_pass`` fan-outs.
SHARD_PASS_BUDGET = 48

#: The chains backend's own budget: the reach table is ``4·n·C`` bytes
#: and every other structure is O(n) with a small constant; exceeding
#: twice this envelope means the O(n·C) bound is broken in practice.
def _chains_budget_bytes(nodes, chains):
    return nodes * (4 * chains + 256)


def _parse_history(argv):
    """Split ``--history DIR`` out of ``argv``; fall back to
    ``$DROIDRACER_HISTORY``.  Returns ``(store_or_None, rest_argv)`` —
    with no history configured the script stays inert (no store is
    constructed, nothing extra is written)."""
    rest = []
    explicit = None
    i = 0
    while i < len(argv):
        if argv[i] == "--history" and i + 1 < len(argv):
            explicit = argv[i + 1]
            i += 2
            continue
        rest.append(argv[i])
        i += 1
    history_dir = resolve_history_dir(explicit)
    return (HistoryStore(history_dir) if history_dir else None), rest


def _span_row(name, seconds, count):
    """A synthetic ``aggregate_spans``-shaped row: benchmark timings are
    best-of minima, not live span trees, so the record carries them as
    pre-aggregated rows the regression gate can diff by name."""
    return {
        "name": name,
        "count": count,
        "wall_seconds": seconds,
        "cpu_seconds": 0.0,
        "self_seconds": seconds,
        "errors": 0,
    }


def _append_record(store, record):
    store.append(record)
    print(
        "history: run record %s appended to %s" % (record.run_id[:12], store.root),
        file=sys.stderr,
    )


def _config_digest(descriptor):
    """Digest of the sweep's workload descriptor — the benchmark
    analogue of ``DetectorConfig.digest()``: smoke and full sweeps get
    distinct history keys because their workloads are incomparable."""
    blob = json.dumps(descriptor, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _best_of(runs, fn, label="bench.run"):
    # Timing comes from the same span machinery the pipeline reports
    # through ``--metrics`` (repro.obs), not a bespoke perf_counter pair.
    tracer = Tracer()
    result = None
    for _ in range(runs):
        with tracer.span(label) as span:
            result = fn()
    best = min(s.wall_seconds for s in tracer.spans if s.name == label)
    return best, result


def _report_key(report):
    return (report.racy_pair_count, [race.to_dict() for race in report.races])


def measure(levels, width, runs):
    trace = ladder_trace(levels, width)
    ops = len(trace)

    full_sat, hb_full = _best_of(
        runs, lambda: HappensBefore(trace, saturation=SAT_FULL)
    )
    inc_sat, hb_inc = _best_of(
        runs, lambda: HappensBefore(trace, saturation=SAT_INCREMENTAL)
    )
    if hb_full.graph.st != hb_inc.graph.st or hb_full.graph.mt != hb_inc.graph.mt:
        raise AssertionError("closure mismatch at levels=%d width=%d" % (levels, width))

    full_det, rep_full = _best_of(
        runs,
        lambda: detect_races(trace, saturation=SAT_FULL, enumeration=ENUM_PAIRWISE),
    )
    inc_det, rep_inc = _best_of(
        runs,
        lambda: detect_races(
            trace, saturation=SAT_INCREMENTAL, enumeration=ENUM_BATCHED
        ),
    )
    if _report_key(rep_full) != _report_key(rep_inc):
        raise AssertionError("report mismatch at levels=%d width=%d" % (levels, width))

    return {
        "levels": levels,
        "width": width,
        "trace_length": ops,
        "nodes": len(hb_full.graph),
        "outer_rounds": hb_full.stats.outer_iterations,
        "races": len(rep_inc.races),
        "saturation": {
            "full_seconds": full_sat,
            "incremental_seconds": inc_sat,
            "full_ops_per_sec": ops / full_sat,
            "incremental_ops_per_sec": ops / inc_sat,
            "speedup": full_sat / inc_sat,
        },
        "detection": {
            "full_pairwise_seconds": full_det,
            "incremental_batched_seconds": inc_det,
            "full_pairwise_ops_per_sec": ops / full_det,
            "incremental_batched_ops_per_sec": ops / inc_det,
            "speedup": full_det / inc_det,
        },
    }


def _stat_key(stats):
    return (
        stats.st_edges,
        stats.mt_edges,
        stats.fifo_edges,
        stats.nopre_edges,
        stats.outer_iterations,
    )


#: Run in a fresh interpreter per backend (see ``_measure_backend``).
#: argv[1] is ``[levels, width, body, backend]`` as JSON, argv[2] the src
#: path.  Emits one JSON object on stdout.
_CHILD_SRC = r"""
import hashlib, json, resource, sys

levels, width, body, backend = json.loads(sys.argv[1])
sys.path.insert(0, sys.argv[2])
from repro.apps.ladder import ladder_trace
from repro.core import HappensBefore
from repro.obs import Tracer

trace = ladder_trace(levels, width, body=body)
tracer = Tracer()
with tracer.span("closure.build", backend=backend) as span:
    hb = HappensBefore(trace, backend=backend)
elapsed = span.wall_seconds

# Deterministic ~200k-pair sample of the ordering relation, hashed so the
# parent can compare backends without holding both closures in one process.
graph = hb.graph
n = len(graph)
step = max(1, (n * (n - 1) // 2) // 200_000)
digest = hashlib.sha256()
k = 0
for i in range(n):
    for j in range(i + 1, n, 7):
        k += 1
        if k % step:
            continue
        digest.update(b"\x01" if graph.ordered(i, j) else b"\x00")

stats = hb.stats
print(json.dumps({
    "seconds": elapsed,
    "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
    "closure_memory_bytes": stats.closure_memory_bytes,
    "nodes": stats.node_count,
    "chains": stats.chain_count,
    "trace_length": len(trace),
    "outer_rounds": stats.outer_iterations,
    "stat_key": [stats.st_edges, stats.mt_edges, stats.fifo_edges,
                 stats.nopre_edges, stats.outer_iterations],
    "ordering_digest": digest.hexdigest(),
}))
"""


def _measure_backend(levels, width, body, backend):
    """Measure one backend in a fresh interpreter: the wall time is
    unperturbed by instrumentation (an in-process tracemalloc run slows
    the bitmask big-int churn by an order of magnitude) and ``ru_maxrss``
    reports the true process peak.  The child also hashes a deterministic
    200k-pair ``ordered()`` sample; the parent cross-checks the digests
    (the hypothesis suite covers full matrices on small traces)."""
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD_SRC,
            json.dumps([levels, width, body, backend]),
            SRC_DIR,
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            "%s measurement child failed:\n%s" % (backend, proc.stderr)
        )
    return json.loads(proc.stdout)


def measure_reachability(levels, width, body):
    bit = _measure_backend(levels, width, body, BACKEND_BITMASK)
    chain = _measure_backend(levels, width, body, BACKEND_CHAINS)

    if bit["stat_key"] != chain["stat_key"]:
        raise AssertionError(
            "closure statistics diverge at levels=%d width=%d body=%d"
            % (levels, width, body)
        )
    if bit["ordering_digest"] != chain["ordering_digest"]:
        raise AssertionError(
            "sampled orderings diverge at levels=%d width=%d body=%d"
            % (levels, width, body)
        )

    bit_mem = bit["closure_memory_bytes"]
    chain_mem = chain["closure_memory_bytes"]
    return {
        "levels": levels,
        "width": width,
        "body": body,
        "trace_length": bit["trace_length"],
        "nodes": bit["nodes"],
        "chains": chain["chains"],
        "outer_rounds": bit["outer_rounds"],
        "bitmask": {
            "seconds": bit["seconds"],
            "closure_memory_bytes": bit_mem,
            "peak_rss_bytes": bit["peak_rss_bytes"],
        },
        "chains_backend": {
            "seconds": chain["seconds"],
            "closure_memory_bytes": chain_mem,
            "peak_rss_bytes": chain["peak_rss_bytes"],
        },
        "memory_ratio": bit_mem / chain_mem,
        "peak_rss_ratio": bit["peak_rss_bytes"] / chain["peak_rss_bytes"],
        "time_ratio": bit["seconds"] / chain["seconds"],
    }


#: Fresh-interpreter child for the 100k saturation point.  argv[1] is a
#: JSON config ``{nodes, kernel, merge_chains, workers}``, argv[2] the
#: src path.  The child builds the scaled ladder, runs the chains backend
#: with the requested scale levers, and reports saturation-only wall time
#: (the ``closure.saturate``/``closure.resaturate`` spans — rule
#: derivation is identical across configs and would dilute the ratio)
#: plus a row-sample digest the parent uses to prove bit-identity.
_SCALE_CHILD_SRC = r"""
import hashlib, json, resource, sys

cfg = json.loads(sys.argv[1])
sys.path.insert(0, sys.argv[2])
from repro.apps.ladder import scaled_ladder_trace
from repro.core import BACKEND_CHAINS, HappensBefore
from repro.obs import Tracer, use_tracer

trace = scaled_ladder_trace(cfg["nodes"])
tracer = Tracer()
with use_tracer(tracer):
    with tracer.span("closure.build") as span:
        hb = HappensBefore(
            trace,
            backend=BACKEND_CHAINS,
            kernel=cfg["kernel"],
            merge_chains=cfg["merge_chains"],
            workers=cfg["workers"],
        )
build_seconds = span.wall_seconds
saturation_seconds = sum(
    s.wall_seconds
    for s in tracer.spans
    if s.name in ("closure.saturate", "closure.resaturate")
)
shard_passes = sum(1 for s in tracer.spans if s.name == "closure.shard_pass")

graph = hb.graph
n = len(graph)
width = (n + 7) // 8
digest = hashlib.sha256()
for i in range(0, n, 97):
    digest.update(graph.hb_row(i).to_bytes(width, "little"))

stats = hb.stats
print(json.dumps({
    "build_seconds": build_seconds,
    "saturation_seconds": saturation_seconds,
    "shard_passes": shard_passes,
    "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
    "closure_memory_bytes": stats.closure_memory_bytes,
    "nodes": n,
    "trace_length": len(trace),
    "chains": stats.chain_count,
    "chains_merged": stats.chains_merged,
    "outer_rounds": stats.outer_iterations,
    "stat_key": [stats.st_edges, stats.mt_edges, stats.fifo_edges,
                 stats.nopre_edges, stats.outer_iterations],
    "row_digest": digest.hexdigest(),
}))
"""


def _measure_scaled(kernel, merge_chains, workers, label):
    """One 100k-point configuration in a fresh interpreter (same
    rationale as :func:`_measure_backend`: unperturbed wall times and a
    true ``ru_maxrss``; the forked shard workers are the child's own)."""
    cfg = {
        "nodes": SCALE_NODES,
        "kernel": kernel,
        "merge_chains": merge_chains,
        "workers": workers,
    }
    proc = subprocess.run(
        [sys.executable, "-c", _SCALE_CHILD_SRC, json.dumps(cfg), SRC_DIR],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            "scale measurement child %r failed:\n%s" % (label, proc.stderr)
        )
    row = json.loads(proc.stdout)
    row.update(label=label, kernel=kernel,
               merge_chains=merge_chains, workers=workers)
    return row


def run_scale_point(workers_list):
    """The 100k-node saturation point: previous best (chains backend +
    incremental, reference kernel, no merging) vs the PR-7 levers —
    word-batched kernel + chain merging, then the same optimised
    configuration sharded across each requested worker count.  Every
    configuration must reproduce the same sampled closure rows."""
    configs = [
        ("baseline", KERNEL_PYTHON, False, 1),
        ("optimized", KERNEL_AUTO, True, 1),
    ]
    for workers in workers_list:
        if workers > 1:
            configs.append(
                ("optimized-w%d" % workers, KERNEL_AUTO, True, workers)
            )
    rows = []
    for label, kernel, merge, workers in configs:
        row = _measure_scaled(kernel, merge, workers, label)
        rows.append(row)
        print(
            "scale %-12s kernel=%-6s merge=%-5s workers=%d  "
            "%6d nodes %3d chains  saturation %7.2fs  build %7.2fs  rss %5.0fMB"
            % (
                label, row["kernel"], row["merge_chains"], workers,
                row["nodes"], row["chains"],
                row["saturation_seconds"], row["build_seconds"],
                row["peak_rss_bytes"] / 1e6,
            )
        )

    reference = rows[0]
    assert reference["nodes"] >= 100_000, (
        "scaled ladder has only %d nodes" % reference["nodes"]
    )
    for row in rows[1:]:
        assert row["stat_key"] == reference["stat_key"], (
            "closure statistics diverge in scale config %s" % row["label"]
        )
        assert row["row_digest"] == reference["row_digest"], (
            "sampled closure rows diverge in scale config %s" % row["label"]
        )
    optimized = rows[1]
    speedup = (
        reference["saturation_seconds"] / optimized["saturation_seconds"]
    )
    assert speedup >= MIN_SATURATION_SPEEDUP, (
        "100k saturation speedup %.2fx below the %.1fx floor"
        % (speedup, MIN_SATURATION_SPEEDUP)
    )
    print(
        "scale point OK: %d nodes, saturation %.2fs -> %.2fs (%.1fx)"
        % (
            reference["nodes"], reference["saturation_seconds"],
            optimized["saturation_seconds"], speedup,
        )
    )
    return {
        "requested_nodes": SCALE_NODES,
        "nodes": reference["nodes"],
        "trace_length": reference["trace_length"],
        "outer_rounds": reference["outer_rounds"],
        "chains": reference["chains"],
        "chains_merged": optimized["chains_merged"],
        "min_speedup_floor": MIN_SATURATION_SPEEDUP,
        "saturation_speedup": speedup,
        "row_digest": reference["row_digest"],
        "configs": rows,
    }


def _check_scale_knob_identity(trace):
    """Smoke-grade differential over the PR-7 levers: on ``trace``, every
    kernel x merging combination — and a workers=2 sharded run per
    backend — must reproduce the reference report exactly."""
    for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
        reference = detect_races(
            trace, backend=backend, kernel=KERNEL_PYTHON, merge_chains=False
        )
        for kernel in (KERNEL_PYTHON, KERNEL_WORDS):
            for merge in (False, True):
                report = detect_races(
                    trace, backend=backend, kernel=kernel, merge_chains=merge
                )
                assert _report_key(report) == _report_key(reference), (
                    "scale knobs changed the report (%s, %s, merge=%s)"
                    % (backend, kernel, merge)
                )
        sharded = detect_races(trace, backend=backend, closure_workers=2)
        assert _report_key(sharded) == _report_key(reference), (
            "sharded saturation changed the report (%s)" % backend
        )


def _check_shard_span_budget(trace):
    """Sharded saturation must engage (when fork exists) and must not
    stall: the fan-out count per smoke closure stays under a fixed
    budget — a runaway frontier shows up here before it shows up as a
    CI timeout."""
    tracer = Tracer()
    with use_tracer(tracer):
        HappensBefore(trace, backend=BACKEND_CHAINS, workers=2)
        HappensBefore(trace, backend=BACKEND_BITMASK, workers=2)
    passes = [s for s in tracer.spans if s.name == "closure.shard_pass"]
    if fork_available():
        assert passes, "workers=2 never fanned out despite fork support"
    assert len(passes) <= SHARD_PASS_BUDGET, (
        "%d shard passes exceed the %d-pass smoke budget"
        % (len(passes), SHARD_PASS_BUDGET)
    )


def _check_merge_engages():
    """Chain merging must actually fire on its target shape (many short
    same-thread chains) and leave the report untouched."""
    trace = wide_trace(4, tasks_per_thread=2, seed=1)
    merged = HappensBefore(trace, backend=BACKEND_CHAINS)
    assert merged.stats.chains_merged == 4, (
        "expected one pre-loop merge per worker thread, got %d"
        % merged.stats.chains_merged
    )
    plain = detect_races(trace, merge_chains=False)
    fused = detect_races(trace, backend=BACKEND_CHAINS, merge_chains=True)
    assert _report_key(plain) == _report_key(fused), (
        "chain merging changed the wide-trace report"
    )


def _check_handoff_counterexample():
    """Directed divergence check the ladder sweep cannot provide: the
    fork/lock hand-off topology whose delta gains are invisible to any
    edge source (see :func:`repro.apps.ladder.lock_handoff_trace`) — the
    class of trace on which the source-only dirty frontier shipped green
    through both the random differential suite and the ladder smoke."""
    trace = lock_handoff_trace()
    reference = HappensBefore(trace, saturation=SAT_FULL)
    n = len(reference.graph)
    for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
        for saturation in (SAT_FULL, SAT_INCREMENTAL):
            hb = HappensBefore(trace, saturation=saturation, backend=backend)
            for i in range(n):
                assert reference.graph.hb_row(i) == hb.graph.hb_row(i), (
                    "hb row %d diverges on the hand-off trace (%s, %s)"
                    % (i, backend, saturation)
                )
            report = detect_races(trace, saturation=saturation, backend=backend)
            assert not report.races, (
                "false race on the hand-off trace (%s, %s)"
                % (backend, saturation)
            )


def run_reachability(smoke, history=None, workers_list=(1, 2)):
    if smoke:
        _check_handoff_counterexample()
        levels, width, body = REACH_SMOKE_SIZE
        trace = ladder_trace(levels, width, body=body)
        bit_secs, hb_bit = _best_of(
            3, lambda: HappensBefore(trace, backend=BACKEND_BITMASK),
            label="bench.backend.bitmask",
        )
        chain_secs, hb_chain = _best_of(
            3, lambda: HappensBefore(trace, backend=BACKEND_CHAINS),
            label="bench.backend.chains",
        )
        assert _stat_key(hb_bit.stats) == _stat_key(hb_chain.stats), (
            "rule statistics diverge between backends on the smoke ladder"
        )
        n = len(hb_bit.graph)
        for i in range(n):
            for j in range(i + 1, n):
                assert hb_bit.graph.ordered(i, j) == hb_chain.graph.ordered(i, j), (
                    "ordered(%d, %d) diverges between backends" % (i, j)
                )
        rep_bit = detect_races(trace, backend=BACKEND_BITMASK)
        rep_chain = detect_races(trace, backend=BACKEND_CHAINS)
        assert _report_key(rep_bit) == _report_key(rep_chain), (
            "race reports diverge between backends on the smoke ladder"
        )
        budget = _chains_budget_bytes(n, hb_chain.stats.chain_count)
        used = hb_chain.stats.closure_memory_bytes
        assert used <= 2 * budget, (
            "chains closure memory %d bytes exceeds 2x the O(n*C) budget %d"
            % (used, budget)
        )
        _check_scale_knob_identity(trace)
        _check_shard_span_budget(trace)
        _check_merge_engages()
        print(
            "reachability smoke OK: %d nodes, %d chains, backends identical, "
            "scale knobs identical (workers 1 == 2), "
            "%.0f KB of %.0f KB budget" % (n, hb_chain.stats.chain_count,
                                           used / 1024.0, 2 * budget / 1024.0)
        )
        if history is not None:
            descriptor = {
                "benchmark": "reachability-backends",
                "mode": "smoke",
                "sizes": [list(REACH_SMOKE_SIZE)],
            }
            _append_record(
                history,
                RunRecord(
                    command="bench.reachability",
                    trace_digest=combine_digests(
                        ["ladder:%d:%d:%d" % REACH_SMOKE_SIZE]
                    ),
                    config_digest=_config_digest(descriptor),
                    app="ladder",
                    trace_name="reachability smoke",
                    trace_count=1,
                    trace_length=len(trace),
                    backend=BACKEND_CHAINS,
                    report_digest=report_digest(
                        {
                            "nodes": n,
                            "chains": hb_chain.stats.chain_count,
                            "stat_key": list(_stat_key(hb_bit.stats)),
                            "races": _report_key(rep_bit),
                        }
                    ),
                    race_count=len(rep_bit.races),
                    racy_pairs=rep_bit.racy_pair_count,
                    spans=[
                        _span_row("bench.backend.bitmask", bit_secs, 1),
                        _span_row("bench.backend.chains", chain_secs, 1),
                    ],
                    gauges={"closure.memory_bytes": used},
                    extra=descriptor,
                ),
            )
        return 0

    rows = []
    for levels, width, body in REACH_SIZES:
        row = measure_reachability(levels, width, body)
        rows.append(row)
        print(
            "ladder %2dx%-2d body=%-3d %5d nodes %3d chains  "
            "bitmask %7.2fs %7.2fMB  chains %6.2fs %6.2fMB  mem x%.1f"
            % (
                levels,
                width,
                body,
                row["nodes"],
                row["chains"],
                row["bitmask"]["seconds"],
                row["bitmask"]["closure_memory_bytes"] / 1e6,
                row["chains_backend"]["seconds"],
                row["chains_backend"]["closure_memory_bytes"] / 1e6,
                row["memory_ratio"],
            )
        )

    largest = rows[-1]
    assert largest["nodes"] >= 10_000, (
        "largest backend-sweep ladder has only %d nodes" % largest["nodes"]
    )
    assert largest["memory_ratio"] >= MIN_MEMORY_RATIO, (
        "closure-memory reduction %.2fx below the %.1fx floor"
        % (largest["memory_ratio"], MIN_MEMORY_RATIO)
    )
    scale = run_scale_point(workers_list)
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_reachability.json"
    doc = {
        "benchmark": "reachability-backends",
        "trace_family": "repro.apps.ladder",
        "min_memory_ratio_floor": MIN_MEMORY_RATIO,
        "configs": rows,
        "largest_memory_ratio": largest["memory_ratio"],
        "largest_time_ratio": largest["time_ratio"],
        "saturation_100k": scale,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print("wrote %s" % out)
    if history is not None:
        descriptor = {
            "benchmark": "reachability-backends",
            "mode": "full",
            "sizes": [list(size) for size in REACH_SIZES],
        }
        _append_record(
            history,
            RunRecord(
                command="bench.reachability",
                trace_digest=combine_digests(
                    "ladder:%d:%d:%d" % tuple(size) for size in REACH_SIZES
                ),
                config_digest=_config_digest(descriptor),
                app="ladder",
                trace_name="reachability sweep",
                trace_count=len(rows),
                trace_length=sum(r["trace_length"] for r in rows),
                backend=BACKEND_CHAINS,
                report_digest=report_digest(
                    {
                        "configs": [
                            {
                                k: row[k]
                                for k in (
                                    "levels", "width", "body",
                                    "trace_length", "nodes", "chains",
                                    "outer_rounds",
                                )
                            }
                            for row in rows
                        ],
                        "saturation_100k": {
                            k: scale[k]
                            for k in (
                                "nodes", "trace_length", "chains",
                                "chains_merged", "outer_rounds",
                                "row_digest",
                            )
                        },
                    }
                ),
                spans=[
                    _span_row(
                        "bench.backend.bitmask",
                        sum(r["bitmask"]["seconds"] for r in rows),
                        len(rows),
                    ),
                    _span_row(
                        "bench.backend.chains",
                        sum(r["chains_backend"]["seconds"] for r in rows),
                        len(rows),
                    ),
                    _span_row(
                        "bench.scale.saturation.baseline",
                        scale["configs"][0]["saturation_seconds"],
                        1,
                    ),
                    _span_row(
                        "bench.scale.saturation.optimized",
                        scale["configs"][1]["saturation_seconds"],
                        1,
                    ),
                ],
                gauges={
                    "closure.memory_bytes": largest["chains_backend"][
                        "closure_memory_bytes"
                    ],
                    "bench.memory_ratio": largest["memory_ratio"],
                    "bench.saturation100k_speedup": scale[
                        "saturation_speedup"
                    ],
                },
                extra={"payload": doc, **descriptor},
            ),
        )
    return 0


def _parse_workers(argv):
    """Split ``--workers N[,M...]`` out of ``argv`` — the worker counts
    the 100k scale point sweeps (default ``1,2``)."""
    workers_list = [1, 2]
    rest = []
    i = 0
    while i < len(argv):
        if argv[i] == "--workers" and i + 1 < len(argv):
            workers_list = sorted(
                {int(w) for w in argv[i + 1].split(",") if w}
            )
            if not workers_list or workers_list[0] < 1:
                raise SystemExit("--workers wants positive counts")
            i += 2
            continue
        rest.append(argv[i])
        i += 1
    return workers_list, rest


def main(argv):
    history, argv = _parse_history(argv)
    workers_list, argv = _parse_workers(argv)
    if "--reachability" in argv or "--reachability-smoke" in argv:
        return run_reachability(
            "--reachability-smoke" in argv,
            history=history,
            workers_list=workers_list,
        )
    smoke = "--smoke" in argv
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    runs = 3 if smoke else 1

    rows = []
    for levels, width in sizes:
        row = measure(levels, width, runs)
        rows.append(row)
        print(
            "ladder %2dx%-2d  %5d ops  %4d nodes  %2d rounds  "
            "saturation %.3fs -> %.3fs (%.1fx)  detection %.3fs -> %.3fs (%.1fx)"
            % (
                levels,
                width,
                row["trace_length"],
                row["nodes"],
                row["outer_rounds"],
                row["saturation"]["full_seconds"],
                row["saturation"]["incremental_seconds"],
                row["saturation"]["speedup"],
                row["detection"]["full_pairwise_seconds"],
                row["detection"]["incremental_batched_seconds"],
                row["detection"]["speedup"],
            )
        )

    largest = rows[-1]
    if smoke:
        # CI gate: the incremental path must not lose to the full sweep on
        # the largest smoke trace (best-of-3 timings absorb runner noise).
        assert (
            largest["saturation"]["incremental_seconds"]
            <= largest["saturation"]["full_seconds"]
        ), "incremental saturation slower than full on the smoke trace"
        print("smoke OK: incremental not slower than full")
        if history is not None:
            _append_record(
                history, _saturation_record(rows, sizes, mode="smoke")
            )
        return 0

    assert largest["saturation"]["speedup"] >= MIN_SPEEDUP, (
        "saturation speedup %.2fx below the %.1fx floor"
        % (largest["saturation"]["speedup"], MIN_SPEEDUP)
    )
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_closure.json"
    doc = {
        "benchmark": "closure-engine",
        "trace_family": "repro.apps.ladder",
        "min_speedup_floor": MIN_SPEEDUP,
        "configs": rows,
        "largest_saturation_speedup": largest["saturation"]["speedup"],
        "largest_detection_speedup": largest["detection"]["speedup"],
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print("wrote %s" % out)
    if history is not None:
        _append_record(
            history, _saturation_record(rows, sizes, mode="full", payload=doc)
        )
    return 0


def _saturation_record(rows, sizes, mode, payload=None):
    """The saturation sweep as one :class:`RunRecord`: per-measure
    best-of timings become aggregate span rows, the per-config race
    counts and closure statistics become the correctness digest, and a
    full run's entire result document rides in ``extra["payload"]`` so
    ``BENCH_closure.json`` is a derived view of the store."""
    descriptor = {
        "benchmark": "closure-engine",
        "mode": mode,
        "sizes": [list(size) for size in sizes],
    }
    extra = dict(descriptor)
    if payload is not None:
        extra["payload"] = payload
    return RunRecord(
        command="bench.closure",
        trace_digest=combine_digests(
            "ladder:%d:%d" % tuple(size) for size in sizes
        ),
        config_digest=_config_digest(descriptor),
        app="ladder",
        trace_name="saturation sweep",
        trace_count=len(rows),
        trace_length=sum(r["trace_length"] for r in rows),
        saturation=SAT_INCREMENTAL,
        enumeration=ENUM_BATCHED,
        report_digest=report_digest(
            {
                "configs": [
                    {
                        k: row[k]
                        for k in (
                            "levels", "width", "trace_length",
                            "nodes", "outer_rounds", "races",
                        )
                    }
                    for row in rows
                ]
            }
        ),
        race_count=sum(r["races"] for r in rows),
        spans=[
            _span_row(
                "bench.saturation.full",
                sum(r["saturation"]["full_seconds"] for r in rows),
                len(rows),
            ),
            _span_row(
                "bench.saturation.incremental",
                sum(r["saturation"]["incremental_seconds"] for r in rows),
                len(rows),
            ),
            _span_row(
                "bench.detection.full_pairwise",
                sum(r["detection"]["full_pairwise_seconds"] for r in rows),
                len(rows),
            ),
            _span_row(
                "bench.detection.incremental_batched",
                sum(r["detection"]["incremental_batched_seconds"] for r in rows),
                len(rows),
            ),
        ],
        gauges={
            "bench.saturation_speedup": rows[-1]["saturation"]["speedup"],
            "bench.detection_speedup": rows[-1]["detection"]["speedup"],
        },
        extra=extra,
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
