"""Closure-engine benchmark: full re-sweep vs incremental delta saturation.

Measures the two halves of the PR-2 optimisation on ladder traces
(:mod:`repro.apps.ladder` — adversarial inputs needing one outer
FIFO/NOPRE round per level):

* **saturation** — :class:`HappensBefore` construction with
  ``saturation="full"`` (re-sweep every row each round) vs
  ``saturation="incremental"`` (delta propagation through the closure
  predecessor index);
* **detection** — end-to-end :func:`detect_races` with the slow pair
  (``full`` + ``pairwise``) vs the fast pair (``incremental`` +
  ``batched``).

Every measurement double-checks equivalence (identical ``st``/``mt``
rows, identical reports) before recording a time, so the numbers can
never come from diverging analyses.

This is a plain script, not a pytest file (the pytest benchmark suite in
this directory regenerates the paper's tables; this one guards a code
path).  Run it from the repository root:

    python benchmarks/bench_closure.py            # full run, writes JSON
    python benchmarks/bench_closure.py --smoke    # tiny sizes, CI gate

The full run writes ``benchmarks/results/BENCH_closure.json`` and fails
if the largest configuration's saturation speedup drops below 5x; the
smoke run uses second-sized traces and only asserts the incremental path
is not slower than the full sweep on the largest smoke trace.
"""

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.ladder import ladder_trace  # noqa: E402
from repro.core import (  # noqa: E402
    HappensBefore,
    SAT_FULL,
    SAT_INCREMENTAL,
    detect_races,
)
from repro.core.race_detector import ENUM_BATCHED, ENUM_PAIRWISE  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results"

#: (levels, width) ladder sizes.  The full list tops out above 2000 graph
#: nodes; the smoke list keeps CI under a few seconds.
FULL_SIZES = [(14, 8), (20, 12), (30, 17), (34, 19)]
SMOKE_SIZES = [(5, 3), (8, 4), (10, 5)]

#: Acceptance floor for the full run, checked on the largest config.
MIN_SPEEDUP = 5.0


def _best_of(runs, fn):
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _report_key(report):
    return (report.racy_pair_count, [race.to_dict() for race in report.races])


def measure(levels, width, runs):
    trace = ladder_trace(levels, width)
    ops = len(trace)

    full_sat, hb_full = _best_of(
        runs, lambda: HappensBefore(trace, saturation=SAT_FULL)
    )
    inc_sat, hb_inc = _best_of(
        runs, lambda: HappensBefore(trace, saturation=SAT_INCREMENTAL)
    )
    if hb_full.graph.st != hb_inc.graph.st or hb_full.graph.mt != hb_inc.graph.mt:
        raise AssertionError("closure mismatch at levels=%d width=%d" % (levels, width))

    full_det, rep_full = _best_of(
        runs,
        lambda: detect_races(trace, saturation=SAT_FULL, enumeration=ENUM_PAIRWISE),
    )
    inc_det, rep_inc = _best_of(
        runs,
        lambda: detect_races(
            trace, saturation=SAT_INCREMENTAL, enumeration=ENUM_BATCHED
        ),
    )
    if _report_key(rep_full) != _report_key(rep_inc):
        raise AssertionError("report mismatch at levels=%d width=%d" % (levels, width))

    return {
        "levels": levels,
        "width": width,
        "trace_length": ops,
        "nodes": len(hb_full.graph),
        "outer_rounds": hb_full.stats.outer_iterations,
        "races": len(rep_inc.races),
        "saturation": {
            "full_seconds": full_sat,
            "incremental_seconds": inc_sat,
            "full_ops_per_sec": ops / full_sat,
            "incremental_ops_per_sec": ops / inc_sat,
            "speedup": full_sat / inc_sat,
        },
        "detection": {
            "full_pairwise_seconds": full_det,
            "incremental_batched_seconds": inc_det,
            "full_pairwise_ops_per_sec": ops / full_det,
            "incremental_batched_ops_per_sec": ops / inc_det,
            "speedup": full_det / inc_det,
        },
    }


def main(argv):
    smoke = "--smoke" in argv
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    runs = 3 if smoke else 1

    rows = []
    for levels, width in sizes:
        row = measure(levels, width, runs)
        rows.append(row)
        print(
            "ladder %2dx%-2d  %5d ops  %4d nodes  %2d rounds  "
            "saturation %.3fs -> %.3fs (%.1fx)  detection %.3fs -> %.3fs (%.1fx)"
            % (
                levels,
                width,
                row["trace_length"],
                row["nodes"],
                row["outer_rounds"],
                row["saturation"]["full_seconds"],
                row["saturation"]["incremental_seconds"],
                row["saturation"]["speedup"],
                row["detection"]["full_pairwise_seconds"],
                row["detection"]["incremental_batched_seconds"],
                row["detection"]["speedup"],
            )
        )

    largest = rows[-1]
    if smoke:
        # CI gate: the incremental path must not lose to the full sweep on
        # the largest smoke trace (best-of-3 timings absorb runner noise).
        assert (
            largest["saturation"]["incremental_seconds"]
            <= largest["saturation"]["full_seconds"]
        ), "incremental saturation slower than full on the smoke trace"
        print("smoke OK: incremental not slower than full")
        return 0

    assert largest["saturation"]["speedup"] >= MIN_SPEEDUP, (
        "saturation speedup %.2fx below the %.1fx floor"
        % (largest["saturation"]["speedup"], MIN_SPEEDUP)
    )
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_closure.json"
    out.write_text(
        json.dumps(
            {
                "benchmark": "closure-engine",
                "trace_family": "repro.apps.ladder",
                "min_speedup_floor": MIN_SPEEDUP,
                "configs": rows,
                "largest_saturation_speedup": largest["saturation"]["speedup"],
                "largest_detection_speedup": largest["detection"]["speedup"],
            },
            indent=2,
        )
        + "\n"
    )
    print("wrote %s" % out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
