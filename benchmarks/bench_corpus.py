"""Benchmark E8 — corpus batch analysis: throughput and cache speedup.

Builds a corpus of 24 stored traces (4 subjects x 6 schedule seeds),
then measures:

* batch throughput (traces/second) serial vs. a 4-worker pool;
* cold-vs-warm wall clock through the result cache — the second pass
  over an unchanged corpus must be >= 95% cache hits and measurably
  faster.

Parallel speedup depends on available cores (a 1-core container shows
none — the numbers are published either way); the cache speedup
assertion is hardware-independent.

When ``$DROIDRACER_HISTORY`` names a run-history directory (see
``docs/observability.md``), the throughput benchmark appends one
``bench.corpus`` :class:`repro.obs.RunRecord` per jobs setting so batch
wall clock and per-trace race counts accumulate in the same store the
``droidracer obs`` tooling gates and charts.  Unset (the default), the
benchmark writes nothing beyond its published tables.
"""

import pytest

from conftest import publish
from repro.apps.specs import OPEN_SOURCE_SPECS
from repro.apps.synthetic import SyntheticApp
from repro.core.happens_before import SAT_INCREMENTAL
from repro.core.race_detector import ENUM_BATCHED
from repro.corpus import BatchAnalyzer, ResultCache, TraceStore, aggregate
from repro.obs import (
    HistoryStore,
    RunRecord,
    Tracer,
    aggregate_spans,
    combine_digests,
    report_digest,
    resolve_history_dir,
    use_tracer,
)

SUBJECTS = 4
SEEDS = 6
SCALE = 0.1


def _maybe_record_history(analyzer, batch, tracer, jobs):
    """Append one ``bench.corpus`` run record when a history dir is
    configured (``$DROIDRACER_HISTORY``); inert otherwise.  Mirrors the
    multi-trace record shape ``droidracer corpus analyze`` emits, so CLI
    batches and this benchmark land on comparable records."""
    history_dir = resolve_history_dir(None)
    if not history_dir:
        return
    config = analyzer.config
    entries = [
        (result.entry.digest, result.report.to_dict())
        for result in batch.results
        if result.report is not None
    ]
    if not entries:
        return
    reports = [report for _, report in entries]
    per_category = {}
    for report in reports:
        for race in report.get("races", ()):
            category = race.get("category", "?")
            per_category[category] = per_category.get(category, 0) + 1
    HistoryStore(history_dir).append(
        RunRecord(
            command="bench.corpus",
            trace_digest=combine_digests(digest for digest, _ in entries),
            config_digest=config.digest(),
            app="corpus",
            trace_name="corpus throughput (jobs=%d)" % jobs,
            trace_count=len(entries),
            trace_length=sum(r["trace_length"] for r in reports),
            backend=config.backend,
            saturation=SAT_INCREMENTAL,
            enumeration=ENUM_BATCHED,
            coalesce=config.coalesce,
            report_digest=combine_digests(
                "%s:%s" % (digest, report_digest(report))
                for digest, report in entries
            ),
            race_count=sum(len(r["races"]) for r in reports),
            racy_pairs=sum(r["racy_pair_count"] for r in reports),
            per_category=per_category,
            spans=aggregate_spans(tracer.spans),
            counters=dict(tracer.counters),
            gauges=dict(tracer.gauges),
            extra={"jobs": jobs, "parallel": batch.parallel},
        )
    )


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus")
    store = TraceStore(root)
    for spec in OPEN_SOURCE_SPECS[:SUBJECTS]:
        for seed in range(SEEDS):
            app = SyntheticApp(spec, scale=SCALE)
            _, trace = app.run(seed=seed)
            store.ingest(trace, app=spec.name)
    assert len(store) >= 20, "corpus too small for a meaningful batch"
    return root


def test_batch_throughput(corpus_root):
    # Thin consumer of the pipeline's own spans: the batch wall clock is
    # the tracer's ``corpus.analyze`` span (what ``--metrics`` reports),
    # not a hand-rolled perf_counter pair around the call.
    store = TraceStore(corpus_root)
    timings = []
    for jobs in (1, 4):
        tracer = Tracer()
        analyzer = BatchAnalyzer(store, cache=None, jobs=jobs)
        with use_tracer(tracer):
            batch = analyzer.analyze()
        assert not batch.errors()
        (span,) = [s for s in tracer.spans if s.name == "corpus.analyze"]
        timings.append((jobs, batch.parallel, len(batch.results), span.wall_seconds))
        _maybe_record_history(analyzer, batch, tracer, jobs)
    lines = [
        "%6s | %8s | %7s | %10s | %12s"
        % ("jobs", "mode", "traces", "wall (s)", "traces/sec"),
        "-" * 56,
    ]
    for jobs, parallel, count, elapsed in timings:
        lines.append(
            "%6d | %8s | %7d | %10.3f | %12.1f"
            % (jobs, "pool" if parallel else "serial", count, elapsed, count / elapsed)
        )
    publish("corpus_throughput.txt", "\n".join(lines))


def test_cache_hit_speedup(corpus_root):
    store = TraceStore(corpus_root)
    cache = ResultCache(corpus_root)
    cache.clear()
    analyzer = BatchAnalyzer(store, cache=cache, jobs=1)

    cold = analyzer.analyze()
    warm = analyzer.analyze()

    assert warm.hit_rate() >= 0.95
    assert warm.wall_seconds < cold.wall_seconds
    cold_report = aggregate(cold)
    warm_report = aggregate(warm)
    assert [r.to_dict() for r in warm_report.races] == [
        r.to_dict() for r in cold_report.races
    ]
    publish(
        "corpus_cache.txt",
        "\n".join(
            [
                "%6s | %10s | %6s | %8s" % ("pass", "wall (s)", "hits", "misses"),
                "-" * 40,
                "%6s | %10.3f | %6d | %8d"
                % ("cold", cold.wall_seconds, cold.cache_hits, cold.cache_misses),
                "%6s | %10.3f | %6d | %8d"
                % ("warm", warm.wall_seconds, warm.cache_hits, warm.cache_misses),
                "",
                "speedup: %.1fx, warm hit rate %.0f%%"
                % (
                    cold.wall_seconds / max(warm.wall_seconds, 1e-9),
                    100.0 * warm.hit_rate(),
                ),
            ]
        ),
    )


def test_parallel_matches_serial(corpus_root):
    store = TraceStore(corpus_root)
    serial = BatchAnalyzer(store, cache=None, jobs=1).analyze()
    parallel = BatchAnalyzer(store, cache=None, jobs=4).analyze()
    assert not serial.errors() and not parallel.errors()

    def race_dicts(batch):
        return [
            [race.to_dict() for race in result.report.races]
            for result in batch.results
        ]

    assert race_dicts(serial) == race_dicts(parallel)
    serial_agg = aggregate(serial)
    parallel_agg = aggregate(parallel)
    assert serial_agg.per_category() == parallel_agg.per_category()


def test_warm_corpus_analysis_speed(corpus_root, benchmark):
    store = TraceStore(corpus_root)
    cache = ResultCache(corpus_root)
    analyzer = BatchAnalyzer(store, cache=cache, jobs=1)
    analyzer.analyze()  # prime
    batch = benchmark.pedantic(analyzer.analyze, rounds=3, iterations=1)
    assert batch.hit_rate() >= 0.95
