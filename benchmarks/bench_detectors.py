"""Benchmark E10 (extension) — detector implementations compared.

Two independent implementations of the classic multithreaded relation —
the one-pass FastTrack-style vector-clock detector and the graph engine
in its MULTITHREADED_ONLY configuration — must agree on racy locations;
the vector-clock pass is asymptotically cheaper (linear-ish vs cubic),
which this benchmark quantifies.  The android relation itself has no
vector-clock formulation (FIFO/NOPRE premises quantify over the full
relation), which is why the paper's tool is graph-based.
"""

import time

import pytest

from conftest import publish
from repro.apps.specs import SPEC_BY_NAME
from repro.apps.synthetic import SyntheticApp
from repro.core import detect_races, detect_races_vc
from repro.core.baselines import MULTITHREADED_ONLY


@pytest.fixture(scope="module")
def mt_traces(paper_results):
    names = ("Aard Dictionary", "Messenger", "SGTPuzzles")
    return {
        name: next(r.trace for r in paper_results if r.spec.name == name)
        for name in names
    }


def test_detectors_agree_on_racy_locations(mt_traces):
    lines = [
        "%-16s | %10s | %14s | %14s | %6s"
        % ("app", "trace len", "vc time (s)", "graph time (s)", "agree"),
        "-" * 72,
    ]
    for name, trace in mt_traces.items():
        start = time.perf_counter()
        vc_report = detect_races_vc(trace)
        vc_time = time.perf_counter() - start
        start = time.perf_counter()
        graph_report = detect_races(trace, config=MULTITHREADED_ONLY)
        graph_time = time.perf_counter() - start
        vc_locations = set(vc_report.racy_locations())
        graph_locations = {race.location for race in graph_report.races}
        agree = vc_locations == graph_locations
        lines.append(
            "%-16s | %10d | %14.4f | %14.4f | %6s"
            % (name, len(trace), vc_time, graph_time, agree)
        )
        assert agree, (name, vc_locations, graph_locations)
    publish("detector_crosscheck.txt", "\n".join(lines))


def test_vector_clock_speed(benchmark, mt_traces):
    trace = mt_traces["SGTPuzzles"]
    report = benchmark.pedantic(lambda: detect_races_vc(trace), rounds=2, iterations=1)
    assert report.locations_checked > 0


def test_graph_mt_only_speed(benchmark, mt_traces):
    trace = mt_traces["Aard Dictionary"]
    report = benchmark.pedantic(
        lambda: detect_races(trace, config=MULTITHREADED_ONLY), rounds=2, iterations=1
    )
    assert report is not None
