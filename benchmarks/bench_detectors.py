"""Benchmark E10 (extension) — detector implementations compared.

Two independent implementations of the classic multithreaded relation —
the one-pass FastTrack-style vector-clock detector and the graph engine
in its MULTITHREADED_ONLY configuration — must agree on racy locations;
the vector-clock pass is asymptotically cheaper (linear-ish vs cubic),
which this benchmark quantifies.  The android relation itself has no
vector-clock formulation (FIFO/NOPRE premises quantify over the full
relation), which is why the paper's tool is graph-based.
"""

import time

import pytest

from conftest import publish
from repro.apps.ladder import scaled_ladder_trace
from repro.apps.specs import SPEC_BY_NAME
from repro.apps.synthetic import SyntheticApp
from repro.core import (
    BACKEND_CHAINS,
    HappensBefore,
    detect_races,
    detect_races_vc,
    triage_races,
)
from repro.core.baselines import MULTITHREADED_ONLY


@pytest.fixture(scope="module")
def mt_traces(paper_results):
    names = ("Aard Dictionary", "Messenger", "SGTPuzzles")
    return {
        name: next(r.trace for r in paper_results if r.spec.name == name)
        for name in names
    }


def test_detectors_agree_on_racy_locations(mt_traces):
    lines = [
        "%-16s | %10s | %14s | %14s | %6s"
        % ("app", "trace len", "vc time (s)", "graph time (s)", "agree"),
        "-" * 72,
    ]
    for name, trace in mt_traces.items():
        start = time.perf_counter()
        vc_report = detect_races_vc(trace)
        vc_time = time.perf_counter() - start
        start = time.perf_counter()
        graph_report = detect_races(trace, config=MULTITHREADED_ONLY)
        graph_time = time.perf_counter() - start
        vc_locations = set(vc_report.racy_locations())
        graph_locations = {race.location for race in graph_report.races}
        agree = vc_locations == graph_locations
        lines.append(
            "%-16s | %10d | %14.4f | %14.4f | %6s"
            % (name, len(trace), vc_time, graph_time, agree)
        )
        assert agree, (name, vc_locations, graph_locations)
    publish("detector_crosscheck.txt", "\n".join(lines))


def test_vector_clock_speed(benchmark, mt_traces):
    trace = mt_traces["SGTPuzzles"]
    report = benchmark.pedantic(lambda: detect_races_vc(trace), rounds=2, iterations=1)
    assert report.locations_checked > 0


def test_graph_mt_only_speed(benchmark, mt_traces):
    trace = mt_traces["Aard Dictionary"]
    report = benchmark.pedantic(
        lambda: detect_races(trace, config=MULTITHREADED_ONLY), rounds=2, iterations=1
    )
    assert report is not None


def test_triage_sweep_scale_point():
    """PR 8 triage sweep — the streaming vc triage pass against the
    optimised closure at the committed 101k-node point (``SCALE_NODES``
    in ``bench_closure.py``).  Unlike the classic vc detector above,
    the triage pass under-approximates the *android* relation
    (FIFO/NOPRE included), so its verdict soundly gates the closure:
    the closure's racy locations must be a subset of the vc pass's.
    The closure side times graph construction + saturation only
    (chains backend, auto kernel, chain merging — the committed
    fastest configuration), which understates the closure's full cost
    and therefore understates the triage advantage."""
    trace = scaled_ladder_trace(102_000)

    start = time.perf_counter()
    vc_report = triage_races(trace)
    vc_time = time.perf_counter() - start

    start = time.perf_counter()
    hb = HappensBefore(trace, backend=BACKEND_CHAINS, merge_chains=True)
    closure_time = time.perf_counter() - start

    assert len(hb.graph) >= 100_000
    assert vc_report.races, "scaled ladder's rogue races invisible to triage"
    advantage = closure_time / vc_time
    lines = [
        "101k-node triage sweep (scaled ladder, %d ops, %d nodes)"
        % (len(trace), len(hb.graph)),
        "vc triage pass : %8.2fs  (%d races at %d locations)"
        % (vc_time, len(vc_report.races), len(vc_report.racy_locations())),
        "closure build  : %8.2fs  (chains backend, merged, saturation only)"
        % closure_time,
        "triage advantage: %.1fx" % advantage,
    ]
    publish("triage_sweep.txt", "\n".join(lines))
    assert advantage >= 3.0, (
        "vc triage only %.1fx faster than the closure at 101k nodes"
        % advantage
    )
