"""Benchmark E9 (extension) — UI exploration strategy comparison (§7).

The paper compares its systematic UI Explorer qualitatively with Android
Monkey (random, no systematic exploration) and Dynodroid (biased random,
can inject intents, no easy replay).  This benchmark makes the comparison
quantitative on our app models: distinct racy fields discovered and
events needed to find the first race, per strategy and seed.
"""

import pytest

from conftest import publish
from repro.apps.notes_app import NotesApp
from repro.apps.registry import DEMO_APPS
from repro.core import detect_races
from repro.explorer import (
    DynodroidExplorer,
    MonkeyExplorer,
    UIExplorer,
    compare_strategies,
)

SEEDS = (0, 1, 2)
BUDGET = 6


@pytest.fixture(scope="module")
def strategy_runs():
    app = NotesApp()
    runs = compare_strategies(app, budget=BUDGET, seeds=SEEDS)
    # The systematic explorer enumerates sequences instead of sampling:
    # a depth-2 exploration capped at the same total event budget.
    systematic = UIExplorer(app, depth=2, seed=SEEDS[0], max_runs=BUDGET).explore()
    return runs, systematic


def _racy_fields(report):
    return {race.field_name for race in report.races}


def test_strategy_comparison_table(strategy_runs):
    runs, systematic = strategy_runs
    lines = [
        "%-12s | %-6s | %-8s | %-22s | %s"
        % ("strategy", "seed", "events", "events-to-first-race", "racy fields found"),
        "-" * 100,
    ]
    found_by = {}
    for strategy, results in runs.items():
        fields = set()
        for result in results:
            fields |= _racy_fields(result.report)
            lines.append(
                "%-12s | %-6d | %-8d | %-22s | %d"
                % (
                    strategy,
                    result.trace and results.index(result),
                    len(result.events_fired),
                    result.events_to_first_race,
                    len(_racy_fields(result.report)),
                )
            )
        found_by[strategy] = fields
    systematic_fields = set()
    for run in systematic.store.runs:
        systematic_fields |= _racy_fields(detect_races(run.trace))
    lines.append(
        "%-12s | %-6s | %-8d | %-22s | %d"
        % (
            "systematic",
            "-",
            sum(run.depth for run in systematic.store.runs),
            "n/a (enumerates)",
            len(systematic_fields),
        )
    )
    found_by["systematic"] = systematic_fields
    publish("exploration_strategies.txt", "\n".join(lines))

    # On a like-for-like budget, the systematic explorer finds at least as
    # many distinct racy fields as the weakest single random session (the
    # random strategies above aggregate three sessions' worth of events).
    worst_monkey = min(len(_racy_fields(r.report)) for r in runs["monkey"])
    assert len(found_by["systematic"]) >= worst_monkey
    # And every strategy finds at least one of the seeded races.
    for strategy, fields in found_by.items():
        assert fields, strategy


def test_monkey_lacks_intents(strategy_runs):
    runs, _ = strategy_runs
    for result in runs["monkey"]:
        assert all(not key.startswith("intent:") for key in result.events_fired)


def test_dynodroid_uses_intents_eventually(strategy_runs):
    runs, _ = strategy_runs
    assert any(
        any(key.startswith("intent:") for key in result.events_fired)
        for result in runs["dynodroid"]
    )


def test_systematic_exploration_speed(benchmark):
    def explore():
        return UIExplorer(NotesApp(), depth=1, seed=0).explore()

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert result.runs_executed >= 1


def test_random_exploration_speed(benchmark):
    def explore():
        return MonkeyExplorer(DEMO_APPS["messenger"], budget=5, seed=0).run()

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert result.trace is not None
