"""Benchmark — exploration strategies: suspiciousness-guided vs blind search.

The detector only reports races on schedules the explorer manifests, so
exploration efficiency is measured in *races found per event sequence*.
This benchmark closes the loop quantitatively on the synthetic app
registry (``repro.apps.registry``):

1. **Seed phase** (per app): a systematic DFS exploration
   (:class:`UIExplorer`) plays the role of yesterday's corpus — every
   trace is analyzed and its per-location signal document
   (:func:`repro.explorer.suspicion.signal_document`) mined into a
   :class:`SuspicionIndex`.  Seed sequences are *not* charged to any
   strategy: they model history that already exists.
2. **Measure phase** (per app): four strategies get the same per-sequence
   event budget — ``guided`` (consumes the index; perturbs racy and
   near-miss sequences by reorder / lifecycle-inject / reseed),
   ``monkey`` (uniform random), ``dynodroid`` (biased random + intents),
   and ``dfs`` (systematic enumeration, no index).  Scored on distinct
   ``(location, category)`` races found, sequences used, and
   sequences-to-first-race.

The committed floor — enforced by ``--smoke`` in CI — is **guided >=
1.5x monkey on races-found-per-100-sequences** (aggregated over the
app set).  Everything is seeded, so the numbers are deterministic.

The full run writes ``benchmarks/results/BENCH_exploration.json``.
``--history <dir>`` (or ``$DROIDRACER_HISTORY``) appends one
``bench.exploration`` :class:`repro.obs.RunRecord` per invocation with
the result document in ``extra["payload"]``, so
``droidracer obs history --export-bench`` regenerates the committed
file from the store.
"""

import hashlib
import json
import pathlib
import sys

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC_DIR)

from repro.apps.registry import paper_app  # noqa: E402
from repro.core.race_detector import RaceDetector  # noqa: E402
from repro.explorer import (  # noqa: E402
    DynodroidExplorer,
    GuidedExplorer,
    MonkeyExplorer,
    SuspicionIndex,
    UIExplorer,
    signal_document,
)
from repro.obs import (  # noqa: E402
    HistoryStore,
    RunRecord,
    combine_digests,
    report_digest,
    resolve_history_dir,
)

RESULTS = pathlib.Path(__file__).resolve().parent / "results"

#: The CI floor: guided must find at least this many times more races
#: per 100 sequences than uniform-random monkey testing.
MIN_GUIDED_VS_MONKEY = 1.5

SMOKE_APPS = ("Music Player", "SGTPuzzles", "Remind Me")
FULL_APPS = (
    "Aard Dictionary",
    "Music Player",
    "My Tracks",
    "Messenger",
    "Tomdroid Notes",
    "FBReader",
    "Browser",
    "OpenSudoku",
    "K-9 Mail",
    "SGTPuzzles",
    "Remind Me",
)

SCALE = 0.1
BUDGET = 4  # events per sequence
SEQUENCES = 4  # sequences per strategy per app
SEED_RUNS = 6  # DFS runs mined into the seed index (not charged)
SEED = 0


def _parse_history(argv):
    """Split ``--history <dir>`` out of ``argv`` (also honouring
    ``$DROIDRACER_HISTORY``); with no history configured the script
    stays inert on the history side."""
    rest = []
    explicit = None
    i = 0
    while i < len(argv):
        if argv[i] == "--history" and i + 1 < len(argv):
            explicit = argv[i + 1]
            i += 2
            continue
        rest.append(argv[i])
        i += 1
    history_dir = resolve_history_dir(explicit)
    return (HistoryStore(history_dir) if history_dir else None), rest


def _span_row(name, seconds, count):
    """A synthetic ``aggregate_spans``-shaped row (see bench_closure)."""
    return {
        "name": name,
        "count": count,
        "wall_seconds": seconds,
        "cpu_seconds": 0.0,
        "self_seconds": seconds,
        "errors": 0,
    }


def _append_record(store, record):
    store.append(record)
    print(
        "history: run record %s appended to %s" % (record.run_id[:12], store.root),
        file=sys.stderr,
    )


def _config_digest(descriptor):
    blob = json.dumps(descriptor, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _races_of(report):
    return {(race.location, race.category.value) for race in report.races}


def seed_index(app, runs=SEED_RUNS, seed=SEED):
    """Mine a suspicion index from a DFS exploration of ``app`` — the
    stand-in for an existing corpus + run history."""
    explorer = UIExplorer(app, depth=2, seed=seed, max_runs=runs)
    result = explorer.explore()
    index = SuspicionIndex()
    for run in result.store.runs:
        if run.trace is None:
            continue
        detector = RaceDetector(run.trace)
        report = detector.detect()
        index.observe(
            signal_document(
                app.name, run.trace, detector.hb, report, events=run.sequence
            )
        )
    return index, result.runs_executed


def measure_guided(app, index):
    result = GuidedExplorer(
        app, index=index, budget=BUDGET, sequences=SEQUENCES, seed=SEED
    ).run()
    return {
        "races": len(result.races),
        "sequences": result.sequence_count,
        "to_first": result.sequences_to_first_race,
    }


def measure_random(app, explorer_cls):
    races = set()
    to_first = None
    for s in range(SEQUENCES):
        run = explorer_cls(app, budget=BUDGET, seed=SEED + s).run()
        found = _races_of(run.report)
        if found and to_first is None:
            to_first = s + 1
        races |= found
    return {"races": len(races), "sequences": SEQUENCES, "to_first": to_first}


def measure_dfs(app):
    """Systematic enumeration on the same sequence budget, no index."""
    result = UIExplorer(
        app, depth=BUDGET, seed=SEED, max_runs=SEQUENCES
    ).explore()
    races = set()
    to_first = None
    sequences = 0
    for run in result.store.runs:
        if run.trace is None:
            continue
        sequences += 1
        found = _races_of(RaceDetector(run.trace).detect())
        if found and to_first is None:
            to_first = sequences
        races |= found
    return {"races": len(races), "sequences": sequences, "to_first": to_first}


def _aggregate(per_app, strategy):
    races = sum(stats[strategy]["races"] for stats in per_app.values())
    sequences = sum(stats[strategy]["sequences"] for stats in per_app.values())
    firsts = [
        stats[strategy]["to_first"]
        for stats in per_app.values()
        if stats[strategy]["to_first"] is not None
    ]
    return {
        "races_found": races,
        "sequences": sequences,
        "races_per_100_sequences": (
            round(100.0 * races / sequences, 4) if sequences else 0.0
        ),
        "apps_with_a_race": len(firsts),
        "mean_sequences_to_first_race": (
            round(sum(firsts) / len(firsts), 4) if firsts else None
        ),
    }


def run_benchmark(history, mode):
    app_names = SMOKE_APPS if mode == "smoke" else FULL_APPS
    per_app = {}
    seed_sequences = {}
    for name in app_names:
        app = paper_app(name, scale=SCALE)
        index, seeded = seed_index(app)
        seed_sequences[name] = seeded
        stats = {
            "guided": measure_guided(app, index),
            "monkey": measure_random(app, MonkeyExplorer),
            "dynodroid": measure_random(app, DynodroidExplorer),
            "dfs": measure_dfs(app),
        }
        per_app[name] = stats
        print(
            "%-16s seed=%d  " % (name[:16], seeded)
            + "  ".join(
                "%s %d/%d" % (s, stats[s]["races"], stats[s]["sequences"])
                for s in ("guided", "monkey", "dynodroid", "dfs")
            )
        )

    strategies = {
        s: _aggregate(per_app, s)
        for s in ("guided", "monkey", "dynodroid", "dfs")
    }
    guided = strategies["guided"]["races_per_100_sequences"]
    monkey = strategies["monkey"]["races_per_100_sequences"]
    ratio = guided / monkey if monkey else float("inf")
    print(
        "races per 100 sequences: "
        + "  ".join(
            "%s %.1f" % (s, strategies[s]["races_per_100_sequences"])
            for s in ("guided", "monkey", "dynodroid", "dfs")
        )
    )
    print("guided vs monkey: %.2fx (floor %.1fx)" % (ratio, MIN_GUIDED_VS_MONKEY))
    assert ratio >= MIN_GUIDED_VS_MONKEY, (
        "guided %.1f races/100seq is below %.1fx monkey's %.1f"
        % (guided, MIN_GUIDED_VS_MONKEY, monkey)
    )

    doc = {
        "benchmark": "exploration-strategies",
        "mode": mode,
        "apps": list(app_names),
        "scale": SCALE,
        "budget": BUDGET,
        "sequences_per_strategy": SEQUENCES,
        "seed_runs": seed_sequences,
        "per_app": per_app,
        "strategies": strategies,
        "guided_vs_monkey": round(ratio, 4),
        "min_ratio_floor": MIN_GUIDED_VS_MONKEY,
    }

    if mode == "full":
        RESULTS.mkdir(exist_ok=True)
        out = RESULTS / "BENCH_exploration.json"
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print("wrote %s" % out)

    if history is not None:
        descriptor = {"benchmark": "exploration-strategies", "mode": mode}
        _append_record(
            history,
            RunRecord(
                command="bench.exploration",
                trace_digest=combine_digests(app_names),
                config_digest=_config_digest(descriptor),
                app="registry",
                trace_name="exploration strategy comparison",
                trace_count=sum(
                    strategies[s]["sequences"] for s in strategies
                ),
                backend="bitmask",
                report_digest=report_digest(
                    {"per_app": per_app, "strategies": strategies}
                ),
                race_count=strategies["guided"]["races_found"],
                spans=[_span_row("bench.exploration.%s" % mode, 0.0, 1)],
                extra={"payload": doc, "exploration": strategies, **descriptor},
            ),
        )
    return 0


def main(argv):
    history, argv = _parse_history(argv)
    mode = "smoke" if "--smoke" in argv else "full"
    return run_benchmark(history, mode)


# -- benchmark E9 (extension): the original §7 strategy comparison -----------
#
# The paper compares its systematic UI Explorer qualitatively with Android
# Monkey and Dynodroid; these pytest benchmarks keep that comparison
# quantitative on the hand-written notes app (distinct racy fields found,
# events to first race) and publish ``exploration_strategies.txt``.

import pytest  # noqa: E402

from repro.apps.notes_app import NotesApp  # noqa: E402
from repro.apps.registry import DEMO_APPS  # noqa: E402
from repro.core import detect_races  # noqa: E402
from repro.explorer import compare_strategies  # noqa: E402

E9_SEEDS = (0, 1, 2)
E9_BUDGET = 6


@pytest.fixture(scope="module")
def strategy_runs():
    app = NotesApp()
    runs = compare_strategies(app, budget=E9_BUDGET, seeds=E9_SEEDS)
    # The systematic explorer enumerates sequences instead of sampling:
    # a depth-2 exploration capped at the same total event budget.
    systematic = UIExplorer(
        app, depth=2, seed=E9_SEEDS[0], max_runs=E9_BUDGET
    ).explore()
    return runs, systematic


def _racy_fields(report):
    return {race.field_name for race in report.races}


def test_strategy_comparison_table(strategy_runs):
    from conftest import publish

    runs, systematic = strategy_runs
    lines = [
        "%-12s | %-6s | %-8s | %-22s | %s"
        % ("strategy", "seed", "events", "events-to-first-race", "racy fields found"),
        "-" * 100,
    ]
    found_by = {}
    for strategy, results in runs.items():
        fields = set()
        for result in results:
            fields |= _racy_fields(result.report)
            lines.append(
                "%-12s | %-6d | %-8d | %-22s | %d"
                % (
                    strategy,
                    result.trace and results.index(result),
                    len(result.events_fired),
                    result.events_to_first_race,
                    len(_racy_fields(result.report)),
                )
            )
        found_by[strategy] = fields
    systematic_fields = set()
    for run in systematic.store.runs:
        systematic_fields |= _racy_fields(detect_races(run.trace))
    lines.append(
        "%-12s | %-6s | %-8d | %-22s | %d"
        % (
            "systematic",
            "-",
            sum(run.depth for run in systematic.store.runs),
            "n/a (enumerates)",
            len(systematic_fields),
        )
    )
    found_by["systematic"] = systematic_fields
    publish("exploration_strategies.txt", "\n".join(lines))

    # On a like-for-like budget, the systematic explorer finds at least as
    # many distinct racy fields as the weakest single random session (the
    # random strategies above aggregate three sessions' worth of events).
    worst_monkey = min(len(_racy_fields(r.report)) for r in runs["monkey"])
    assert len(found_by["systematic"]) >= worst_monkey
    # And every strategy finds at least one of the seeded races.
    for strategy, fields in found_by.items():
        assert fields, strategy


def test_monkey_lacks_intents(strategy_runs):
    runs, _ = strategy_runs
    for result in runs["monkey"]:
        assert all(not key.startswith("intent:") for key in result.events_fired)


def test_dynodroid_uses_intents_eventually(strategy_runs):
    runs, _ = strategy_runs
    assert any(
        any(key.startswith("intent:") for key in result.events_fired)
        for result in runs["dynodroid"]
    )


def test_guided_smoke_floor():
    """The feedback-loop floor, pytest-visible: on the smoke app set the
    guided explorer finds >= MIN_GUIDED_VS_MONKEY x monkey's races per
    100 sequences.  (``--smoke`` runs the same check standalone.)"""
    assert run_benchmark(None, "smoke") == 0


def test_systematic_exploration_speed(benchmark):
    def explore():
        return UIExplorer(NotesApp(), depth=1, seed=0).explore()

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert result.runs_executed >= 1


def test_random_exploration_speed(benchmark):
    def explore():
        return MonkeyExplorer(DEMO_APPS["messenger"], budget=5, seed=0).run()

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert result.trace is not None


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
