"""Benchmark E8 — Figure 8: lifecycle modeling and the enable discipline.

Validates, on live runs, that the runtime drives activities through
Figure 8's machine only, that every lifecycle post is preceded by its
enable (the §4.2 instrumentation discipline), and benchmarks systematic
exploration of lifecycle event sequences.
"""

import pytest

from conftest import publish
from repro.android import AndroidSystem, UIEvent
from repro.apps.music_player import DwFileAct
from repro.apps.registry import MusicPlayerApp
from repro.core import HappensBefore
from repro.core.lifecycle_model import ActivityLifecycle
from repro.core.operations import OpKind
from repro.explorer import UIExplorer


def drive(events, seed=0):
    system = AndroidSystem(seed=seed)
    system.launch(DwFileAct)
    system.run_to_quiescence()
    for event in events:
        system.fire(event)
        system.run_to_quiescence()
    return system


def test_lifecycle_histories_legal():
    scenarios = {
        "back": [UIEvent("back")],
        "rotate": [UIEvent("rotate")],
        "rotate-back": [UIEvent("rotate"), UIEvent("back")],
        "play-back": [UIEvent("click", "playBtn"), UIEvent("back")],
    }
    lines = []
    for name, events in scenarios.items():
        system = drive(events)
        for record in system.ams.stack + system.ams.destroyed_records:
            history = record.activity.lifecycle.history
            lines.append("%-12s %-20s %s" % (name, record.tag, " -> ".join(history)))
            # Legality was enforced online by the machine; re-check here.
            machine = ActivityLifecycle()
            for node in history[1:]:
                machine.advance(node)
    publish("lifecycle_histories.txt", "\n".join(lines))


def test_every_lifecycle_post_has_prior_enable():
    system = drive([UIEvent("back")])
    trace = system.finish()
    hb = HappensBefore(trace)
    enables = {}
    for op in trace:
        if op.kind is OpKind.ENABLE:
            enables.setdefault(op.task, op.index)
    lifecycle_posts = [
        op
        for op in trace
        if op.kind is OpKind.POST and op.event and op.event.startswith("lifecycle:")
    ]
    assert lifecycle_posts
    for post_op in lifecycle_posts:
        assert post_op.event in enables, post_op.render()
        assert hb.ordered(enables[post_op.event], post_op.index)


def test_lifecycle_exploration_speed(benchmark):
    def explore_lifecycle():
        explorer = UIExplorer(
            MusicPlayerApp(),
            depth=2,
            seed=1,
            include_kinds=("back", "rotate", "click"),
            exclude_kinds=(),
            max_runs=8,
        )
        return explorer.explore()

    result = benchmark.pedantic(explore_lifecycle, rounds=1, iterations=1)
    assert result.runs_executed >= 4
