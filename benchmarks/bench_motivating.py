"""Benchmark E4/E5 — Figures 3 and 4: the motivating example.

Regenerates the §2.4 analysis on (a) the hand-encoded traces of the
figures and (b) live runs of the music-player app on the simulated
runtime, asserting the paper's three claims:

* Figure 3 pairs (7,12) and (7,16) are ordered — no races;
* Figure 4 pairs (12,21) and (16,21) race (multithreaded and
  cross-posted respectively);
* Figure 4 pair (7,21) is ordered through the enable edge.
"""

import pytest

from conftest import publish
from repro.apps.paper_traces import (
    FIGURE3_POSITIONS,
    FIGURE4_POSITIONS,
    figure3_trace,
    figure4_trace,
)
from repro.apps.music_player import run_scenario
from repro.core import HappensBefore, RaceCategory, detect_races


def test_figure3_reproduction():
    trace = figure3_trace()
    hb = HappensBefore(trace)
    p = FIGURE3_POSITIONS
    report = detect_races(trace)
    lines = [
        "Figure 3 (PLAY clicked):",
        "  (7,12) write/read ordered: %s" % hb.ordered(p["write_launch"], p["read_background"]),
        "  (7,16) write/read ordered: %s" % hb.ordered(p["write_launch"], p["read_post_execute"]),
        "  races reported: %d" % len(report.races),
    ]
    publish("figure3.txt", "\n".join(lines))
    assert hb.ordered(p["write_launch"], p["read_background"])
    assert hb.ordered(p["write_launch"], p["read_post_execute"])
    assert report.races == []


def test_figure4_reproduction():
    trace = figure4_trace()
    hb = HappensBefore(trace)
    q = FIGURE4_POSITIONS
    report = detect_races(trace)
    lines = ["Figure 4 (BACK pressed):"]
    for race in report.races:
        lines.append("  %s" % race)
    lines.append(
        "  (7,21) ordered via enable: %s"
        % hb.ordered(q["write_launch"], q["write_destroy"])
    )
    publish("figure4.txt", "\n".join(lines))
    assert hb.ordered(q["write_launch"], q["write_destroy"])
    categories = sorted(r.category.value for r in report.races)
    assert categories == ["cross-posted", "multithreaded"]


@pytest.mark.parametrize("seed", [0, 3, 11], ids=lambda s: "seed%d" % s)
def test_live_music_player_back_scenario(seed):
    _, trace = run_scenario(press_back=True, seed=seed)
    report = detect_races(trace)
    flag = [r for r in report.races if r.field_name == "DwFileAct.isActivityDestroyed"]
    assert sorted(r.category.value for r in flag) == ["cross-posted", "multithreaded"]


def test_live_music_player_play_scenario():
    _, trace = run_scenario(press_back=False, seed=3)
    report = detect_races(trace)
    assert report.races == []


def test_motivating_pipeline_speed(benchmark):
    def pipeline():
        _, trace = run_scenario(press_back=True, seed=3)
        return detect_races(trace)

    report = benchmark(pipeline)
    assert report.count(RaceCategory.MULTITHREADED) == 1
