"""Benchmark E3 — §6 "Performance": the node-coalescing optimization.

The paper: coalescing contiguous memory accesses reduces graph node
counts to 1.4%–24.8% of the trace length (average 11.1%) without
sacrificing precision; the Race Detector takes seconds to hours within
20 MB.  This benchmark regenerates the per-app reduction table, checks
the band at full scale, verifies precision preservation, and measures
the speedup coalescing buys.
"""

import pytest

from conftest import bench_scale, publish
from repro.apps.specs import SPEC_BY_NAME
from repro.bench import render_performance
from repro.core import HappensBefore, detect_races


def test_performance_table(paper_results):
    text = render_performance(paper_results)
    publish("performance.txt", text)


@pytest.mark.skipif(bench_scale() < 1.0, reason="band calibrated at full scale")
def test_reduction_ratios_in_paper_band(paper_results):
    ratios = [r.report.reduction_ratio for r in paper_results]
    assert all(0.012 <= ratio <= 0.26 for ratio in ratios), ratios
    average = sum(ratios) / len(ratios)
    assert 0.05 <= average <= 0.20  # paper: 11.1% average


def test_coalescing_preserves_precision(paper_results):
    """'...without sacrificing on the precision' — verified on the two
    smallest subjects (the dense analysis is quadratically bigger)."""
    for name in ("Aard Dictionary", "Music Player"):
        result = next(r for r in paper_results if r.spec.name == name)
        dense = detect_races(result.trace, coalesce=False)
        key = lambda rep: sorted((r.location, r.category.value) for r in rep.races)
        assert key(dense) == key(result.report)


def test_coalescing_speedup(paper_results):
    result = next(r for r in paper_results if r.spec.name == "Aard Dictionary")
    dense = detect_races(result.trace, coalesce=False)
    coalesced = detect_races(result.trace, coalesce=True)
    assert coalesced.node_count < dense.node_count
    publish(
        "coalescing_speedup.txt",
        "Aard Dictionary: %d nodes dense (%.2fs)  ->  %d nodes coalesced (%.2fs)"
        % (
            dense.node_count,
            dense.analysis_seconds,
            coalesced.node_count,
            coalesced.analysis_seconds,
        ),
    )


@pytest.mark.parametrize("coalesce", [True, False], ids=["coalesced", "dense"])
def test_hb_construction_speed(benchmark, paper_results, coalesce):
    result = next(r for r in paper_results if r.spec.name == "Music Player")
    trace = result.trace
    hb = benchmark.pedantic(
        lambda: HappensBefore(trace, coalesce=coalesce), rounds=2, iterations=1
    )
    assert hb.stats.node_count > 0
