"""Benchmark E7 — §4.3 complexity: detector cost versus trace length.

The paper's algorithm computes a transitive closure 'cubic in the length
of the trace' and relies on coalescing to keep node counts small.  This
benchmark regenerates the scaling series: one subject generated at
increasing scales, detector wall-clock and node counts per point.
"""

import time

import pytest

from conftest import publish
from repro.apps.specs import SPEC_BY_NAME
from repro.apps.synthetic import SyntheticApp
from repro.core import detect_races

SCALES = (0.1, 0.2, 0.4, 0.8)


@pytest.fixture(scope="module")
def scaling_series():
    spec = SPEC_BY_NAME["Messenger"]
    series = []
    for scale in SCALES:
        app = SyntheticApp(spec, scale=scale)
        _, trace = app.run(seed=5)
        start = time.perf_counter()
        report = detect_races(trace)
        elapsed = time.perf_counter() - start
        series.append((scale, len(trace), report.node_count, elapsed, len(report.races)))
    return series


def test_scaling_series(scaling_series):
    lines = [
        "%6s | %10s | %8s | %10s | %6s" % ("scale", "trace len", "nodes", "detect (s)", "races"),
        "-" * 56,
    ]
    for scale, length, nodes, elapsed, races in scaling_series:
        lines.append(
            "%6.2f | %10d | %8d | %10.3f | %6d" % (scale, length, nodes, elapsed, races)
        )
    publish("scaling.txt", "\n".join(lines))
    # Race counts are scale-invariant.
    assert len({races for *_, races in scaling_series}) == 1
    # Trace length grows with scale.
    lengths = [length for _, length, *_ in scaling_series]
    assert lengths == sorted(lengths) and lengths[0] < lengths[-1]


def test_detection_scales_polynomially(scaling_series):
    """Loose check: time grows no worse than ~cubically in node count."""
    (_, _, n1, t1, _), (_, _, n2, t2, _) = scaling_series[0], scaling_series[-1]
    if t1 < 1e-3:
        pytest.skip("first point too fast to compare")
    assert t2 / t1 < 8 * (n2 / n1) ** 3


@pytest.mark.parametrize("scale", [0.1, 0.4], ids=lambda s: "scale%.1f" % s)
def test_detector_speed_at_scale(benchmark, scale):
    spec = SPEC_BY_NAME["Messenger"]
    app = SyntheticApp(spec, scale=scale)
    _, trace = app.run(seed=5)
    report = benchmark.pedantic(lambda: detect_races(trace), rounds=2, iterations=1)
    assert len(report.races) == spec.total_reported
