"""Service benchmark: ingest and end-to-end analysis latency for
``droidracer serve`` through a real socket.

Boots an in-process :class:`BackgroundServer` (inline workers — on CI
hardware a process pool would measure fork cost, not service cost) and
drives ladder traces of increasing size through the full HTTP path,
measuring three latencies per configuration:

* **ingest** — upload with ``analyze=0``: parse + content-address +
  store, no job;
* **end-to-end** — upload + queue + analyze + poll-to-done: what a
  fleet driver waits for a fresh trace;
* **cached** — resubmitting the same trace: the
  ``(trace_digest, config_digest)`` key short-circuits through the
  result cache without touching the queue bound or a worker.

Every configuration also verifies the served report against in-process
detection (``report_digest`` equality) before recording a time — the
numbers can never come from a diverging analysis.

Beyond the per-size wall-clock rows, the sweep records
histogram-derived latency quantiles (``service_latency`` in the result
document): the server's own request-latency and job-run histograms
scraped from ``/v1/metrics.json``, plus a client-side histogram over
every cached resubmission — p50/p95/p99 each, landing in both
``BENCH_service.json`` and the ``bench.service`` run-history payload.

    python benchmarks/bench_service.py          # full sweep, writes BENCH_service.json
    python benchmarks/bench_service.py --smoke  # tiny sizes, CI gate

With a run-history directory configured (``--history DIR`` or
``$DROIDRACER_HISTORY``), the full sweep appends a
:class:`repro.obs.RunRecord` (command ``bench.service``) whose
``extra["payload"]`` is the exact result document, making the
committed ``BENCH_service.json`` a derived view (``droidracer obs
history --export-bench``).
"""

import hashlib
import json
import pathlib
import sys
import tempfile
import time

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC_DIR)

from repro.apps.ladder import ladder_trace  # noqa: E402
from repro.core.race_detector import DetectorConfig  # noqa: E402
from repro.obs import (  # noqa: E402
    Histogram,
    HistoryStore,
    RunRecord,
    combine_digests,
    report_digest,
    resolve_history_dir,
)
from repro.service import BackgroundServer, ServiceClient  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results"

#: (levels, width) ladder sizes.
SMOKE_SIZES = [(4, 2)]
FULL_SIZES = [(6, 3), (10, 6), (14, 8)]


def _parse_history(argv):
    rest = []
    explicit = None
    i = 0
    while i < len(argv):
        if argv[i] == "--history" and i + 1 < len(argv):
            explicit = argv[i + 1]
            i += 2
            continue
        rest.append(argv[i])
        i += 1
    history_dir = resolve_history_dir(explicit)
    return (HistoryStore(history_dir) if history_dir else None), rest


def _span_row(name, seconds, count):
    return {
        "name": name,
        "count": count,
        "wall_seconds": seconds,
        "cpu_seconds": 0.0,
        "self_seconds": seconds,
        "errors": 0,
    }


def _histogram_quantiles(hist_doc):
    """p50/p95/p99 (+count) from one ``/v1/metrics.json`` histogram
    aggregate or a local :class:`Histogram`'s ``to_json()``."""
    return {
        "count": int(hist_doc.get("count", 0)),
        "p50": hist_doc.get("p50", 0.0),
        "p95": hist_doc.get("p95", 0.0),
        "p99": hist_doc.get("p99", 0.0),
    }


def service_latency_doc(client, cached_hist):
    """Histogram-derived latency quantiles: the server's own
    request-latency and job-run histograms (scraped from
    ``/v1/metrics.json``) plus the client-observed cached-resubmit
    histogram."""
    telemetry = client.metrics_json()
    by_name = {fam["name"]: fam for fam in telemetry.get("families", [])}

    def aggregate(name):
        fam = by_name.get(name) or {}
        return _histogram_quantiles(fam.get("aggregate") or {})

    return {
        "http_request_seconds": aggregate("droidracer_http_request_seconds"),
        "job_run_seconds": aggregate("droidracer_job_run_seconds"),
        "cached_resubmit_seconds": _histogram_quantiles(cached_hist.to_json()),
    }


def measure(client, levels, width, config, cached_hist):
    trace = ladder_trace(levels, width, name="bench-%dx%d" % (levels, width))
    jsonl = trace.to_jsonl()

    t0 = time.perf_counter()
    stored = client.upload(jsonl, name=trace.name + "-stored", analyze=False)
    ingest_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    payload = client.upload(jsonl, name=trace.name)
    job = client.wait(payload["job"]["job_id"], timeout=300, poll=0.01)
    e2e_seconds = time.perf_counter() - t0
    assert job["state"] == "done", "job failed: %s" % job.get("error")
    assert stored["trace_digest"] == payload["trace_digest"]

    # Correctness before timing: the served answer must match offline
    # detection bit for bit on every digest-bearing field.
    served = client.report(payload["trace_digest"])
    offline = config.build_detector(trace).detect().to_dict()
    assert report_digest(served) == report_digest(offline), (
        "served report diverges from offline detection at %dx%d"
        % (levels, width)
    )

    samples = [_timed_resubmit(client, jsonl, trace.name) for _ in range(3)]
    for sample in samples:
        cached_hist.observe(sample)
    cached_seconds = min(samples)
    return {
        "levels": levels,
        "width": width,
        "trace_length": len(trace),
        "races": len(served["races"]),
        "trace_digest": payload["trace_digest"],
        "ingest_seconds": ingest_seconds,
        "e2e_seconds": e2e_seconds,
        "analysis_seconds": job["seconds"],
        "cached_seconds": cached_seconds,
        "ops_per_sec_e2e": len(trace) / e2e_seconds,
    }


def _timed_resubmit(client, jsonl, name):
    t0 = time.perf_counter()
    payload = client.upload(jsonl, name=name)
    elapsed = time.perf_counter() - t0
    assert payload["job"]["state"] == "done"
    return elapsed


def main(argv):
    history, argv = _parse_history(argv)
    smoke = "--smoke" in argv
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    config = DetectorConfig()

    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        with BackgroundServer(
            store_root=tmp, config=config, jobs=0, queue_depth=64
        ) as server:
            client = ServiceClient(server.base_url, timeout=300)
            cached_hist = Histogram()
            for levels, width in sizes:
                row = measure(client, levels, width, config, cached_hist)
                rows.append(row)
                print(
                    "ladder %2dx%-2d  %5d ops  %d races  ingest %6.1fms  "
                    "e2e %7.1fms (analysis %6.1fms)  cached %5.1fms"
                    % (
                        levels,
                        width,
                        row["trace_length"],
                        row["races"],
                        row["ingest_seconds"] * 1e3,
                        row["e2e_seconds"] * 1e3,
                        row["analysis_seconds"] * 1e3,
                        row["cached_seconds"] * 1e3,
                    )
                )
            status = server.service.status()
            assert status["queue"]["failed"] == 0, status["queue"]
            latency = service_latency_doc(client, cached_hist)
            client.close()

    request_agg = latency["http_request_seconds"]
    print(
        "server-side request latency  p50 %5.1fms  p95 %5.1fms  p99 %5.1fms"
        "  (%d requests)"
        % (
            request_agg["p50"] * 1e3,
            request_agg["p95"] * 1e3,
            request_agg["p99"] * 1e3,
            request_agg["count"],
        )
    )

    largest = rows[-1]
    if smoke:
        # CI gate: a cached resubmission must beat fresh end-to-end
        # analysis — if it does not, the cache short-circuit is broken.
        assert largest["cached_seconds"] < largest["e2e_seconds"], (
            "cached resubmit (%.1fms) not faster than fresh analysis (%.1fms)"
            % (largest["cached_seconds"] * 1e3, largest["e2e_seconds"] * 1e3)
        )
        # The scraped histograms must be populated and monotone — the
        # telemetry path runs under CI too, not only in tests.
        for name, agg in latency.items():
            assert agg["count"] > 0, "empty latency histogram %s" % name
            assert 0.0 <= agg["p50"] <= agg["p95"] <= agg["p99"], (
                "non-monotone quantiles in %s: %s" % (name, agg)
            )
        print("smoke OK: reports identical, cache short-circuit effective")
        return 0

    doc = {
        "benchmark": "service",
        "trace_family": "repro.apps.ladder",
        "workers": "inline",
        "configs": [
            {k: v for k, v in row.items() if k != "trace_digest"}
            for row in rows
        ],
        "largest_cached_speedup": largest["e2e_seconds"]
        / largest["cached_seconds"],
        "service_latency": latency,
    }
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_service.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print("wrote %s" % out)

    if history is not None:
        descriptor = {
            "benchmark": "service",
            "mode": "full",
            "sizes": [list(size) for size in sizes],
        }
        record = RunRecord(
            command="bench.service",
            trace_digest=combine_digests(row["trace_digest"] for row in rows),
            config_digest=hashlib.sha256(
                json.dumps(descriptor, sort_keys=True).encode("utf-8")
            ).hexdigest(),
            app="ladder",
            trace_name="service sweep",
            trace_count=len(rows),
            trace_length=sum(row["trace_length"] for row in rows),
            backend=config.backend,
            race_count=sum(row["races"] for row in rows),
            spans=[
                _span_row(
                    "bench.service.ingest",
                    sum(row["ingest_seconds"] for row in rows),
                    len(rows),
                ),
                _span_row(
                    "bench.service.e2e",
                    sum(row["e2e_seconds"] for row in rows),
                    len(rows),
                ),
                _span_row(
                    "bench.service.cached",
                    sum(row["cached_seconds"] for row in rows),
                    len(rows),
                ),
            ],
            extra={"payload": doc, **descriptor},
        )
        history.append(record)
        print(
            "history: run record %s appended to %s"
            % (record.run_id[:12], history.root),
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
