"""Benchmark E1 — Table 2: statistics about applications and traces.

Regenerates the paper's Table 2 (trace length, distinct fields, thread
counts with/without queues, async task count) for all 15 subjects, checks
the scale-invariant columns exactly against the paper, and benchmarks the
trace-generation pipeline (UI-driven run of the simulated runtime).
"""

import pytest

from conftest import bench_scale, publish
from repro.apps.specs import ALL_SPECS, SPEC_BY_NAME
from repro.apps.synthetic import SyntheticApp
from repro.bench import render_table2


def test_table2_regeneration(paper_results):
    text = render_table2(paper_results)
    publish("table2.txt", text)
    for result in paper_results:
        spec, stats = result.spec, result.stats
        assert stats.fields == spec.fields
        assert stats.threads_without_queues == spec.threads_plain
        assert stats.threads_with_queues == spec.threads_looper
        assert stats.async_tasks == spec.async_tasks
        if bench_scale() == 1.0:
            # Trace length tracks the paper's value closely at full scale.
            assert abs(stats.trace_length - spec.trace_length) / spec.trace_length < 0.10


@pytest.mark.parametrize(
    "name", ["Aard Dictionary", "Messenger", "K-9 Mail"], ids=str
)
def test_trace_generation_speed(benchmark, name):
    """Trace Generator throughput for representative small/medium/large
    subjects (the paper reports up to 5x instrumentation slowdown on a
    real device; ours is a simulator, so only the shape matters)."""
    spec = SPEC_BY_NAME[name]

    def generate():
        app = SyntheticApp(spec, scale=min(bench_scale(), 0.5))
        _, trace = app.run(seed=5)
        return len(trace)

    length = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert length > 0
