"""Benchmark E2 — Table 3: data races reported by category.

Regenerates the paper's Table 3 with per-category ``X (Y)`` entries
(reports and true positives), asserts the counts match the paper exactly
for every subject — including the totals row: 27(15) multithreaded,
147(44) cross-posted, 32(17) co-enabled, 6(2) delayed on the open-source
apps, 215 reports / 80 true positives overall — and benchmarks the race
detector itself.
"""

import pytest

from conftest import publish
from repro.apps.specs import SPEC_BY_NAME
from repro.bench import render_table3, render_table3_expected
from repro.core import detect_races
from repro.core.classification import RaceCategory


def test_table3_regeneration(paper_results):
    text = render_table3(paper_results)
    publish("table3.txt", text)
    check = render_table3_expected(paper_results)
    publish("table3_check.txt", check)
    assert "MISMATCH" not in check


def test_table3_exact_counts(paper_results):
    for result in paper_results:
        counts = result.category_counts()
        for category in RaceCategory:
            reported, true = counts[category]
            quota = result.spec.quota(category)
            assert reported == quota.reported, (result.spec.name, category)
            if not result.spec.proprietary:
                assert true == quota.true, (result.spec.name, category)


def test_open_source_grand_totals(open_source_results):
    reported = sum(len(r.report.races) for r in open_source_results)
    true = sum(
        sum(t for _, t in r.category_counts().values()) for r in open_source_results
    )
    assert reported == 215  # §6: "Out of the total 215 reports"
    assert true == 80  # "80 (37%) were confirmed to be true positives"


def test_proprietary_totals(paper_results, open_source_results):
    proprietary = [r for r in paper_results if r.spec.proprietary]
    reported = sum(len(r.report.races) for r in proprietary)
    assert reported == 546  # §6: "we found a total of 546 races"


@pytest.mark.parametrize("name", ["Music Player", "Browser", "Flipkart"], ids=str)
def test_race_detection_speed(benchmark, paper_results, name):
    """Race Detector runtime on representative traces (the paper reports
    seconds to hours on a 2.10 GHz Xeon)."""
    result = next(r for r in paper_results if r.spec.name == name)
    trace = result.trace
    report = benchmark.pedantic(lambda: detect_races(trace), rounds=2, iterations=1)
    assert len(report.races) == result.spec.total_reported
