"""Benchmark — vc triage tier: racy-sparse corpus throughput with a soundness gate.

The triage tier (``DetectorConfig(triage="vc")``, PR 8) runs the
streaming vector-clock under-approximation of the paper's ≺st/≺mt
relation before the graph closure: a zero-race vc verdict proves the
trace race-free and skips the closure entirely; any vc race escalates
the trace to the full detector, whose report must be byte-identical to
a triage-off run (the triage knob is excluded from the config digest,
so cached and fresh closure runs share keys).

On a racy-sparse corpus — the realistic shape, where most recorded app
traces are clean and a minority race — the closure's superlinear cost
is paid only for the racy minority, so end-to-end batch wall clock
drops by the race-free fraction.  This benchmark quantifies that:

* ``--smoke`` (the CI gate) checks the two soundness contracts on the
  regression trace families in seconds: the closure's racy-location set
  is a subset of the vc pass's on every trace (no trace the closure
  would flag is ever filtered), and every escalated report digests
  identically to the closure-only run's.
* the full run builds a synthetic corpus that is >= 80% race-free,
  measures ``BatchAnalyzer`` end-to-end with triage off vs. on, asserts
  the >= 3x throughput floor with zero missed races, and writes
  ``benchmarks/results/BENCH_triage.json``.

``--history <dir>`` (or ``$DROIDRACER_HISTORY``) appends one
``bench.triage`` :class:`repro.obs.RunRecord` per invocation; the full
run's result document rides in ``extra["payload"]`` so
``droidracer obs history --export-bench bench.triage`` regenerates
``BENCH_triage.json`` from the store.
"""

import hashlib
import json
import pathlib
import shutil
import sys
import tempfile

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC_DIR)

from repro.apps.ladder import (  # noqa: E402
    ladder_trace,
    lock_handoff_trace,
    wide_trace,
)
from repro.core import detect_races, triage_races  # noqa: E402
from repro.core.operations import (  # noqa: E402
    acquire,
    attachq,
    begin,
    end,
    looponq,
    post,
    release,
    threadinit,
    write,
)
from repro.core.race_detector import DetectorConfig  # noqa: E402
from repro.core.trace import TraceBuilder  # noqa: E402
from repro.core.vc_triage import TRIAGE_VC  # noqa: E402
from repro.corpus import BatchAnalyzer, TraceStore  # noqa: E402
from repro.obs import (  # noqa: E402
    HistoryStore,
    RunRecord,
    Tracer,
    combine_digests,
    report_digest,
    resolve_history_dir,
)

RESULTS = pathlib.Path(__file__).resolve().parent / "results"

#: Full-run corpus shape: ``QUIET_TRACES`` race-free traces (driver-FIFO
#: looper workloads the closure still has to saturate in full) against
#: ``RACY_TRACES`` closure ladders + a lock-handoff trace.  21/25 clean
#: = 84% race-free, over the >= 80% the acceptance criterion names.
QUIET_TRACES = 21
RACY_TRACES = 4

#: Acceptance floor for the full run: end-to-end batch wall clock with
#: triage on vs. off on the racy-sparse corpus.
MIN_SPEEDUP = 3.0


def quiet_trace(loopers, tasks, body, seed, name):
    """A race-free looper workload the vc pass can prove clean.

    One driver posts every task in program order, so FIFO totally
    orders each looper's queue; tasks write the looper-hot location and
    a private lock-guarded cell ``body`` times.  The lock cycles break
    access coalescing, so the closure pays full per-node cost — the
    honest baseline for what triage skips.
    """
    b = TraceBuilder(name)
    b.add(threadinit("driver"))
    ts = ["looper%d" % k for k in range(loopers)]
    for t in ts:
        b.extend([threadinit(t), attachq(t), looponq(t)])
    # Task and cell names carry ``seed`` so every (loopers, tasks, body,
    # seed) combination is a distinct trace in the content-addressed
    # store — otherwise ingest would dedupe repeats of the same shape.
    job = lambda i: "q%d_job%d" % (seed, i)
    for i in range(tasks):
        b.add(post("driver", job(i), ts[(i + seed) % loopers]))
    for i in range(tasks):
        t = ts[(i + seed) % loopers]
        b.add(begin(t, job(i)))
        b.add(write(t, "%s.state" % t))
        for _ in range(body):
            b.add(acquire(t, "q%d_cell%d.lock" % (seed, i)))
            b.add(write(t, "q%d_cell%d.v" % (seed, i)))
            b.add(release(t, "q%d_cell%d.lock" % (seed, i)))
        b.add(end(t, job(i)))
    return b.build()


#: Regression families for the smoke gate — the same shapes the
#: differential suite (tests/test_triage.py) sweeps, plus a quiet trace
#: so the gate exercises the filtered path too.
def smoke_traces():
    return [
        ladder_trace(3, 4),
        ladder_trace(4, 4, loopers=3),
        ladder_trace(3, 5, rogues=0),
        wide_trace(8, tasks_per_thread=4),
        lock_handoff_trace(),
        quiet_trace(3, 12, 3, 0, "quiet-smoke"),
    ]


def _parse_history(argv):
    """Split ``--history <dir>`` out of ``argv`` (also honouring
    ``$DROIDRACER_HISTORY`` via ``resolve_history_dir``); with no
    history configured the script stays inert."""
    rest = []
    explicit = None
    i = 0
    while i < len(argv):
        if argv[i] == "--history" and i + 1 < len(argv):
            explicit = argv[i + 1]
            i += 2
            continue
        rest.append(argv[i])
        i += 1
    history_dir = resolve_history_dir(explicit)
    return (HistoryStore(history_dir) if history_dir else None), rest


def _span_row(name, seconds, count):
    """A synthetic ``aggregate_spans``-shaped row (see bench_closure)."""
    return {
        "name": name,
        "count": count,
        "wall_seconds": seconds,
        "cpu_seconds": 0.0,
        "self_seconds": seconds,
        "errors": 0,
    }


def _append_record(store, record):
    store.append(record)
    print(
        "history: run record %s appended to %s" % (record.run_id[:12], store.root),
        file=sys.stderr,
    )


def _config_digest(descriptor):
    blob = json.dumps(descriptor, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def check_subset(trace):
    """The soundness contract on one trace: every closure-racy location
    is vc-racy, so a clean vc verdict can never hide a closure race.
    Returns (closure_report, vc_report)."""
    closure = detect_races(trace)
    vc = triage_races(trace)
    closure_locations = {race.location for race in closure.races}
    vc_locations = set(vc.racy_locations())
    missed = closure_locations - vc_locations
    assert not missed, (
        "triage would filter closure races at %s on %s"
        % (sorted(missed), trace.name)
    )
    return closure, vc


def build_corpus(root):
    """The racy-sparse corpus: quiet majority, racy minority."""
    store = TraceStore(root)
    quiet = 0
    for i in range(QUIET_TRACES):
        trace = quiet_trace(
            loopers=3 + i % 2,
            tasks=36 + 4 * (i % 3),
            body=5 + i % 3,
            seed=i,
            name="quiet-%02d" % i,
        )
        store.ingest(trace, app="quiet")
        quiet += 1
    store.ingest(ladder_trace(4, 6, name="racy-ladder-a"), app="racy")
    store.ingest(ladder_trace(3, 5, loopers=3, name="racy-ladder-b"), app="racy")
    store.ingest(ladder_trace(5, 4, rogues=2, name="racy-ladder-c"), app="racy")
    store.ingest(lock_handoff_trace(), app="racy")
    stored_quiet = sum(1 for e in store.entries() if e.app == "quiet")
    assert stored_quiet == quiet, (
        "content-addressed dedup collapsed quiet traces (%d of %d stored)"
        % (stored_quiet, quiet)
    )
    return store, quiet


def _measure_batch(store, triage):
    config = DetectorConfig(triage=triage)
    analyzer = BatchAnalyzer(store, cache=None, jobs=1, config=config)
    tracer = Tracer()
    with tracer.span("bench.batch") as span:
        batch = analyzer.analyze()
    return span.wall_seconds, batch


def _racy_digests(batch):
    """digest -> report_digest for every trace the closure found racy."""
    out = {}
    for result in batch.results:
        if result.report is not None and result.report.races:
            out[result.entry.digest] = report_digest(result.report.to_dict())
    return out


def run_smoke(history):
    traces = smoke_traces()
    for trace in traces:
        closure, vc = check_subset(trace)
        print(
            "subset OK  %-16s %4d ops  closure %2d race(s)  vc %2d race(s)"
            % (trace.name, len(trace), len(closure.races), len(vc.races))
        )

    # Escalated-path digest identity through the batch pipeline: analyze
    # a tiny mixed corpus with triage off and on; every closure-racy
    # trace must be escalated and its report must digest identically.
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-triage-smoke-"))
    try:
        store = TraceStore(workdir / "corpus")
        for trace in smoke_traces():
            store.ingest(trace, app="smoke")
        _, baseline = _measure_batch(store, triage="off")
        _, triaged = _measure_batch(store, triage=TRIAGE_VC)
        base_digests = _racy_digests(baseline)
        triage_digests = _racy_digests(triaged)
        assert base_digests == triage_digests, (
            "escalated reports diverge from closure-only reports"
        )
        assert triaged.triage_filtered >= 1, "smoke corpus filtered nothing"
        assert (
            triaged.triage_filtered + triaged.triage_escalated
            == len(triaged.results)
        )
        print(
            "escalation OK: %d trace(s) filtered, %d escalated, "
            "%d racy report digest(s) identical"
            % (
                triaged.triage_filtered,
                triaged.triage_escalated,
                len(base_digests),
            )
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if history is not None:
        descriptor = {"benchmark": "triage-tier", "mode": "smoke"}
        _append_record(
            history,
            RunRecord(
                command="bench.triage",
                trace_digest=combine_digests(t.name for t in traces),
                config_digest=_config_digest(descriptor),
                app="ladder",
                trace_name="triage smoke",
                trace_count=len(traces),
                trace_length=sum(len(t) for t in traces),
                backend="vc",
                report_digest=report_digest(
                    {
                        "filtered": triaged.triage_filtered,
                        "escalated": triaged.triage_escalated,
                        "racy_digests": sorted(base_digests.values()),
                    }
                ),
                race_count=sum(
                    len(r.report.races)
                    for r in baseline.results
                    if r.report is not None
                ),
                spans=[_span_row("bench.triage.smoke", 0.0, 1)],
                extra=descriptor,
            ),
        )
    print("smoke OK: closure racy locations subset of vc on every family")
    return 0


def run_full(history):
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-triage-"))
    try:
        store, quiet = build_corpus(workdir / "corpus")
        total = len(store.entries())
        race_free_fraction = quiet / total
        assert race_free_fraction >= 0.8, (
            "corpus only %.0f%% race-free" % (100 * race_free_fraction)
        )

        closure_seconds, baseline = _measure_batch(store, triage="off")
        triage_seconds, triaged = _measure_batch(store, triage=TRIAGE_VC)

        base_digests = _racy_digests(baseline)
        triage_digests = _racy_digests(triaged)
        missed = set(base_digests) - set(triage_digests)
        assert not missed, "triage missed %d racy trace(s)" % len(missed)
        assert base_digests == triage_digests, (
            "escalated reports diverge from closure-only reports"
        )
        assert triaged.triage_filtered == quiet, (
            "expected %d filtered, got %d" % (quiet, triaged.triage_filtered)
        )

        speedup = closure_seconds / triage_seconds
        print(
            "corpus: %d traces (%d quiet / %d racy, %.0f%% race-free)"
            % (total, quiet, total - quiet, 100 * race_free_fraction)
        )
        print(
            "closure-only %.2fs (%.1f traces/s)  triage=vc %.2fs "
            "(%.1f traces/s)  speedup %.1fx"
            % (
                closure_seconds,
                total / closure_seconds,
                triage_seconds,
                total / triage_seconds,
                speedup,
            )
        )
        assert speedup >= MIN_SPEEDUP, (
            "triage speedup %.2fx below the %.1fx floor" % (speedup, MIN_SPEEDUP)
        )

        doc = {
            "benchmark": "triage-tier",
            "trace_family": "repro.apps.ladder + quiet looper workloads",
            "min_speedup_floor": MIN_SPEEDUP,
            "corpus": {
                "traces": total,
                "race_free": quiet,
                "racy": total - quiet,
                "race_free_fraction": race_free_fraction,
                "trace_length_total": sum(
                    e.length for e in store.entries()
                ),
            },
            "closure_only_seconds": closure_seconds,
            "triage_vc_seconds": triage_seconds,
            "speedup": speedup,
            "triage_filtered": triaged.triage_filtered,
            "triage_escalated": triaged.triage_escalated,
            "racy_traces_missed": 0,
            "racy_report_digests_identical": True,
        }
        RESULTS.mkdir(exist_ok=True)
        out = RESULTS / "BENCH_triage.json"
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print("wrote %s" % out)

        if history is not None:
            descriptor = {"benchmark": "triage-tier", "mode": "full"}
            _append_record(
                history,
                RunRecord(
                    command="bench.triage",
                    trace_digest=combine_digests(
                        e.digest for e in store.entries()
                    ),
                    config_digest=_config_digest(descriptor),
                    app="corpus",
                    trace_name="triage racy-sparse corpus",
                    trace_count=total,
                    trace_length=doc["corpus"]["trace_length_total"],
                    backend="vc",
                    report_digest=report_digest(
                        {
                            "filtered": triaged.triage_filtered,
                            "escalated": triaged.triage_escalated,
                            "racy_digests": sorted(base_digests.values()),
                        }
                    ),
                    race_count=sum(
                        len(r.report.races)
                        for r in baseline.results
                        if r.report is not None
                    ),
                    spans=[
                        _span_row("bench.batch.closure", closure_seconds, 1),
                        _span_row("bench.batch.triage", triage_seconds, 1),
                    ],
                    extra={"payload": doc, **descriptor},
                ),
            )
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv):
    history, argv = _parse_history(argv)
    if "--smoke" in argv:
        return run_smoke(history)
    return run_full(history)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
