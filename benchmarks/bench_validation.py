"""Benchmark E11 (extension) — automated true-positive validation.

The paper's Table 3 true-positive counts came from manual DDMS sessions:
stalling threads, re-ordering trigger events, altering delays.  Our
:class:`~repro.explorer.schedule_explorer.ScheduleExplorer` mechanizes the
same three strategies over the deterministic simulator.  This benchmark
runs it on the hand-written §6 apps and checks the verdicts against the
known ground truth:

* Aard-style Service race       → validated (true positive);
* Messenger Cursor race         → validated (true positive);
* Browser untracked-post races  → unconfirmed (false positives);
* Browser favicon race          → validated (true positive).
"""

import pytest

from conftest import publish
from repro.apps.browser_app import BrowserApp
from repro.apps.dictionary_app import DictionaryApp
from repro.apps.messenger_app import MessengerApp
from repro.explorer import ScheduleExplorer

SEEDS = range(12)

CASES = [
    # (app, events, field, expected_validated)
    (DictionaryApp(), ["click:lookupBtn"], "DictionaryService.loaded", True),
    (DictionaryApp(), ["click:lookupBtn"], "DictionaryService.entries", True),
    (MessengerApp(), ["click:deleteBtn"], "ConversationActivity.rows", True),
    (BrowserApp(), ["click:loadBtn"], "BrowserActivity.favicon", True),
    (BrowserApp(), ["click:loadBtn"], "BrowserActivity.url", False),
    (BrowserApp(), ["click:loadBtn"], "BrowserActivity.progress", False),
    (BrowserApp(), ["click:loadBtn"], "BrowserActivity.title", False),
]


@pytest.fixture(scope="module")
def validation_results():
    results = []
    for app, events, field, expected in CASES:
        explorer = ScheduleExplorer(app, events=events, seeds=SEEDS)
        result = explorer.validate_field_adversarially(field)
        results.append((app.name, field, expected, result))
    return results


def test_validation_verdicts_match_ground_truth(validation_results):
    lines = [
        "%-12s | %-32s | %-9s | %-11s | %s"
        % ("app", "racy field", "expected", "verdict", "orders observed"),
        "-" * 96,
    ]
    for app_name, field, expected, result in validation_results:
        verdict = "validated" if result.validated else "unconfirmed"
        lines.append(
            "%-12s | %-32s | %-9s | %-11s | %d"
            % (
                app_name,
                field,
                "true-pos" if expected else "false-pos",
                verdict,
                len(result.orders_seen),
            )
        )
        assert result.validated == expected, (app_name, field)
    publish("validation.txt", "\n".join(lines))


def test_validation_speed(benchmark):
    explorer = ScheduleExplorer(
        DictionaryApp(), events=["click:lookupBtn"], seeds=range(8)
    )
    result = benchmark.pedantic(
        lambda: explorer.validate_field("DictionaryService.loaded"),
        rounds=1,
        iterations=1,
    )
    assert result.validated
