"""Shared fixtures for the benchmark suite.

The full-scale pipeline over all 15 subjects is computed once per session
and shared across benchmark files.  Set ``REPRO_BENCH_SCALE`` to shrink
trace lengths for a quick pass (default 1.0 = the paper's full lengths).

Every benchmark writes its table/series to ``benchmarks/results/`` and
prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's artifacts on the terminal.
"""

import os
import pathlib

import pytest

from repro.apps.specs import ALL_SPECS, OPEN_SOURCE_SPECS
from repro.bench import run_all

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _benchmarkable(benchmark):
    """Every test in this suite counts as a benchmark — artifact
    regeneration must run under ``--benchmark-only`` too (pulling the
    fixture into every test's closure defeats the only-benchmarks skip)."""
    yield


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def paper_results():
    """Full pipeline results for all 15 subjects (one representative test
    each, fixed seed — the Table 2/3 inputs)."""
    return run_all(ALL_SPECS, scale=bench_scale(), seed=5)


@pytest.fixture(scope="session")
def open_source_results(paper_results):
    open_names = {spec.name for spec in OPEN_SOURCE_SPECS}
    return [r for r in paper_results if r.spec.name in open_names]


def publish(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print("=" * 78)
    print("artifact: %s" % name)
    print("=" * 78)
    print(text)
