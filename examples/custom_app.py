#!/usr/bin/env python3
"""Tutorial: writing and testing your own application model.

Shows the full application-facing API of the simulated runtime —
activities, widgets, AsyncTask, services, broadcasts, handler threads,
delayed posts, timers, locks — and how to drive an app and detect races.

The app deliberately contains one race: a counter incremented from a
broadcast receiver (main thread) and from a worker thread without
holding the shared lock on both sides.

Run:  python examples/custom_app.py
"""

from repro.android import (
    Activity,
    AndroidSystem,
    AsyncTask,
    BroadcastReceiver,
    Ctx,
    Service,
    Timer,
    UIEvent,
    add_idle_handler,
    fork_handler_thread,
)
from repro.core import detect_races, validate_trace


class StatsUploader(AsyncTask):
    """Background upload with progress reporting."""

    def __init__(self, env, act):
        super().__init__(env, name="StatsUploader")
        self.act = act

    def do_in_background(self, ctx: Ctx, *params):
        for i in range(3):
            self.publish_progress(ctx, i)
            yield
        return "ok"

    def on_progress_update(self, ctx: Ctx, value) -> None:
        ctx.write(self.act.obj, "uploadProgress", value)

    def on_post_execute(self, ctx: Ctx, result) -> None:
        ctx.write(self.act.obj, "uploadState", result)


class TickReceiver(BroadcastReceiver):
    """Receives clock ticks and bumps the shared counter — without the
    lock (one side of the seeded race)."""

    def __init__(self, system, act):
        super().__init__(system)
        self.act = act

    def on_receive(self, ctx: Ctx, intent) -> None:
        count = ctx.read(self.act.obj, "ticks") or 0
        ctx.write(self.act.obj, "ticks", count + 1)


class MetricsService(Service):
    def on_start_command(self, ctx: Ctx, intent) -> None:
        ctx.write(self.obj, "collecting", True)

    def on_destroy(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "collecting", False)


class DashboardActivity(Activity):
    def on_create(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "ticks", 0)
        self.lock = self.env.new_lock("ticks-lock")
        self.register_button(ctx, "syncBtn", on_click=self.on_sync)
        self.register_button(ctx, "uploadBtn", on_click=self.on_upload)

    def on_resume(self, ctx: Ctx):
        # A broadcast receiver, registered now, enabled from this task.
        self.receiver = TickReceiver(self.system, self)
        self.system.register_receiver(ctx, self.receiver, "CLOCK_TICK")
        # A started service.
        self.system.start_service(ctx, MetricsService)
        # A handler (looper) thread receiving delayed work.  As with
        # HandlerThread.getLooper(), wait until its looper is up before
        # posting to it (lifecycle callbacks may be generator functions).
        self.worker = fork_handler_thread(ctx, "metrics-worker")
        yield ctx.wait_until(lambda: self.worker.looping, "worker looper up")
        ctx.post_delayed(self._flush_metrics, 50, name="flushMetrics", to=self.worker)
        # A one-shot idle handler on the main thread.
        add_idle_handler(ctx, self._warm_caches, name="warmCaches")

    def _flush_metrics(self) -> None:
        ctx = self.env.current_ctx
        ctx.write(self.obj, "flushed", True)

    def _warm_caches(self) -> None:
        ctx = self.env.current_ctx
        ctx.write(self.obj, "cachesWarm", True)

    def on_sync(self, ctx: Ctx) -> None:
        # Proper locking on this side...
        def sync_worker(tctx: Ctx):
            yield tctx.acquire(self.lock)
            count = tctx.read(self.obj, "ticks") or 0
            tctx.write(self.obj, "ticks", count + 1)
            tctx.release(self.lock)

        ctx.fork(sync_worker, name="sync-worker")
        # ...but the broadcast side (TickReceiver) takes no lock: a race
        # the detector will flag between the two increments.
        self.system.send_broadcast(ctx, "CLOCK_TICK")

    def on_upload(self, ctx: Ctx) -> None:
        StatsUploader(self.env, self).execute(ctx, "https://stats.example.com")


def main() -> None:
    system = AndroidSystem(seed=11, name="dashboard")
    system.launch(DashboardActivity)
    system.run_to_quiescence()
    for event in (UIEvent("click", "syncBtn"), UIEvent("click", "uploadBtn")):
        system.fire(event)
        system.run_to_quiescence()
    trace = system.finish()

    validate_trace(trace)
    print("trace: %d ops, threads: %s" % (len(trace), ", ".join(trace.threads)))
    report = detect_races(trace)
    print(report.summary())
    for race in report.races:
        print("  ", race)
    ticks_races = [r for r in report.races if r.field_name == "DashboardActivity.ticks"]
    assert ticks_races, "the seeded ticks race should be detected"


if __name__ == "__main__":
    main()
