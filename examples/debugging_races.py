#!/usr/bin/env python3
"""Debugging support: explaining races and proving non-races.

The paper's future work asks "how to provide better debugging support"
(§8).  This example shows ours on the motivating traces:

* for each reported race — the post chains of both accesses, why the
  classifier chose the category, and *near misses*: rules that almost
  ordered the pair (and what change would);
* for a suspected-but-ordered pair — a happens-before witness path, the
  chain of operations proving the ordering;
* the FastTrack-style vector-clock detector as a second opinion for the
  multithreaded fragment.

Run:  python examples/debugging_races.py
"""

from repro.apps.paper_traces import FIGURE4_POSITIONS, figure4_trace
from repro.core import detect_races_vc, explain_race, hb_witness, render_witness
from repro.core.race_detector import RaceDetector


def main() -> None:
    trace = figure4_trace()
    detector = RaceDetector(trace)
    report = detector.detect()
    hb = detector.hb

    print("=== Explanations for the Figure 4 races ===")
    for race in report.races:
        print()
        print(explain_race(trace, hb, race).render())

    print()
    print("=== Why (7, 21) is NOT a race: a happens-before witness ===")
    q = FIGURE4_POSITIONS
    path = hb_witness(hb, q["write_launch"], q["write_destroy"])
    assert path is not None
    print(render_witness(trace, path))
    print()
    print(
        "The chain runs through enable(onDestroy) -> post(onDestroy) -> "
        "begin(onDestroy): the environment model at work."
    )

    print()
    print("=== Second opinion: vector-clock detector (multithreaded fragment) ===")
    vc = detect_races_vc(trace)
    for race in vc.races:
        print("  ", race)
    print(
        "(the single-threaded cross-posted race is invisible to the classic"
    )
    print(" relation — full program order hides it, as §7 argues)")


if __name__ == "__main__":
    main()
