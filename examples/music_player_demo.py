#!/usr/bin/env python3
"""The motivating music-player application, run live on the simulated
Android runtime (Figure 1 of the paper).

The app downloads a file in an AsyncTask and enables the PLAY button when
done.  Two scenarios:

* clicking PLAY (the Figure 3 scenario) — no races among the discussed
  accesses;
* pressing BACK (the Figure 4 scenario) — ``onDestroy`` writes
  ``isActivityDestroyed``, racing with the background read (multithreaded
  race) and with the ``onPostExecute`` read (cross-posted race).

The demo also shows deterministic replay: re-running with the recorded
scheduling decisions reproduces the trace exactly.

Run:  python examples/music_player_demo.py
"""

from repro.android import ReplayPolicy, AndroidSystem, UIEvent
from repro.apps.music_player import DwFileAct, run_scenario
from repro.core import detect_races


def main() -> None:
    print("=== Scenario 1: download completes, user clicks PLAY ===")
    system, trace = run_scenario(press_back=False, seed=7)
    report = detect_races(trace)
    print("trace: %d operations, %d threads, %d async tasks" % (
        len(trace), len(trace.threads), trace.async_task_count()))
    print("races:", report.summary())

    print()
    print("=== Scenario 2: user presses BACK instead ===")
    system, trace = run_scenario(press_back=True, seed=7)
    report = detect_races(trace)
    print("trace: %d operations" % len(trace))
    print("races:", report.summary())
    for race in report.races:
        print("  ", race)

    print()
    print("=== Deterministic replay ===")
    decisions = list(system.env.decisions)
    replay = AndroidSystem(policy=ReplayPolicy(decisions), name="music-player")
    replay.launch(DwFileAct)
    replay.run_to_quiescence()
    replay.fire(UIEvent("back"))
    replay.run_to_quiescence()
    replayed = replay.finish()
    same = [op.render() for op in trace] == [op.render() for op in replayed]
    print("replayed trace identical:", same)
    assert same


if __name__ == "__main__":
    main()
