#!/usr/bin/env python3
"""Regenerate the paper's evaluation (Tables 2 and 3, §6 performance).

Runs all 15 calibrated subjects through the pipeline and prints the
tables in the paper's layout, paper-value next to measured value.  Use
``--scale`` to shrink trace lengths for a quick look (race counts and
thread/task/field statistics are scale-invariant by construction).

Run:  python examples/paper_evaluation.py [--scale 0.25]
"""

import argparse

from repro.apps.specs import ALL_SPECS
from repro.bench import (
    render_performance,
    render_table2,
    render_table3,
    run_all,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    results = run_all(ALL_SPECS, scale=args.scale, seed=args.seed)

    print("Table 2: statistics about applications and traces")
    print(render_table2(results))
    print()
    print("Table 3: data races reported (X (Y) = reports (true positives))")
    print(render_table3(results))
    print()
    print("Performance (§6): node coalescing and analysis time")
    print(render_performance(results))


if __name__ == "__main__":
    main()
