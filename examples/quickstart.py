#!/usr/bin/env python3
"""Quickstart: happens-before race detection on the paper's own traces.

Encodes the execution traces of Figures 3 and 4 (the music-player
scenarios of §2) and runs the race detector on them, reproducing the
reasoning of §2.4:

* Figure 3 (user clicks PLAY): the conflicting pairs (7,12) and (7,16)
  are happens-before ordered — no races;
* Figure 4 (user presses BACK): (12,21) is a multithreaded race and
  (16,21) a single-threaded (cross-posted) race, while (7,21) is ordered
  through the enable edge.

Run:  python examples/quickstart.py
"""

from repro.apps.paper_traces import (
    FIGURE3_POSITIONS,
    FIGURE4_POSITIONS,
    figure3_trace,
    figure4_trace,
)
from repro.core import HappensBefore, detect_races, validate_trace


def main() -> None:
    fig3 = figure3_trace()
    fig4 = figure4_trace()

    # Both traces are valid executions of the Figure 5 semantics.
    validate_trace(fig3, strict_fifo=True)
    validate_trace(fig4, strict_fifo=True)

    print("=== Figure 3: user clicks PLAY ===")
    print(fig3.render())
    hb = HappensBefore(fig3)
    p = FIGURE3_POSITIONS
    print()
    print(
        "write in LAUNCH_ACTIVITY  ->  read on background thread ordered:",
        hb.ordered(p["write_launch"], p["read_background"]),
    )
    print(
        "write in LAUNCH_ACTIVITY  ->  read in onPostExecute     ordered:",
        hb.ordered(p["write_launch"], p["read_post_execute"]),
    )
    report = detect_races(fig3)
    print("races:", report.summary())

    print()
    print("=== Figure 4: user presses BACK ===")
    hb = HappensBefore(fig4)
    q = FIGURE4_POSITIONS
    print(
        "write in LAUNCH_ACTIVITY  ->  write in onDestroy ordered (via enable):",
        hb.ordered(q["write_launch"], q["write_destroy"]),
    )
    report = detect_races(fig4)
    print("races:", report.summary())
    for race in report.races:
        print("  ", race)
    assert len(report.races) == 2, "expected exactly the two races of §2.4"


if __name__ == "__main__":
    main()
