#!/usr/bin/env python3
"""Automated race validation — mechanizing the paper's §6 methodology.

The paper confirmed true positives manually: "(1) For multi-threaded and
cross-posted races, stall certain threads using breakpoints ... (2) For
co-enabled races, change the order of triggering events. (3) For delayed
races, alter delay associated with asynchronous posts."

This example runs the automated version on the §6 case-study apps: each
reported race is re-executed under many schedules plus the adversarial
strategies (thread stalling, event reordering); a race whose access order
flips is VALIDATED, one that never flips stays unconfirmed — which is
exactly where the documented false positives land.

Run:  python examples/race_validation.py
"""

from repro.apps.browser_app import BrowserApp
from repro.apps.dictionary_app import DictionaryApp
from repro.apps.messenger_app import MessengerApp
from repro.core import detect_races
from repro.explorer import ScheduleExplorer, find_event


def detect_on(app, events, seed=1):
    system = app.build(seed)
    system.run_to_quiescence()
    for key in events:
        event = find_event(system.enabled_events(), key)
        if event is not None:
            system.fire(event)
            system.run_to_quiescence()
    return detect_races(system.finish())


def main() -> None:
    cases = [
        (DictionaryApp(), ["click:lookupBtn"]),
        (MessengerApp(), ["click:deleteBtn"]),
        (BrowserApp(), ["click:loadBtn"]),
    ]
    for app, events in cases:
        report = detect_on(app, events)
        explorer = ScheduleExplorer(app, events=events, seeds=range(12))
        print("=== %s: %d reports ===" % (app.name, len(report.races)))
        seen = set()
        for race in report.races:
            if race.field_name in seen:
                continue
            seen.add(race.field_name)
            result = explorer.validate_field_adversarially(race.field_name)
            print("  %-40s %s" % (race.field_name, result.describe()))
        print()

    print(
        "Validated races are true positives (both access orders were\n"
        "observed); unconfirmed ones are exactly the §6 false positives —\n"
        "their hidden causality (untracked native threads) fixes the order\n"
        "in every schedule."
    )


if __name__ == "__main__":
    main()
