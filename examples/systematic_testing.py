#!/usr/bin/env python3
"""Systematic testing with the UI Explorer (§5 of the paper).

Explores the hand-written demo applications depth-first over UI event
sequences (click, long-click, text input, BACK), firing each event only
after the previous one is consumed, and runs race detection on every
generated trace — the full DroidRacer pipeline:

    UI Explorer  ->  Trace Generator  ->  Race Detector

Run:  python examples/systematic_testing.py
"""

from repro.apps.registry import DEMO_APPS
from repro.core import detect_races
from repro.core.classification import RaceCategory
from repro.explorer import UIExplorer


def main() -> None:
    for name, app in DEMO_APPS.items():
        print("=== %s ===" % name)
        explorer = UIExplorer(app, depth=2, seed=3, max_runs=12)
        result = explorer.explore()
        racy_fields = {}
        for run in result.store.runs:
            report = detect_races(run.trace)
            for race in report.races:
                racy_fields.setdefault(race.field_name, set()).add(race.category)
            marker = " <- races!" if report.races else ""
            print("  %-52s %5d ops, %d reports%s" % (
                run.describe(), len(run.trace), len(report.races), marker))
        if racy_fields:
            print("  distinct racy fields across all runs:")
            for field, categories in sorted(racy_fields.items()):
                print("    %-40s %s" % (field, ", ".join(sorted(c.value for c in categories))))
        print()


if __name__ == "__main__":
    main()
