"""Shim for editable installs on environments without the ``wheel``
package (PEP 660 editable wheels need it); ``pip install -e . --no-use-pep517``
falls back to this."""

from setuptools import setup

setup()
