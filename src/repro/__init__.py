"""repro — a reproduction of *Race Detection for Android Applications*
(Maiya, Kanade, Majumdar; PLDI 2014), the DroidRacer system.

Public surface:

* :mod:`repro.core` — trace language, Android concurrency semantics,
  the happens-before relation, race detection + classification;
* :mod:`repro.android` — a deterministic simulated Android runtime
  (the Trace Generator substrate);
* :mod:`repro.explorer` — systematic UI exploration (the UI Explorer);
* :mod:`repro.apps` — application models used by the evaluation;
* :mod:`repro.bench` — the harness that regenerates the paper's tables.

Quickstart::

    from repro.apps.paper_traces import figure4_trace
    from repro.core import detect_races

    report = detect_races(figure4_trace())
    for race in report.races:
        print(race)
"""

from .core import (
    ANDROID_HB,
    ExecutionTrace,
    HappensBefore,
    HBConfig,
    Race,
    RaceCategory,
    RaceDetector,
    RaceReport,
    detect_races,
)

__version__ = "1.0.0"

__all__ = [
    "ANDROID_HB",
    "ExecutionTrace",
    "HappensBefore",
    "HBConfig",
    "Race",
    "RaceCategory",
    "RaceDetector",
    "RaceReport",
    "detect_races",
    "__version__",
]
