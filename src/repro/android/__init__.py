"""Simulated Android runtime (the substrate DroidRacer instrumented).

Replaces the paper's Android 4.0 emulator + instrumented Dalvik VM with a
deterministic discrete-step simulator whose every concurrency-relevant
action is logged as a core-language operation.  See DESIGN.md §2 for why
this substitution preserves the analysed behaviour.
"""

from .activity import Activity
from .asynctask import AsyncTask
from .binder import BinderPool
from .broadcast import BroadcastManager, BroadcastReceiver
from .content_provider import ContentProvider, Cursor, CursorIndexError
from .env import AndroidEnv, Ctx, invoke, looper_entry
from .intents import Intent, SYSTEM_ACTIONS
from .preferences import Editor, SharedPreferences, get_shared_preferences
from .strictmode import StrictMode, StrictModeViolationError, blocking_io
from .errors import (
    AppCrashError,
    DeadlockError,
    MainThreadError,
    PendingCommandError,
    SchedulerError,
    SimulationError,
    ThreadAPIError,
)
from .locks import Lock
from .looper import Handler, fork_handler_thread, new_handler_thread
from .memory import SharedObject
from .message_queue import Message, MessageQueue
from .scheduler import (
    MainFirstPolicy,
    RandomPolicy,
    ReplayPolicy,
    RoundRobinPolicy,
    SchedulePolicy,
)
from .service import Service, ServiceController
from .system import AndroidSystem, replay_system
from .threads import SimThread, ThreadState
from .timers import Timer, add_idle_handler
from .views import Button, ScreenManager, TextField, UIEvent, Widget

__all__ = [
    "Activity",
    "AndroidEnv",
    "AndroidSystem",
    "AppCrashError",
    "AsyncTask",
    "BinderPool",
    "BroadcastManager",
    "BroadcastReceiver",
    "Button",
    "ContentProvider",
    "Ctx",
    "Cursor",
    "CursorIndexError",
    "Editor",
    "Intent",
    "SharedPreferences",
    "get_shared_preferences",
    "SYSTEM_ACTIONS",
    "StrictMode",
    "StrictModeViolationError",
    "blocking_io",
    "DeadlockError",
    "Handler",
    "Lock",
    "MainFirstPolicy",
    "MainThreadError",
    "Message",
    "PendingCommandError",
    "MessageQueue",
    "RandomPolicy",
    "ReplayPolicy",
    "RoundRobinPolicy",
    "SchedulePolicy",
    "SchedulerError",
    "ScreenManager",
    "Service",
    "ServiceController",
    "SharedObject",
    "SimThread",
    "SimulationError",
    "TextField",
    "ThreadAPIError",
    "ThreadState",
    "Timer",
    "UIEvent",
    "Widget",
    "add_idle_handler",
    "fork_handler_thread",
    "invoke",
    "looper_entry",
    "new_handler_thread",
    "replay_system",
]
