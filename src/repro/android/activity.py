"""Activity — the UI component of the programming model.

Application activities subclass :class:`Activity` and override lifecycle
callbacks (``on_create`` … ``on_destroy``).  The lifecycle itself is
*driven by the runtime* (:class:`~repro.android.ams.ActivityManagerService`)
through binder posts, never by application code — matching the paper's
observation that control flow between procedures is managed by the Android
runtime and opaque to the developer (§2.2).

Each activity owns a :class:`~repro.android.memory.SharedObject` for its
instrumented fields, and a widget dictionary feeding the screen model.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.core.lifecycle_model import ActivityLifecycle

from .env import Ctx
from .memory import SharedObject
from .views import Button, TextField, Widget

if TYPE_CHECKING:
    from .system import AndroidSystem


class Activity:
    """Base class for application activities."""

    def __init__(self, system: "AndroidSystem"):
        self.system = system
        self.env = system.env
        self.obj = SharedObject(self.env, type(self).__name__)
        self.lifecycle = ActivityLifecycle(type(self).__name__)
        self.widgets: Dict[str, Widget] = {}
        self.finishing = False

    @property
    def instance_tag(self) -> str:
        return self.obj.location_base  # e.g. "DwFileAct@1"

    # -- lifecycle callbacks (override in subclasses) ---------------------------

    def on_create(self, ctx: Ctx) -> None:
        """First lifecycle callback; register widgets and initialise state
        here.  May be a generator function."""

    def on_start(self, ctx: Ctx) -> None:
        pass

    def on_restart(self, ctx: Ctx) -> None:
        pass

    def on_resume(self, ctx: Ctx) -> None:
        pass

    def on_pause(self, ctx: Ctx) -> None:
        pass

    def on_stop(self, ctx: Ctx) -> None:
        pass

    def on_destroy(self, ctx: Ctx) -> None:
        pass

    # -- framework services available to the activity ------------------------------

    def register_button(
        self,
        ctx: Ctx,
        widget_id: str,
        on_click: Optional[Callable] = None,
        on_long_click: Optional[Callable] = None,
        enabled: bool = True,
    ) -> Button:
        button = Button(self, widget_id)
        if on_click is not None:
            button.set_handler("click", on_click)
        if on_long_click is not None:
            button.set_handler("long-click", on_long_click)
        self.widgets[widget_id] = button
        if enabled:
            button.set_enabled(ctx, True)
        return button

    def register_text_field(
        self,
        ctx: Ctx,
        widget_id: str,
        on_text: Callable,
        input_format: str = "text",
        enabled: bool = True,
    ) -> TextField:
        text_field = TextField(self, widget_id, input_format)
        text_field.set_handler("text", on_text)
        self.widgets[widget_id] = text_field
        if enabled:
            text_field.set_enabled(ctx, True)
        return text_field

    def find_view(self, widget_id: str) -> Widget:
        return self.widgets[widget_id]

    def start_activity(self, ctx: Ctx, activity_cls) -> None:
        """``startActivity(intent)`` — pauses this activity and launches a
        new one (Figure 3, ops 21–23)."""
        self.system.ams.start_activity_from(ctx, self, activity_cls)

    def finish(self, ctx: Ctx) -> None:
        """Programmatic finish — the runtime will drive
        onPause/onStop/onDestroy."""
        self.finishing = True
        self.system.ams.finish_activity(ctx, self)

    def run_on_ui_thread(self, ctx: Ctx, callback: Callable, name: str = "uiRunnable"):
        """``Activity.runOnUiThread`` — post to the main thread (runs
        synchronously in Android when already on it; we always post, which
        is the conservative trace shape)."""
        return ctx.post(callback, name=name, to=self.env.main)

    def __repr__(self) -> str:
        return "%s(%s, %s)" % (
            type(self).__name__,
            self.instance_tag,
            self.lifecycle.current,
        )
