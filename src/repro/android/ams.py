"""ActivityManagerService — the simulated system-process component.

The real AMS runs in the system process and drives component lifecycles
via binder IPC into the application.  The paper deliberately does *not*
trace the system process; instead its effects surface in traces as
``enable`` operations plus the binder-thread posts of lifecycle callbacks
(§2.2, §4.2).  This model does exactly that:

* every lifecycle callback is dispatched as a task posted to the main
  thread **by a binder thread** (Figure 2, steps 5 and 12);
* before a callback can be posted, an ``enable`` operation for it has been
  emitted at the point that made it possible — at launch completion for
  ``onPause``/``onDestroy`` (Figure 3, op 9), inside ``startActivity`` for
  the current activity's ``onPause`` (Figure 3, op 21), inside ``onPause``
  for ``onStop``, and so on down the Figure 8 machine;
* consecutive lifecycle steps are chained: each callback, on completion,
  instructs AMS to submit the next binder post, reproducing the runtime's
  ordering discipline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.lifecycle_model import ActivityLifecycle

from .activity import Activity
from .env import Ctx, invoke

if TYPE_CHECKING:
    from .system import AndroidSystem


class ActivityRecord:
    """AMS-side bookkeeping for one activity instance."""

    def __init__(self, activity: Activity):
        self.activity = activity
        self.destroyed = False
        self._enable_gen: Dict[str, int] = {}
        self._enable_current: Dict[str, str] = {}

    @property
    def tag(self) -> str:
        return self.activity.instance_tag

    def fresh_enable(self, callback: str) -> str:
        n = self._enable_gen.get(callback, 0) + 1
        self._enable_gen[callback] = n
        name = "lifecycle:%s@%s" % (callback, self.tag)
        if n > 1:
            name = "%s!%d" % (name, n)
        self._enable_current[callback] = name
        return name

    def current_enable(self, callback: str) -> Optional[str]:
        return self._enable_current.get(callback)

    def __repr__(self) -> str:
        return "ActivityRecord(%s, %s)" % (self.tag, self.activity.lifecycle.current)


class ActivityManagerService:
    """Drives activity lifecycles through binder posts and enable ops."""

    def __init__(self, system: "AndroidSystem"):
        self.system = system
        self.env = system.env
        #: back stack; the last entry is the foreground record when resumed.
        self.stack: List[ActivityRecord] = []
        self.destroyed_records: List[ActivityRecord] = []

    # -- launching ----------------------------------------------------------------

    def launch(self, activity_cls) -> None:
        """Schedule the launch of ``activity_cls`` (the application's entry
        or a test step).  Staged as a main-thread action so the enable op
        precedes the binder post."""
        enable_name = "launch:%s!%d" % (
            activity_cls.__name__,
            self.env.ids.serial("launch"),
        )
        main = self.env.main

        def stage() -> None:
            self.env.ctx(main).enable(enable_name)
            self.system.binder.submit_post(
                main,
                self._launch_callback(activity_cls),
                "LAUNCH_ACTIVITY",
                event=enable_name,
            )

        main.push_action(stage)

    def _launch_callback(self, activity_cls) -> Callable:
        def launch():
            activity = activity_cls(self.system)
            record = ActivityRecord(activity)
            self.stack.append(record)
            ctx = self.env.main_ctx
            machine = activity.lifecycle
            machine.advance(ActivityLifecycle.ON_CREATE)
            yield from invoke(activity.on_create, ctx)
            machine.advance(ActivityLifecycle.ON_START)
            yield from invoke(activity.on_start, ctx)
            machine.advance(ActivityLifecycle.ON_RESUME)
            yield from invoke(activity.on_resume, ctx)
            machine.advance(ActivityLifecycle.RUNNING)
            self.system.screen.set_foreground(activity)
            # The created activity may be paused or destroyed at any later
            # point (user action, memory pressure) — made explicit through
            # enables (Figure 3, op 9 and §2.3).
            ctx.enable(record.fresh_enable(ActivityLifecycle.ON_PAUSE))
            ctx.enable(record.fresh_enable(ActivityLifecycle.ON_DESTROY))

        return launch

    # -- user/system-initiated transitions --------------------------------------------

    def press_back(self) -> None:
        """BACK button on the foreground activity: pause it, resume the one
        below (if any), then stop and destroy it (Figure 4 scenario)."""
        record = self.foreground_record()
        if record is None:
            return
        below = self.stack[-2] if len(self.stack) >= 2 else None

        def after_pause() -> None:
            if below is not None:
                self._post_resume(below, then=lambda: self._post_stop_destroy(record))
            else:
                self._post_stop_destroy(record)

        self._post_pause(record, then=after_pause)

    def rotate(self) -> None:
        """Configuration change: destroy the foreground activity and
        relaunch a fresh instance of its class."""
        record = self.foreground_record()
        if record is None:
            return
        cls = type(record.activity)

        def relaunch() -> None:
            self.launch(cls)

        self._post_pause(
            record, then=lambda: self._post_stop_destroy(record, then=relaunch)
        )

    def start_activity_from(self, ctx: Ctx, current: Activity, activity_cls) -> None:
        """``startActivity`` from application code: enable + schedule the
        pause of the caller, then launch the new activity, then stop the
        caller (Figure 3, ops 21–23)."""
        record = self.record_of(current)
        if record is None:
            raise LookupError("startActivity from unknown activity %s" % current)
        ctx.enable(record.fresh_enable(ActivityLifecycle.ON_PAUSE))

        def after_pause() -> None:
            self.launch(activity_cls)
            self._post_stop(record)

        self._schedule_pause_post(record, then=after_pause)

    def finish_activity(self, ctx: Ctx, activity: Activity) -> None:
        """Programmatic ``finish()`` — same shape as BACK."""
        record = self.record_of(activity)
        if record is None:
            return
        ctx.enable(record.fresh_enable(ActivityLifecycle.ON_PAUSE))
        self._schedule_pause_post(
            record, then=lambda: self._post_stop_destroy(record)
        )

    # -- lifecycle post plumbing ----------------------------------------------------------

    def _post_pause(self, record: ActivityRecord, then: Optional[Callable] = None) -> None:
        self._schedule_pause_post(record, then)

    def _schedule_pause_post(
        self, record: ActivityRecord, then: Optional[Callable] = None
    ) -> None:
        activity = record.activity

        def pause():
            activity.lifecycle.advance(ActivityLifecycle.ON_PAUSE)
            ctx = self.env.main_ctx
            yield from invoke(activity.on_pause, ctx)
            if self.system.screen.foreground is activity:
                self.system.screen.set_foreground(None)
            ctx.enable(record.fresh_enable(ActivityLifecycle.ON_STOP))
            if then is not None:
                then()

        self.system.binder.submit_post(
            self.env.main,
            pause,
            "%s.onPause" % type(activity).__name__,
            event=record.current_enable(ActivityLifecycle.ON_PAUSE),
        )

    def _post_stop(
        self, record: ActivityRecord, then: Optional[Callable] = None
    ) -> None:
        activity = record.activity

        def stop():
            activity.lifecycle.advance(ActivityLifecycle.ON_STOP)
            ctx = self.env.main_ctx
            yield from invoke(activity.on_stop, ctx)
            ctx.enable(record.fresh_enable(ActivityLifecycle.ON_DESTROY))
            ctx.enable(record.fresh_enable(ActivityLifecycle.ON_RESTART))
            if then is not None:
                then()

        self.system.binder.submit_post(
            self.env.main,
            stop,
            "%s.onStop" % type(activity).__name__,
            event=record.current_enable(ActivityLifecycle.ON_STOP),
        )

    def _post_stop_destroy(
        self, record: ActivityRecord, then: Optional[Callable] = None
    ) -> None:
        self._post_stop(record, then=lambda: self._post_destroy(record, then))

    def _post_destroy(
        self, record: ActivityRecord, then: Optional[Callable] = None
    ) -> None:
        activity = record.activity

        def destroy():
            activity.lifecycle.advance(ActivityLifecycle.ON_DESTROY)
            ctx = self.env.main_ctx
            yield from invoke(activity.on_destroy, ctx)
            activity.lifecycle.advance(ActivityLifecycle.DESTROYED)
            record.destroyed = True
            if record in self.stack:
                self.stack.remove(record)
            self.destroyed_records.append(record)
            if then is not None:
                then()

        self.system.binder.submit_post(
            self.env.main,
            destroy,
            "%s.onDestroy" % type(activity).__name__,
            event=record.current_enable(ActivityLifecycle.ON_DESTROY),
        )

    def _post_resume(
        self, record: ActivityRecord, then: Optional[Callable] = None
    ) -> None:
        """Bring a stopped activity back: onRestart → onStart → onResume,
        dispatched as one RESUME_ACTIVITY task."""
        activity = record.activity

        def resume():
            ctx = self.env.main_ctx
            machine = activity.lifecycle
            machine.advance(ActivityLifecycle.ON_RESTART)
            yield from invoke(activity.on_restart, ctx)
            machine.advance(ActivityLifecycle.ON_START)
            yield from invoke(activity.on_start, ctx)
            machine.advance(ActivityLifecycle.ON_RESUME)
            yield from invoke(activity.on_resume, ctx)
            machine.advance(ActivityLifecycle.RUNNING)
            self.system.screen.set_foreground(activity)
            ctx.enable(record.fresh_enable(ActivityLifecycle.ON_PAUSE))
            if then is not None:
                then()

        self.system.binder.submit_post(
            self.env.main,
            resume,
            "RESUME_%s" % type(activity).__name__,
            event=record.current_enable(ActivityLifecycle.ON_RESTART),
        )

    # -- queries ------------------------------------------------------------------------

    def foreground_record(self) -> Optional[ActivityRecord]:
        foreground = self.system.screen.foreground
        if foreground is None:
            return None
        return self.record_of(foreground)

    def record_of(self, activity: Activity) -> Optional[ActivityRecord]:
        for record in self.stack:
            if record.activity is activity:
                return record
        return None
