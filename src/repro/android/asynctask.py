"""AsyncTask — background work with UI-thread callbacks.

Mirrors Android's ``AsyncTask`` protocol as the paper describes it
(Figure 2, steps 6.4–9):

* ``execute(ctx, *params)`` must be called on the main thread; it runs
  ``on_pre_execute`` synchronously (inside the caller's task) and *forks*
  a background thread;
* ``do_in_background`` runs on the background thread (it may be a
  generator function — each ``yield`` is a preemption point);
* ``publish_progress`` posts ``on_progress_update`` to the main thread;
* on completion the background thread posts ``on_post_execute`` (or
  ``on_cancelled`` if the task was cancelled) to the main thread and exits.

``execute_on_serial_executor`` instead runs ``do_in_background`` as a task
posted to a shared worker looper thread — Android ≥3.0's default serial
executor, under which background bodies of different AsyncTasks are
FIFO-ordered with each other.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .env import AndroidEnv, Ctx, invoke, looper_entry
from .errors import MainThreadError
from .threads import SimThread


class AsyncTask:
    """Subclass and override the callback methods.

    ``on_pre_execute`` must be a plain (atomic) method — it runs
    synchronously inside ``execute``.  The other callbacks may be generator
    functions.
    """

    #: shared serial-executor worker thread, lazily created per environment
    _serial_workers = {}

    def __init__(self, env: AndroidEnv, name: Optional[str] = None):
        self.env = env
        self.name = name or type(self).__name__
        self.bg_thread: Optional[SimThread] = None
        self._cancelled = False
        self._finished = False

    # -- overridables -----------------------------------------------------------

    def on_pre_execute(self, ctx: Ctx) -> None:
        """Runs synchronously on the main thread before the background work."""

    def do_in_background(self, ctx: Ctx, *params) -> Any:
        raise NotImplementedError

    def on_progress_update(self, ctx: Ctx, value) -> None:
        """Runs on the main thread for each ``publish_progress`` call."""

    def on_post_execute(self, ctx: Ctx, result) -> None:
        """Runs on the main thread after the background work completes."""

    def on_cancelled(self, ctx: Ctx, result) -> None:
        """Runs on the main thread instead of ``on_post_execute`` when the
        task was cancelled."""

    # -- protocol ------------------------------------------------------------------

    def execute(self, ctx: Ctx, *params) -> "AsyncTask":
        """Start the task: pre-execute now, background body on a fresh
        forked thread (the paper's Figure 2/3 shape)."""
        self._require_main(ctx)
        self.on_pre_execute(ctx)
        self.bg_thread = ctx.fork(
            self._background_entry(params), name=self.env.ids.alloc("async")
        )
        return self

    def execute_on_serial_executor(self, ctx: Ctx, *params) -> "AsyncTask":
        """Start the task on the shared serial-executor worker looper."""
        self._require_main(ctx)
        self.on_pre_execute(ctx)
        worker = self._serial_worker()
        self.env.post_message(
            ctx.thread,
            worker,
            self._serial_body(params),
            "%s.doInBackground" % self.name,
        )
        return self

    def publish_progress(self, bg_ctx: Ctx, value) -> None:
        """Report progress from ``do_in_background``; the runtime posts
        ``on_progress_update`` to the main thread (Figure 2, step 8)."""
        env = self.env
        env.post_message(
            bg_ctx.thread,
            env.main,
            lambda: self.on_progress_update(env.main_ctx, value),
            "%s.onProgressUpdate" % self.name,
        )

    def cancel(self) -> bool:
        """Request cancellation; ``do_in_background`` observes it through
        :meth:`is_cancelled` and the completion callback switches to
        ``on_cancelled``."""
        if self._finished:
            return False
        self._cancelled = True
        return True

    def is_cancelled(self) -> bool:
        return self._cancelled

    # -- internals ------------------------------------------------------------------

    def _require_main(self, ctx: Ctx) -> None:
        if ctx.thread is not self.env.main:
            raise MainThreadError(
                "%s.execute must be called on the main thread, not %s"
                % (self.name, ctx.thread.name)
            )

    def _background_entry(self, params: Sequence):
        def entry(bg_ctx: Ctx):
            yield from self._run_body(bg_ctx, params)

        return entry

    def _serial_body(self, params: Sequence):
        def body():
            worker = self._serial_worker()
            yield from self._run_body(self.env.ctx(worker), params)

        return body

    def _run_body(self, bg_ctx: Ctx, params: Sequence):
        result_box = {}

        def capture():
            result_box["result"] = yield from _invoke_value(
                self.do_in_background, bg_ctx, *params
            )

        yield from capture()
        result = result_box.get("result")
        self._finished = True
        env = self.env
        if self._cancelled:
            callback = lambda: self.on_cancelled(env.main_ctx, result)
            base = "%s.onCancelled" % self.name
        else:
            callback = lambda: self.on_post_execute(env.main_ctx, result)
            base = "%s.onPostExecute" % self.name
        env.post_message(bg_ctx.thread, env.main, callback, base)

    def _serial_worker(self) -> SimThread:
        worker = AsyncTask._serial_workers.get(id(self.env))
        if worker is None or worker.name not in self.env.threads:
            worker = self.env.add_thread("serial-executor", entry=looper_entry)
            AsyncTask._serial_workers[id(self.env)] = worker
        self.env.ensure_looper_ready(worker)
        return worker


def _invoke_value(fn, *args):
    """Like :func:`repro.android.env.invoke` but propagates the return
    value of plain callables and generator functions alike."""
    result = fn(*args)
    if hasattr(result, "send") and hasattr(result, "throw"):
        value = yield from result
        return value
    return result
