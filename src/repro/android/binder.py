"""Binder threads.

Android applications receive IPC from the system process (notably
``ActivityManagerService``) on binder threads drawn from a pool.  In the
paper's traces the binder thread's visible actions are the lifecycle posts
it makes to the main thread on behalf of the system (Figure 2, steps 5 and
12; Figure 3, ops 5 and 23).

We model a binder thread as a plain simulated thread (no task queue)
holding a list of *actions* — closures pushed by the simulated
ActivityManagerService — each executed in one scheduler step.
"""

from __future__ import annotations

from typing import Callable, List

from .env import AndroidEnv
from .threads import SimThread


class BinderPool:
    """A small pool of binder threads; actions are dispatched round-robin,
    mimicking arbitrary pool assignment."""

    def __init__(self, env: AndroidEnv, size: int = 1):
        self.env = env
        self.threads: List[SimThread] = [
            env.add_thread(env.ids.alloc("binder"), role="binder")
            for _ in range(size)
        ]
        self._next = 0

    def submit(self, action: Callable[[], None]) -> SimThread:
        """Queue ``action`` on the next binder thread; it runs when that
        thread is scheduled."""
        thread = self.threads[self._next % len(self.threads)]
        self._next += 1
        thread.push_action(action)
        return thread

    def submit_post(
        self,
        target: SimThread,
        callback: Callable,
        base_name: str,
        event=None,
        delay=None,
    ) -> None:
        """Queue an asynchronous post executed *by* a binder thread — the
        standard shape of system-originated work."""
        thread = self.threads[self._next % len(self.threads)]
        self._next += 1

        def do_post() -> None:
            self.env.post_message(
                thread, target, callback, base_name, delay=delay, event=event
            )

        thread.push_action(do_post)
