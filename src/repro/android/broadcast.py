"""Broadcast intents and receivers.

Registration of a :class:`BroadcastReceiver` emits an ``enable`` — the
paper's device for "capturing relations between registering for a callback
and execution of a callback (as in case of BroadcastReceiver …)" (§5).
``sendBroadcast`` delivers ``onReceive`` to every registered receiver via
binder posts tagged with the registration's enable name.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from .env import Ctx, invoke
from .memory import SharedObject

if TYPE_CHECKING:
    from .system import AndroidSystem


class BroadcastReceiver:
    """Base class for application broadcast receivers."""

    def __init__(self, system: "AndroidSystem"):
        self.system = system
        self.env = system.env
        self.obj = SharedObject(self.env, type(self).__name__)

    @property
    def instance_tag(self) -> str:
        return self.obj.location_base

    def on_receive(self, ctx: Ctx, intent: Any) -> None:
        pass


class BroadcastManager:
    """System-side registry and delivery."""

    def __init__(self, system: "AndroidSystem"):
        self.system = system
        self.env = system.env
        #: action -> [(receiver, enable_name)]
        self._registry: Dict[str, List[Tuple[BroadcastReceiver, str]]] = {}

    def register(self, ctx: Ctx, receiver: BroadcastReceiver, action: str) -> None:
        enable_name = "broadcast:%s@%s!%d" % (
            action,
            receiver.instance_tag,
            self.env.ids.serial("bcast-reg"),
        )
        ctx.enable(enable_name)
        self._registry.setdefault(action, []).append((receiver, enable_name))

    def unregister(self, receiver: BroadcastReceiver, action: Optional[str] = None) -> None:
        for key in list(self._registry) if action is None else [action]:
            self._registry[key] = [
                entry for entry in self._registry.get(key, []) if entry[0] is not receiver
            ]

    def registered_actions(self) -> List[str]:
        """Actions with at least one live registration (the explorer's
        injectable intents)."""
        return sorted(action for action, entries in self._registry.items() if entries)

    def send(self, ctx: Optional[Ctx], action: str, intent: Any = None) -> int:
        """Deliver to all current registrations; returns the number of
        receivers that will be invoked.  ``ctx`` is ``None`` for
        system-originated broadcasts (delivery is via binder posts either
        way, so the sender leaves no trace footprint here)."""
        entries = list(self._registry.get(action, ()))
        for receiver, enable_name in entries:

            def deliver(receiver=receiver):
                yield from invoke(receiver.on_receive, self.env.main_ctx, intent)

            self.system.binder.submit_post(
                self.env.main,
                deliver,
                "%s.onReceive" % type(receiver).__name__,
                event=enable_name,
            )
        return len(entries)
