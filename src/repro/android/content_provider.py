"""ContentProvider + Cursor — the database substrate.

The paper's subjects lean heavily on SQLite through ContentProviders and
Cursors (the Messenger Cursor race of §6 lives here).  This models the
structured-storage layer with the same instrumentation discipline as
fields: a query reads the table's memory location, a mutation writes it,
and a :class:`Cursor` is itself a shared object whose navigation state
can race (the ``mDataValid``/``mRowIDColumn`` adapter races the paper
reports for Messenger).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from .env import AndroidEnv, Ctx
from .memory import SharedObject

if TYPE_CHECKING:
    from .system import AndroidSystem


class Cursor:
    """A positional view over a query's result rows.

    Navigation and getters are instrumented accesses to the cursor's own
    shared object — two asynchronous tasks sharing a cursor race on it
    exactly like Messenger's ``CursorAdapter`` did.
    """

    def __init__(self, env: AndroidEnv, rows: List[dict]):
        self.obj = SharedObject(env, "Cursor")
        self.obj.raw_write("rows", list(rows))
        self.obj.raw_write("position", -1)
        self.obj.raw_write("dataValid", True)

    def count(self, ctx: Ctx) -> int:
        rows = ctx.read(self.obj, "rows")
        return len(rows or [])

    def move_to_first(self, ctx: Ctx) -> bool:
        return self.move_to_position(ctx, 0)

    def move_to_next(self, ctx: Ctx) -> bool:
        position = ctx.read(self.obj, "position")
        return self.move_to_position(ctx, (position if position is not None else -1) + 1)

    def move_to_position(self, ctx: Ctx, position: int) -> bool:
        rows = ctx.read(self.obj, "rows") or []
        ctx.write(self.obj, "position", position)
        return 0 <= position < len(rows)

    def get(self, ctx: Ctx, column: str) -> Any:
        rows = ctx.read(self.obj, "rows") or []
        position = ctx.read(self.obj, "position")
        if position is None or not 0 <= position < len(rows):
            raise CursorIndexError(
                "index out of bounds: position=%s count=%d" % (position, len(rows))
            )
        return rows[position].get(column)

    def requery(self, ctx: Ctx, rows: List[dict]) -> None:
        """Replace the backing rows (the racy refresh of §6)."""
        ctx.write(self.obj, "rows", list(rows))
        ctx.write(self.obj, "dataValid", True)

    def invalidate(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "dataValid", False)
        ctx.write(self.obj, "rows", [])


class CursorIndexError(IndexError):
    """The 'index out of bounds runtime exception on the Cursor object'
    the paper triggered by reordering tasks (§6)."""


class ContentProvider:
    """An in-process provider: named tables of row dictionaries.

    Subclass to define ``TABLES``; mutations and queries go through a
    :class:`Ctx` so every access is a trace operation on the table's
    memory location (``<Provider>@n.<table>``).
    """

    TABLES: tuple = ("main",)

    def __init__(self, system: "AndroidSystem"):
        self.system = system
        self.env = system.env
        self.obj = SharedObject(self.env, type(self).__name__)
        self._data: Dict[str, List[dict]] = {t: [] for t in self.TABLES}
        self._next_id = 1

    @property
    def instance_tag(self) -> str:
        return self.obj.location_base

    def _table(self, table: str) -> List[dict]:
        if table not in self._data:
            raise LookupError("provider %s has no table %r" % (self.instance_tag, table))
        return self._data[table]

    # -- query side -----------------------------------------------------------

    def query(
        self,
        ctx: Ctx,
        table: str,
        where: Optional[Callable[[dict], bool]] = None,
    ) -> Cursor:
        rows = self._table(table)
        ctx.read(self.obj, table)
        selected = [row for row in rows if where is None or where(row)]
        return Cursor(self.env, selected)

    def count(self, ctx: Ctx, table: str) -> int:
        ctx.read(self.obj, table)
        return len(self._table(table))

    # -- mutation side ------------------------------------------------------------

    def insert(self, ctx: Ctx, table: str, values: dict) -> int:
        rows = self._table(table)
        row = dict(values)
        row.setdefault("_id", self._next_id)
        self._next_id += 1
        rows.append(row)
        ctx.write(self.obj, table, len(rows))
        return row["_id"]

    def update(
        self,
        ctx: Ctx,
        table: str,
        values: dict,
        where: Optional[Callable[[dict], bool]] = None,
    ) -> int:
        rows = self._table(table)
        changed = 0
        for row in rows:
            if where is None or where(row):
                row.update(values)
                changed += 1
        ctx.write(self.obj, table, len(rows))
        return changed

    def delete(
        self,
        ctx: Ctx,
        table: str,
        where: Optional[Callable[[dict], bool]] = None,
    ) -> int:
        rows = self._table(table)
        keep = [row for row in rows if where is not None and not where(row)]
        removed = len(rows) - len(keep)
        rows[:] = keep
        ctx.write(self.obj, table, len(rows))
        return removed


class ProviderRegistry:
    """System-side registry: one provider instance per class (the
    ContentResolver role)."""

    def __init__(self, system: "AndroidSystem"):
        self.system = system
        self._providers: Dict[type, ContentProvider] = {}

    def get(self, provider_cls) -> ContentProvider:
        provider = self._providers.get(provider_cls)
        if provider is None:
            provider = provider_cls(self.system)
            self._providers[provider_cls] = provider
        return provider
