"""The simulated Android runtime environment and Trace Generator.

:class:`AndroidEnv` plays the role of the instrumented Dalvik VM +
Android libraries in the paper's tool: it schedules simulated threads,
manages looper message queues, and logs every concurrency-relevant action
as a core-language operation (Table 1).  The result of a run is an
:class:`~repro.core.trace.ExecutionTrace` that the offline Race Detector
analyses — exactly the paper's pipeline, with the Android emulator
replaced by a deterministic discrete-step simulator.

Determinism and replay
----------------------
A run is fully determined by (policy, injected events).  The environment
records every scheduling decision; :class:`~repro.android.scheduler.ReplayPolicy`
reproduces a run exactly — the capability DroidRacer's UI Explorer needs
for backtracking (§5).

Application programming model
-----------------------------
Application code receives a :class:`Ctx` — its window into the runtime:

* ``ctx.read(obj, "field")`` / ``ctx.write(obj, "field", v)`` — instrumented
  accesses to :class:`~repro.android.memory.SharedObject` fields;
* ``ctx.post(cb, ...)``, ``ctx.post_delayed``, ``ctx.post_at_front`` —
  asynchronous calls to looper threads;
* ``ctx.fork(entry)`` / ``yield ctx.join(t)`` — threading;
* ``yield ctx.acquire(lock)`` / ``ctx.release(lock)`` — monitors (blocking
  operations are *yielded* so the scheduler can park the thread);
* a bare ``yield`` — a preemption point (only generator callbacks are
  preemptible; plain callables run atomically).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.core.operations import (
    Operation,
    acquire as op_acquire,
    attachq as op_attachq,
    begin as op_begin,
    enable as op_enable,
    end as op_end,
    fork as op_fork,
    join as op_join,
    looponq as op_looponq,
    post as op_post,
    read as op_read,
    release as op_release,
    threadexit as op_threadexit,
    threadinit as op_threadinit,
    write as op_write,
)
from repro.core.trace import ExecutionTrace

from .errors import (
    AppCrashError,
    DeadlockError,
    PendingCommandError,
    SchedulerError,
    ThreadAPIError,
)
from .ids import IdAllocator
from .locks import Lock
from .message_queue import Message, MessageQueue
from .scheduler import RoundRobinPolicy, SchedulePolicy
from .threads import (
    Acquire,
    Command,
    Frame,
    Join,
    SimThread,
    ThreadState,
    WaitUntil,
    as_generator,
)


def looper_entry(ctx: "Ctx"):
    """Standard entry of a looper thread (HandlerThread.run): attach a task
    queue and loop on it."""
    ctx.attach_queue()
    ctx.loop()


def invoke(fn: Callable, *args, **kwargs):
    """Drive a callback that may be a plain callable or a generator
    function: ``yield from invoke(cb, ctx)`` inside framework code."""
    result = fn(*args, **kwargs)
    gen = as_generator(result)
    if gen is not None:
        yield from gen


class Ctx:
    """Per-thread application API (the 'this thread' handle)."""

    def __init__(self, env: "AndroidEnv", thread: SimThread):
        self.env = env
        self.thread = thread

    # -- instrumented memory ---------------------------------------------------

    def read(self, obj, field: str):
        """Instrumented field read (logs a ``read`` operation)."""
        self.env._log(op_read(self.thread.name, location=obj.location_of(field)))
        return obj.raw_read(field)

    def write(self, obj, field: str, value) -> None:
        """Instrumented field write (logs a ``write`` operation)."""
        self.env._log(op_write(self.thread.name, location=obj.location_of(field)))
        obj.raw_write(field, value)

    def read_silent(self, obj, field: str):
        """Untracked access — models reads from native (C/C++) code that
        the Trace Generator cannot see (§6, false negatives)."""
        return obj.raw_read(field)

    def write_silent(self, obj, field: str, value) -> None:
        obj.raw_write(field, value)

    # -- asynchronous calls ------------------------------------------------------

    def post(
        self,
        callback: Callable,
        name: str = "task",
        to: Optional[SimThread] = None,
        event: Optional[str] = None,
    ) -> Message:
        return self.env.post_message(
            self.thread, to or self.env.main, callback, name, event=event
        )

    def post_delayed(
        self,
        callback: Callable,
        delay: int,
        name: str = "task",
        to: Optional[SimThread] = None,
        event: Optional[str] = None,
    ) -> Message:
        return self.env.post_message(
            self.thread, to or self.env.main, callback, name, delay=delay, event=event
        )

    def post_at_front(
        self,
        callback: Callable,
        name: str = "task",
        to: Optional[SimThread] = None,
        event: Optional[str] = None,
    ) -> Message:
        return self.env.post_message(
            self.thread, to or self.env.main, callback, name, at_front=True, event=event
        )

    def cancel(self, message: Message) -> bool:
        return self.env.cancel_message(message)

    # -- threads ---------------------------------------------------------------

    def fork(
        self,
        entry: Callable,
        name: Optional[str] = None,
        untracked: bool = False,
    ) -> SimThread:
        return self.env.fork_thread(self.thread, entry, name=name, untracked=untracked)

    def join(self, thread: SimThread) -> Join:
        """Blocking: ``yield ctx.join(t)``."""
        return self.env._make_command(self.thread, Join(thread))

    def wait_until(self, predicate: Callable[[], bool], reason: str = "") -> WaitUntil:
        """Blocking: ``yield ctx.wait_until(pred)`` — untraced framework
        synchronization (no operation is logged)."""
        return self.env._make_command(self.thread, WaitUntil(predicate, reason))

    # -- locks -------------------------------------------------------------------

    def acquire(self, lock: Lock) -> Acquire:
        """Blocking: ``yield ctx.acquire(lock)``."""
        return self.env._make_command(self.thread, Acquire(lock))

    def release(self, lock: Lock) -> None:
        self.env.release_lock(self.thread, lock)

    # -- runtime-environment modeling ----------------------------------------------

    def enable(self, name: str) -> None:
        """Emit an ``enable`` operation (framework modeling, §4.2)."""
        self.env._log(op_enable(self.thread.name, task=name))

    # -- looper plumbing (thread entries) ----------------------------------------

    def attach_queue(self) -> None:
        self.env.attach_queue(self.thread)

    def loop(self) -> None:
        self.env.loop(self.thread)

    def __repr__(self) -> str:
        return "Ctx(%s)" % self.thread.name


class AndroidEnv:
    """One application process: threads, queues, locks, virtual clock and
    the generated trace."""

    def __init__(
        self,
        policy: Optional[SchedulePolicy] = None,
        name: str = "app",
        main_thread: str = "main",
    ):
        self.name = name
        self.ids = IdAllocator()
        self.policy = policy or RoundRobinPolicy()
        self.clock = 0
        self.steps = 0
        self.threads: Dict[str, SimThread] = {}
        self.ops: List[Operation] = []
        self.decisions: List[str] = []
        self.cancelled_tasks: Set[str] = set()
        self._seq = 0
        self._pending_command: Optional[Command] = None
        self._crash: Optional[AppCrashError] = None
        self._current: Optional[SimThread] = None
        # The main thread is framework-created; its entry attaches the task
        # queue and starts the loop (steps 1–3 of Figure 2), so the attachQ
        # and loopOnQ operations appear in the trace like any other.
        self.main = self.add_thread(main_thread, entry=looper_entry, role="main")

    # -- thread management ---------------------------------------------------------

    def add_thread(
        self,
        name: Optional[str] = None,
        entry: Optional[Callable] = None,
        role: str = "background",
        untracked: bool = False,
    ) -> SimThread:
        """Admit a framework-created thread (the paper's ``Threads`` set).
        Requested names are uniquified on collision (thread ids must be
        fresh, Figure 5's FORK rule)."""
        name = name or self.ids.alloc(role)
        if name in self.threads:
            name = self.ids.alloc(name)
            while name in self.threads:
                name = self.ids.alloc(name)
        thread = SimThread(name, entry)
        thread.role = role
        thread.untracked = untracked
        self.threads[name] = thread
        return thread

    def fork_thread(
        self,
        parent: SimThread,
        entry: Callable,
        name: Optional[str] = None,
        untracked: bool = False,
    ) -> SimThread:
        child = self.add_thread(name or self.ids.alloc("bg"), entry, untracked=untracked)
        if not untracked:
            # Untracked threads model natively-created threads whose fork
            # the Trace Generator cannot observe (§6) — no fork op, hence
            # no FORK happens-before edge.
            self._log(op_fork(parent.name, child.name))
        return child

    def ctx(self, thread: Union[SimThread, str]) -> Ctx:
        if isinstance(thread, str):
            thread = self.threads[thread]
        return Ctx(self, thread)

    @property
    def main_ctx(self) -> Ctx:
        return self.ctx(self.main)

    @property
    def current_ctx(self) -> Ctx:
        """Ctx of the thread currently being advanced by the scheduler —
        what a posted callback should use to attribute its operations."""
        if self._current is None:
            raise SchedulerError("no thread is currently executing")
        return self.ctx(self._current)

    # -- looper plumbing --------------------------------------------------------------

    def attach_queue(self, thread: SimThread) -> None:
        if thread.has_queue:
            raise ThreadAPIError("thread %s already has a queue" % thread.name)
        thread.queue = MessageQueue(thread.name)
        self._log(op_attachq(thread.name))

    def loop(self, thread: SimThread) -> None:
        if not thread.has_queue:
            raise ThreadAPIError("thread %s has no queue to loop on" % thread.name)
        if thread.looping:
            raise ThreadAPIError("thread %s is already looping" % thread.name)
        thread.looping = True
        self._log(op_looponq(thread.name))

    def ensure_looper_ready(self, thread: SimThread) -> None:
        """Bring a freshly-created looper thread up to its loop immediately
        (framework-internal; equivalent to the scheduler having run the
        thread first).  Lets plain (non-generator) callbacks post to a
        looper they just created — the serial-executor bootstrap."""
        if thread.state is ThreadState.NEW:
            self._advance(thread)
        guard = 0
        while thread.alive and not thread.looping and thread.frames:
            self._advance_frame(thread)
            guard += 1
            if guard > 1000:
                raise SchedulerError(
                    "thread %s did not reach its loop" % thread.name
                )

    def run_until(self, condition: Callable[[], bool], max_steps: int = 100_000) -> None:
        """Step until ``condition()`` holds; errors if quiescence or the
        step budget is reached first."""
        for _ in range(max_steps):
            if condition():
                return
            if not self.step():
                raise SchedulerError("quiescent before condition held")
        raise SchedulerError("condition not reached within %d steps" % max_steps)

    # -- posting ----------------------------------------------------------------------

    def post_message(
        self,
        poster: SimThread,
        target: SimThread,
        callback: Callable,
        base_name: str,
        delay: Optional[int] = None,
        at_front: bool = False,
        event: Optional[str] = None,
    ) -> Message:
        if not target.has_queue:
            raise ThreadAPIError(
                "thread %s has no task queue (attachQ first)" % target.name
            )
        if not poster.alive:
            raise ThreadAPIError("posting thread %s is not alive" % poster.name)
        if at_front and delay:
            raise ThreadAPIError(
                "postAtFrontOfQueue takes no delay (Android has no such API)"
            )
        task = self.ids.alloc_instance(base_name)
        self._seq += 1
        op = op_post(
            poster.name,
            task,
            target.name,
            delay=delay,
            at_front=at_front,
            event=event,
        )
        self._log(op)
        message = Message(
            task=task,
            callback=callback,
            target=target.name,
            posted_by=poster.name,
            when=self.clock + (delay or 0),
            seq=self._seq,
            delay=delay,
            at_front=at_front,
            event=event,
            post_index=len(self.ops) - 1,
        )
        target.queue.enqueue(message)
        return message

    def cancel_message(self, message: Message) -> bool:
        target = self.threads.get(message.target)
        if target is None or not target.has_queue:
            return False
        if target.queue.cancel(message.task):
            self.cancelled_tasks.add(message.task)
            return True
        return False

    # -- locks ------------------------------------------------------------------------

    def new_lock(self, name: Optional[str] = None) -> Lock:
        return Lock(name or self.ids.alloc("lock"))

    def release_lock(self, thread: SimThread, lock: Lock) -> None:
        lock.release(thread.name)
        if lock.depth == 0 and lock in thread.held_locks:
            thread.held_locks.remove(lock)
        self._log(op_release(thread.name, lock=lock.name))

    def _make_command(self, thread: SimThread, command: Command) -> Command:
        if self._pending_command is not None:
            raise PendingCommandError(
                "previous blocking command %r was never yielded" % self._pending_command
            )
        self._pending_command = command
        return command

    # -- trace ------------------------------------------------------------------------

    def _log(self, op: Operation) -> None:
        self.ops.append(op)

    def build_trace(self, name: Optional[str] = None) -> ExecutionTrace:
        """Finalize the run into an analysable trace.  Posts of tasks that
        were cancelled while still pending are removed (§4.2)."""
        trace = ExecutionTrace(self.ops, name=name or self.name)
        if self.cancelled_tasks:
            trace = trace.without_cancelled_posts(self.cancelled_tasks)
        return trace

    # -- scheduling ---------------------------------------------------------------------

    def ready_threads(self) -> List[SimThread]:
        ready = []
        for thread in self.threads.values():
            if self._is_ready(thread):
                ready.append(thread)
        return ready

    def _is_ready(self, thread: SimThread) -> bool:
        if thread.state is ThreadState.NEW:
            return True
        if thread.state is ThreadState.BLOCKED:
            return self._command_ready(thread, thread.blocked_on)
        if thread.state is not ThreadState.RUNNABLE:
            return False
        if thread.frames or thread.actions:
            return True
        if thread.looping and thread.queue is not None:
            if thread.queue.eligible(self.clock) is not None:
                return True
            # Idle handlers fire when the queue has nothing to deliver.
            return bool(thread.idle_handlers) and thread.queue.next_wakeup() is None
        return False

    def _command_ready(self, thread: SimThread, command: Optional[Command]) -> bool:
        if isinstance(command, Acquire):
            return command.lock.available_to(thread.name)
        if isinstance(command, Join):
            return command.thread.state is ThreadState.FINISHED
        if isinstance(command, WaitUntil):
            return bool(command.predicate())
        return False

    def step(self) -> bool:
        """Execute one scheduling step; False when quiescent."""
        if self._crash is not None:
            raise self._crash
        ready = self.ready_threads()
        if not ready:
            if self._advance_clock():
                ready = self.ready_threads()
            if not ready:
                self._check_deadlock()
                return False
        names = sorted(thread.name for thread in ready)
        pick = self.policy.choose(names)
        if pick not in names:
            raise SchedulerError("policy chose non-ready thread %s" % pick)
        self.decisions.append(pick)
        thread = self.threads[pick]
        self._current = thread
        try:
            self._advance(thread)
        finally:
            self._current = None
        self.steps += 1
        return True

    def run(self, max_steps: int = 2_000_000) -> int:
        """Run until quiescent; returns the number of steps taken."""
        taken = 0
        while self.step():
            taken += 1
            if taken >= max_steps:
                raise SchedulerError(
                    "exceeded %d steps; runaway application loop?" % max_steps
                )
        return taken

    def _advance_clock(self) -> bool:
        wakeups = []
        for thread in self.threads.values():
            if thread.queue is not None and thread.looping and thread.alive:
                wakeup = thread.queue.next_wakeup()
                if wakeup is not None and wakeup > self.clock:
                    wakeups.append(wakeup)
        if not wakeups:
            return False
        self.clock = min(wakeups)
        return True

    def _check_deadlock(self) -> None:
        blocked = [
            thread.name
            for thread in self.threads.values()
            if thread.state is ThreadState.BLOCKED
        ]
        if blocked:
            raise DeadlockError(
                "threads blocked with no possible waker: %s" % ", ".join(blocked)
            )

    # -- the per-thread step -----------------------------------------------------------

    def _advance(self, thread: SimThread) -> None:
        if thread.state is ThreadState.NEW:
            self._log(op_threadinit(thread.name))
            thread.state = ThreadState.RUNNABLE
            if thread.entry is not None:
                gen = invoke(thread.entry, self.ctx(thread))
                thread.push_frame(Frame(gen))
            return

        if thread.state is ThreadState.BLOCKED:
            self._complete_command(thread)
            return

        if thread.frames:
            self._advance_frame(thread)
            return

        if thread.actions:
            action = thread.actions.pop(0)
            action()
            return

        if thread.looping and thread.queue is not None:
            message = thread.queue.eligible(self.clock)
            if message is not None:
                self._begin_task(thread, thread.queue.dequeue(self.clock))
                return
            if thread.idle_handlers:
                base_name, callback, enable_name = thread.idle_handlers.pop(0)
                self.post_message(thread, thread, callback, base_name, event=enable_name)
                return

        raise SchedulerError("thread %s was scheduled but has no work" % thread.name)

    def _begin_task(self, thread: SimThread, message: Message) -> None:
        self._log(op_begin(thread.name, task=message.task))
        thread.current_task = message.task

        def on_done() -> None:
            self._log(op_end(thread.name, task=message.task))
            thread.current_task = None

        gen = invoke(message.callback)
        thread.push_frame(Frame(gen, task=message.task, on_done=on_done))

    def _advance_frame(self, thread: SimThread) -> None:
        frame = thread.top_frame()
        try:
            yielded = next(frame.gen)
        except StopIteration:
            thread.pop_frame()
            self._maybe_exit(thread)
            return
        except Exception as exc:  # application crash
            thread.pop_frame()
            crash = AppCrashError(thread.name, frame.task or "<entry>", exc)
            self._crash = crash
            raise crash
        if yielded is None:
            return  # plain preemption point
        if isinstance(yielded, Command):
            if self._pending_command is yielded:
                self._pending_command = None
            self._try_command(thread, yielded)
            return
        raise SchedulerError(
            "callback on %s yielded %r; expected None or a blocking command"
            % (thread.name, yielded)
        )

    def _try_command(self, thread: SimThread, command: Command) -> None:
        if self._command_ready(thread, command):
            self._finish_command(thread, command)
        else:
            thread.state = ThreadState.BLOCKED
            thread.blocked_on = command

    def _complete_command(self, thread: SimThread) -> None:
        command = thread.blocked_on
        if command is None or not self._command_ready(thread, command):
            raise SchedulerError(
                "blocked thread %s scheduled while command %r not ready"
                % (thread.name, command)
            )
        thread.state = ThreadState.RUNNABLE
        thread.blocked_on = None
        self._finish_command(thread, command)

    def _finish_command(self, thread: SimThread, command: Command) -> None:
        if isinstance(command, Acquire):
            command.lock.acquire(thread.name)
            if command.lock not in thread.held_locks:
                thread.held_locks.append(command.lock)
            self._log(op_acquire(thread.name, lock=command.lock.name))
        elif isinstance(command, Join):
            self._log(op_join(thread.name, command.thread.name))
        elif isinstance(command, WaitUntil):
            pass  # untraced framework synchronization
        else:
            raise SchedulerError("unknown command %r" % command)

    def _maybe_exit(self, thread: SimThread) -> None:
        if thread.frames or thread.actions or thread.looping:
            return
        if thread.held_locks and any(l.holder == thread.name for l in thread.held_locks):
            raise ThreadAPIError(
                "thread %s exited still holding locks" % thread.name
            )
        self._log(op_threadexit(thread.name))
        thread.state = ThreadState.FINISHED

    def shutdown(self) -> None:
        """Exit all idle looper/action threads so the trace is complete."""
        for thread in self.threads.values():
            if thread.state is ThreadState.NEW:
                # Never scheduled: drop silently (no threadinit logged).
                thread.state = ThreadState.FINISHED
                continue
            if thread.alive and thread.idle:
                self._log(op_threadexit(thread.name))
                thread.state = ThreadState.FINISHED

    # -- introspection -------------------------------------------------------------------

    def quiescent(self) -> bool:
        if self.ready_threads():
            return False
        return not any(
            thread.queue is not None
            and thread.looping
            and thread.alive
            and thread.queue.next_wakeup() is not None
            for thread in self.threads.values()
        )

    def __repr__(self) -> str:
        return "AndroidEnv(%s, %d threads, %d ops, clock=%d)" % (
            self.name,
            len(self.threads),
            len(self.ops),
            self.clock,
        )
