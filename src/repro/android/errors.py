"""Exception hierarchy of the simulated Android runtime."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for runtime-simulation failures."""


class DeadlockError(SimulationError):
    """All remaining live threads are blocked on locks or joins."""


class SchedulerError(SimulationError):
    """Internal scheduler invariant violated (a bug in the caller or in
    the simulator)."""


class ThreadAPIError(SimulationError):
    """Application code used the threading API incorrectly (e.g. releasing
    a lock it does not hold, posting to a thread without a queue)."""


class MainThreadError(SimulationError):
    """An operation that Android restricts to the main (UI) thread was
    invoked from another thread (e.g. ``AsyncTask.execute``)."""


class PendingCommandError(SimulationError):
    """A blocking command (acquire/join) was created but not yielded before
    the next runtime call — application code forgot the ``yield``."""


class AppCrashError(SimulationError):
    """Application callback raised; carries the original exception."""

    def __init__(self, thread: str, task: str, original: BaseException):
        self.thread = thread
        self.task = task
        self.original = original
        super().__init__(
            "application crash on thread %s in task %s: %r" % (thread, task, original)
        )
