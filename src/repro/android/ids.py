"""Deterministic identifier allocation for the simulated runtime.

Every entity that appears in a trace (threads, task instances, locks,
shared objects) gets a name from an :class:`IdAllocator`, so two runs with
the same schedule produce byte-identical traces — the property replay and
the sequence store depend on.
"""

from __future__ import annotations

from typing import Dict


class IdAllocator:
    """Per-prefix counters: ``alloc("bg")`` yields ``bg-1``, ``bg-2``, …"""

    def __init__(self):
        self._counters: Dict[str, int] = {}

    def alloc(self, prefix: str) -> str:
        n = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = n
        return "%s-%d" % (prefix, n)

    def alloc_instance(self, base: str) -> str:
        """Task-instance naming: ``base``, ``base#2``, ``base#3``, … —
        matching the paper's renaming of repeated procedures."""
        n = self._counters.get("task:" + base, 0) + 1
        self._counters["task:" + base] = n
        return base if n == 1 else "%s#%d" % (base, n)

    def serial(self, prefix: str) -> int:
        n = self._counters.get("serial:" + prefix, 0) + 1
        self._counters["serial:" + prefix] = n
        return n

    def reset(self) -> None:
        self._counters.clear()
