"""Intents — typed payloads for component communication.

The paper's DroidRacer "only generates UI events but not intents in the
testing phase" (§8) and notes that Dynodroid can simulate intents (§7).
We implement the extension: broadcast intents are first-class events the
UI Explorer can inject (``UIEvent("intent", action)``), delivered through
the same binder/enable discipline as app-sent broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Type


@dataclass(frozen=True)
class Intent:
    """A minimal Android-style intent."""

    action: str
    extras: Dict[str, Any] = field(default_factory=dict)
    component: Optional[type] = None  # explicit target (activity/service)

    def get_extra(self, key: str, default: Any = None) -> Any:
        return self.extras.get(key, default)

    def with_extra(self, key: str, value: Any) -> "Intent":
        extras = dict(self.extras)
        extras[key] = value
        return Intent(self.action, extras, self.component)

    def __str__(self) -> str:
        target = self.component.__name__ if self.component else self.action
        if self.extras:
            return "Intent(%s, %s)" % (target, self.extras)
        return "Intent(%s)" % target


#: System broadcast actions the environment can inject spontaneously —
#: the explorer offers these once an application registers for them.
SYSTEM_ACTIONS = (
    "android.intent.action.BATTERY_LOW",
    "android.intent.action.TIME_TICK",
    "android.net.conn.CONNECTIVITY_CHANGE",
)
