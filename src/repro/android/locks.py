"""Monitor locks of the simulated runtime.

Java monitors are reentrant; the paper's ACQUIRE rule
(``l ∉ L(t') for any t' ≠ t``) permits reacquisition by the holder.  The
trace logs every acquire/release pair, including reentrant ones — the LOCK
happens-before rule only relates operations on *different* threads, so
reentrant pairs are harmless.
"""

from __future__ import annotations

from typing import Optional

from .errors import ThreadAPIError


class Lock:
    """A reentrant monitor lock."""

    def __init__(self, name: str):
        self.name = name
        self.holder: Optional[str] = None  # thread name
        self.depth = 0

    def available_to(self, thread: str) -> bool:
        return self.holder is None or self.holder == thread

    def acquire(self, thread: str) -> None:
        if not self.available_to(thread):
            raise ThreadAPIError(
                "lock %s acquired by %s while held by %s"
                % (self.name, thread, self.holder)
            )
        self.holder = thread
        self.depth += 1

    def release(self, thread: str) -> None:
        if self.holder != thread:
            raise ThreadAPIError(
                "thread %s released lock %s held by %s"
                % (thread, self.name, self.holder)
            )
        self.depth -= 1
        if self.depth == 0:
            self.holder = None

    def __repr__(self) -> str:
        if self.holder is None:
            return "Lock(%s, free)" % self.name
        return "Lock(%s, held by %s x%d)" % (self.name, self.holder, self.depth)
