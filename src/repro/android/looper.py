"""Handler — the application-facing posting API.

An Android ``Handler`` is bound to a looper thread and posts runnables or
messages to its queue.  This wraps the environment's posting primitives in
the shape application code expects: ``post``, ``postDelayed``,
``postAtFrontOfQueue``, ``removeCallbacks`` — the §4.2 task-management
operations.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .env import AndroidEnv, Ctx
from .errors import ThreadAPIError
from .message_queue import Message
from .threads import SimThread


class Handler:
    """A posting handle bound to one looper thread."""

    def __init__(self, env: AndroidEnv, target: Optional[SimThread] = None):
        self.env = env
        self.target = target or env.main
        self._posted: List[Message] = []

    def post(
        self, ctx: Ctx, callback: Callable, name: str = "runnable", event=None
    ) -> Message:
        message = self.env.post_message(ctx.thread, self.target, callback, name, event=event)
        self._posted.append(message)
        return message

    def post_delayed(
        self, ctx: Ctx, callback: Callable, delay: int, name: str = "runnable", event=None
    ) -> Message:
        if delay < 0:
            raise ThreadAPIError("negative delay %d" % delay)
        message = self.env.post_message(
            ctx.thread, self.target, callback, name, delay=delay, event=event
        )
        self._posted.append(message)
        return message

    def post_at_front_of_queue(
        self, ctx: Ctx, callback: Callable, name: str = "runnable"
    ) -> Message:
        message = self.env.post_message(
            ctx.thread, self.target, callback, name, at_front=True
        )
        self._posted.append(message)
        return message

    def remove_callbacks(self, message: Message) -> bool:
        """Cancel a pending post (ignored if already dispatched)."""
        return self.env.cancel_message(message)

    def remove_all_callbacks(self) -> int:
        """Cancel every still-pending post made through this handler."""
        removed = 0
        for message in self._posted:
            if self.env.cancel_message(message):
                removed += 1
        return removed


def new_handler_thread(env: AndroidEnv, name: Optional[str] = None) -> SimThread:
    """Create (framework-level) a looper thread — Android's HandlerThread.
    The thread attaches its queue and loops once first scheduled."""
    from .env import looper_entry

    return env.add_thread(name or env.ids.alloc("handler"), entry=looper_entry)


def fork_handler_thread(ctx: Ctx, name: Optional[str] = None) -> SimThread:
    """Fork a looper thread from application code (logs the fork op, so the
    FORK happens-before edge orders its initialization)."""
    from .env import looper_entry

    return ctx.fork(looper_entry, name=name or ctx.env.ids.alloc("handler"))
