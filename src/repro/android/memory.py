"""Instrumented shared memory.

A :class:`SharedObject` is a heap object whose field accesses are logged
when performed through ``ctx.read``/``ctx.write`` — the analogue of the
paper's Dalvik-interpreter instrumentation, which logs object field
accesses by application code.  Accesses through ``ctx.read_silent`` /
``ctx.write_silent`` bypass logging, modeling native (C/C++) code that the
Trace Generator cannot observe.

Memory-location naming is ``Class@serial.field``; the per-class field
identity (``Class.field``) is what Table 2's "Fields" column counts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class SharedObject:
    """A heap-allocated object with instrumented fields."""

    def __init__(self, env, class_name: str, **initial_fields):
        self.class_name = class_name
        self.serial = env.ids.serial("obj:" + class_name)
        self._values: Dict[str, Any] = dict(initial_fields)

    @property
    def location_base(self) -> str:
        return "%s@%d" % (self.class_name, self.serial)

    def location_of(self, field: str) -> str:
        return "%s.%s" % (self.location_base, field)

    def raw_read(self, field: str) -> Any:
        return self._values.get(field)

    def raw_write(self, field: str, value: Any) -> None:
        self._values[field] = value

    def fields(self):
        return list(self._values)

    def __repr__(self) -> str:
        return "SharedObject(%s)" % self.location_base
