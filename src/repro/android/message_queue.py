"""Message queues of looper threads.

Models Android's ``MessageQueue``: FIFO delivery in virtual time, with the
three §4.2 task-management extensions — delayed posts (``postDelayed``),
cancellation (``removeCallbacks``) and post-to-the-front
(``postAtFrontOfQueue``).

Delivery order: at-front messages first (LIFO among themselves, as each
barges to the head), then by (delivery time, posting sequence).  A message
is *eligible* once the virtual clock reaches its delivery time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class Message:
    """One posted asynchronous task."""

    task: str  # unique task-instance name
    callback: Callable  # runs with no arguments; may return a generator
    target: str  # thread the task runs on
    posted_by: str  # thread that executed the post
    when: int  # virtual delivery time
    seq: int  # global posting sequence number
    delay: Optional[int] = None
    at_front: bool = False
    event: Optional[str] = None  # enable-name for environmental events
    cancelled: bool = False
    post_index: Optional[int] = None  # trace position of the post op

    def sort_key(self):
        # At-front messages barge to the head; later barges go before
        # earlier ones (each was inserted at the very front).
        if self.at_front:
            return (0, 0, -self.seq)
        return (1, self.when, self.seq)


class MessageQueue:
    """A looper thread's task queue (enqueue ⊕ / dequeue ⊖ of Figure 5)."""

    def __init__(self, owner: str):
        self.owner = owner
        self._messages: List[Message] = []

    def enqueue(self, message: Message) -> None:
        self._messages.append(message)
        self._messages.sort(key=Message.sort_key)

    def cancel(self, task: str) -> bool:
        """Mark the message for ``task`` cancelled; returns True if found
        and not yet dispatched."""
        for message in self._messages:
            if message.task == task and not message.cancelled:
                message.cancelled = True
                return True
        return False

    def cancel_where(self, predicate: Callable[[Message], bool]) -> List[str]:
        """Cancel all pending messages satisfying ``predicate``; returns the
        cancelled task names (``Handler.removeCallbacks`` semantics)."""
        cancelled = []
        for message in self._messages:
            if not message.cancelled and predicate(message):
                message.cancelled = True
                cancelled.append(message.task)
        return cancelled

    def _prune(self) -> None:
        self._messages = [m for m in self._messages if not m.cancelled]

    def eligible(self, clock: int) -> Optional[Message]:
        """The message that would be dispatched now, or ``None``."""
        self._prune()
        if self._messages and self._messages[0].when <= clock:
            return self._messages[0]
        return None

    def dequeue(self, clock: int) -> Message:
        message = self.eligible(clock)
        if message is None:
            raise LookupError("no eligible message on %s at clock %d" % (self.owner, clock))
        self._messages.pop(0)
        return message

    def next_wakeup(self) -> Optional[int]:
        """Delivery time of the *head* message (the queue delivers in head
        order, so this is when the queue can next make progress), or
        ``None`` if empty."""
        self._prune()
        if not self._messages:
            return None
        return self._messages[0].when

    def pending(self) -> List[Message]:
        self._prune()
        return list(self._messages)

    def __len__(self) -> int:
        self._prune()
        return len(self._messages)

    def __bool__(self) -> bool:
        return len(self) > 0
