"""SharedPreferences — the key-value storage substrate.

Android's ``SharedPreferences`` is a notorious race source: ``apply()``
returns immediately and commits to disk on a shared writer thread, while
getters read the in-memory map.  We model it faithfully:

* getters are instrumented reads of the preference file's object;
* ``Editor.apply()`` writes the in-memory map *synchronously* (logged on
  the calling thread) and posts the disk commit to the process-wide
  ``queued-work`` looper thread, which performs an untracked-to-disk
  write plus an instrumented ``diskState`` write — racing with any other
  editor's apply;
* ``Editor.commit()`` performs both writes on the calling thread
  (blocking — StrictMode-relevant).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from .env import AndroidEnv, Ctx, looper_entry
from .memory import SharedObject
from .strictmode import blocking_io
from .threads import SimThread

if TYPE_CHECKING:
    from .system import AndroidSystem


class SharedPreferences:
    """One named preferences file."""

    def __init__(self, system: "AndroidSystem", name: str):
        self.system = system
        self.env = system.env
        self.name = name
        self.obj = SharedObject(self.env, "SharedPreferences")
        self.obj.raw_write("diskState", "clean")
        self._values: Dict[str, Any] = {}

    def get(self, ctx: Ctx, key: str, default: Any = None) -> Any:
        ctx.read(self.obj, "map")
        return self._values.get(key, default)

    def contains(self, ctx: Ctx, key: str) -> bool:
        ctx.read(self.obj, "map")
        return key in self._values

    def edit(self) -> "Editor":
        return Editor(self)


class Editor:
    """Batched preference mutations."""

    def __init__(self, prefs: SharedPreferences):
        self.prefs = prefs
        self._pending: Dict[str, Any] = {}
        self._clear = False

    def put(self, key: str, value: Any) -> "Editor":
        self._pending[key] = value
        return self

    def remove(self, key: str) -> "Editor":
        self._pending[key] = None
        return self

    def clear(self) -> "Editor":
        self._clear = True
        return self

    def _merge(self, ctx: Ctx) -> None:
        if self._clear:
            self.prefs._values.clear()
        for key, value in self._pending.items():
            if value is None:
                self.prefs._values.pop(key, None)
            else:
                self.prefs._values[key] = value
        ctx.write(self.prefs.obj, "map", len(self.prefs._values))

    def apply(self, ctx: Ctx) -> None:
        """Asynchronous commit: memory now, disk on the queued-work
        thread (the racy fast path)."""
        self._merge(ctx)
        worker = _queued_work_thread(self.prefs.system)
        prefs = self.prefs

        def disk_commit() -> None:
            commit_ctx = prefs.env.current_ctx
            commit_ctx.write(prefs.obj, "diskState", "flushed:%s" % prefs.name)

        self.prefs.env.post_message(
            ctx.thread, worker, disk_commit, "%s.applyCommit" % self.prefs.name
        )

    def commit(self, ctx: Ctx) -> bool:
        """Synchronous commit: memory and disk on the calling thread —
        blocking I/O, flagged by StrictMode on the main thread."""
        self._merge(ctx)
        blocking_io(ctx, "disk-write", "SharedPreferences.commit(%s)" % self.prefs.name)
        ctx.write(self.prefs.obj, "diskState", "flushed:%s" % self.prefs.name)
        return True


_WORKERS: Dict[int, SimThread] = {}


def _queued_work_thread(system: "AndroidSystem") -> SimThread:
    """The process-wide QueuedWork looper thread (created on first use)."""
    env = system.env
    worker = _WORKERS.get(id(env))
    if worker is None or worker.name not in env.threads:
        worker = env.add_thread("queued-work", entry=looper_entry)
        _WORKERS[id(env)] = worker
    env.ensure_looper_ready(worker)
    return worker


_FILES: Dict[int, Dict[str, SharedPreferences]] = {}


def get_shared_preferences(system: "AndroidSystem", name: str = "default") -> SharedPreferences:
    """``Context.getSharedPreferences`` — one instance per (process, file)."""
    files = _FILES.setdefault(id(system.env), {})
    prefs = files.get(name)
    if prefs is None or prefs.env is not system.env:
        prefs = SharedPreferences(system, name)
        files[name] = prefs
    return prefs
