"""Schedule policies.

The simulator asks a policy to pick one thread from the ready set at every
step.  Policies are deterministic given their construction arguments, and
every run records its decision sequence so it can be replayed exactly with
:class:`ReplayPolicy` — the capability the paper's UI Explorer needs
("replay events consistently across testing runs", §5).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class SchedulePolicy:
    """Interface: pick one name from the (sorted) ready list."""

    def choose(self, ready: Sequence[str]) -> str:
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the initial decision state (start of a fresh run)."""


class RoundRobinPolicy(SchedulePolicy):
    """Cycle through threads in name order — the most FIFO-like schedule."""

    def __init__(self):
        self._last: Optional[str] = None

    def choose(self, ready: Sequence[str]) -> str:
        if self._last is not None:
            for name in ready:
                if name > self._last:
                    self._last = name
                    return name
        self._last = ready[0]
        return ready[0]

    def reset(self) -> None:
        self._last = None


class RandomPolicy(SchedulePolicy):
    """Seeded uniform choice — used to explore distinct interleavings."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, ready: Sequence[str]) -> str:
        return self._rng.choice(list(ready))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class MainFirstPolicy(SchedulePolicy):
    """Prefer the main thread when ready, else fall back to a seeded random
    choice — approximates Android's UI-thread priority."""

    def __init__(self, main: str = "main", seed: int = 0):
        self.main = main
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, ready: Sequence[str]) -> str:
        if self.main in ready:
            return self.main
        return self._rng.choice(list(ready))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class StallPolicy(SchedulePolicy):
    """Adversarial wrapper: refuse to schedule ``stall_thread`` until
    ``release_when(env)`` holds — the automated analogue of §6's "stall
    certain threads using breakpoints, giving others the opportunity to
    progress".  Falls through when the stalled thread is the only ready
    one (no artificial deadlock)."""

    def __init__(self, base: SchedulePolicy, stall_thread: str, release_when):
        self.base = base
        self.stall_thread = stall_thread
        self.release_when = release_when
        self.env = None  # attached by the driver after construction
        self._released = False

    def attach(self, env) -> None:
        self.env = env

    def choose(self, ready: Sequence[str]) -> str:
        if not self._released and self.env is not None and self.release_when(self.env):
            self._released = True
        if not self._released and self.stall_thread in ready:
            others = [name for name in ready if name != self.stall_thread]
            if others:
                return self.base.choose(others)
        return self.base.choose(ready)

    def reset(self) -> None:
        self.base.reset()
        self._released = False


class ReplayPolicy(SchedulePolicy):
    """Replay a recorded decision sequence; once exhausted, fall back to the
    first ready thread (deterministic)."""

    def __init__(self, decisions: Sequence[str]):
        self.decisions = list(decisions)
        self._pos = 0

    def choose(self, ready: Sequence[str]) -> str:
        while self._pos < len(self.decisions):
            pick = self.decisions[self._pos]
            self._pos += 1
            if pick in ready:
                return pick
            # The recorded pick can be stale if the replayed run diverged
            # (e.g. a different event sequence); skip to stay deterministic.
        return ready[0]

    def reset(self) -> None:
        self._pos = 0
