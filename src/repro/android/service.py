"""Started Services.

A Service runs on the application's main thread (no separate thread,
unless the service forks one itself).  ``startService`` from application
code enables and schedules ``onCreate``/``onStartCommand`` via a binder
post; ``stopService`` schedules ``onDestroy`` — the Service analogue of
the Activity lifecycle discipline (§4.2: "Similar lifecycles exist for
other types of components … Our implementation handles them").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.lifecycle_model import ServiceLifecycle

from .env import Ctx, invoke
from .memory import SharedObject

if TYPE_CHECKING:
    from .system import AndroidSystem


class Service:
    """Base class for application services."""

    def __init__(self, system: "AndroidSystem"):
        self.system = system
        self.env = system.env
        self.obj = SharedObject(self.env, type(self).__name__)
        self.lifecycle = ServiceLifecycle(type(self).__name__)

    @property
    def instance_tag(self) -> str:
        return self.obj.location_base

    def on_create(self, ctx: Ctx) -> None:
        pass

    def on_start_command(self, ctx: Ctx, intent: Any) -> None:
        pass

    def on_destroy(self, ctx: Ctx) -> None:
        pass

    def stop_self(self, ctx: Ctx) -> None:
        self.system.services.stop(ctx, type(self))


class ServiceController:
    """System-side service management (one running instance per class)."""

    def __init__(self, system: "AndroidSystem"):
        self.system = system
        self.env = system.env
        self.running: Dict[type, Service] = {}
        self._enable_names: Dict[type, str] = {}
        self.stopped: List[Service] = []

    def start(self, ctx: Ctx, service_cls, intent: Any = None) -> None:
        """``context.startService(intent)`` from application code.  The
        system registers the service record immediately (as real AMS
        does), so a second ``startService`` before the first ``onCreate``
        runs re-delivers rather than re-creates."""
        if service_cls in self.running:
            service = self.running[service_cls]
            enable_name = "service:onStartCommand@%s!%d" % (
                service.instance_tag,
                self.env.ids.serial("svc-start"),
            )
            ctx.enable(enable_name)
            self._post_start_command(service, intent, enable_name)
            return
        service = service_cls(self.system)
        self.running[service_cls] = service
        enable_name = "service:create:%s!%d" % (
            service_cls.__name__,
            self.env.ids.serial("svc-create"),
        )
        ctx.enable(enable_name)
        self._post_create(service, intent, enable_name)

    def stop(self, ctx: Ctx, service_cls) -> None:
        service = self.running.get(service_cls)
        if service is None:
            return
        # Unregister now: a later startService creates a fresh instance
        # even while this one's onDestroy is still queued.
        self.running.pop(service_cls, None)
        enable_name = "service:onDestroy@%s!%d" % (
            service.instance_tag,
            self.env.ids.serial("svc-stop"),
        )
        ctx.enable(enable_name)

        def destroy():
            service.lifecycle.advance(ServiceLifecycle.ON_DESTROY)
            yield from invoke(service.on_destroy, self.env.main_ctx)
            service.lifecycle.advance(ServiceLifecycle.DESTROYED)
            self.stopped.append(service)

        self.system.binder.submit_post(
            self.env.main,
            destroy,
            "%s.onDestroy" % service_cls.__name__,
            event=enable_name,
        )

    def _post_create(self, service: Service, intent: Any, enable_name: str) -> None:
        def create():
            machine = service.lifecycle
            ctx = self.env.main_ctx
            machine.advance(ServiceLifecycle.ON_CREATE)
            yield from invoke(service.on_create, ctx)
            machine.advance(ServiceLifecycle.ON_START_COMMAND)
            yield from invoke(service.on_start_command, ctx, intent)
            machine.advance(ServiceLifecycle.STARTED)

        self.system.binder.submit_post(
            self.env.main,
            create,
            "CREATE_%s" % type(service).__name__,
            event=enable_name,
        )

    def _post_start_command(self, service: Service, intent: Any, enable_name: str) -> None:
        def start_command():
            machine = service.lifecycle
            ctx = self.env.main_ctx
            machine.advance(ServiceLifecycle.ON_START_COMMAND)
            yield from invoke(service.on_start_command, ctx, intent)
            machine.advance(ServiceLifecycle.STARTED)

        self.system.binder.submit_post(
            self.env.main,
            start_command,
            "%s.onStartCommand" % type(service).__name__,
            event=enable_name,
        )
