"""StrictMode — the thread-usage policy checker the paper relates to.

§7: "Android's StrictMode tool dynamically checks that the UI thread does
not perform I/O or other time-consuming operations."  Our runtime models
blocking operations explicitly (``ctx`` calls :func:`blocking_io`) and
StrictMode flags them when they run on the main thread.

This is a *policy* checker, orthogonal to race detection: it catches
responsiveness bugs, not ordering bugs — included to reproduce the
related-work comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from .env import AndroidEnv, Ctx

if TYPE_CHECKING:
    from .system import AndroidSystem


@dataclass(frozen=True)
class Violation:
    """One detected policy violation."""

    kind: str  # "disk-read" | "disk-write" | "network"
    thread: str
    detail: str
    op_position: int  # trace position at detection time

    def __str__(self) -> str:
        return "StrictMode %s violation on %s: %s" % (self.kind, self.thread, self.detail)


class StrictMode:
    """Per-environment policy state (Android's thread policy)."""

    KINDS = ("disk-read", "disk-write", "network")

    def __init__(self, env: AndroidEnv):
        self.env = env
        self.enabled = False
        self.detect_kinds = set(self.KINDS)
        self.penalty_death = False  # penaltyDeath(): raise instead of log
        self.violations: List[Violation] = []

    def enable(self, kinds: Optional[List[str]] = None, penalty_death: bool = False) -> None:
        self.enabled = True
        self.detect_kinds = set(kinds or self.KINDS)
        self.penalty_death = penalty_death

    def note_blocking(self, ctx: Ctx, kind: str, detail: str) -> None:
        if kind not in self.KINDS:
            raise ValueError("unknown blocking kind %r" % kind)
        if not self.enabled or kind not in self.detect_kinds:
            return
        if ctx.thread is not self.env.main:
            return  # background threads may block freely
        violation = Violation(kind, ctx.thread.name, detail, len(self.env.ops))
        self.violations.append(violation)
        if self.penalty_death:
            raise StrictModeViolationError(violation)


class StrictModeViolationError(RuntimeError):
    def __init__(self, violation: Violation):
        self.violation = violation
        super().__init__(str(violation))


_INSTANCES = {}


def strict_mode_of(env: AndroidEnv) -> StrictMode:
    """The StrictMode instance of an environment (created on demand)."""
    instance = _INSTANCES.get(id(env))
    if instance is None or instance.env is not env:
        instance = StrictMode(env)
        _INSTANCES[id(env)] = instance
    return instance


def blocking_io(ctx: Ctx, kind: str = "disk-read", detail: str = "") -> None:
    """Application marker for a blocking operation (file/network access).
    StrictMode flags it when executed on the main thread."""
    strict_mode_of(ctx.env).note_blocking(ctx, kind, detail or kind)
