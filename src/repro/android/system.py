"""AndroidSystem — one bootable simulated device running one application.

Composes the environment (threads, queues, trace generation), binder
pool, ActivityManagerService, screen, service controller, and broadcast
manager.  The test harness and the UI Explorer interact with applications
exclusively through this façade:

    system = AndroidSystem(seed=7)
    system.boot()
    system.launch(DwFileAct)
    system.run_to_quiescence()
    system.fire(UIEvent("click", "playBtn"))
    system.run_to_quiescence()
    trace = system.finish()
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.trace import ExecutionTrace

from .ams import ActivityManagerService
from .binder import BinderPool
from .broadcast import BroadcastManager, BroadcastReceiver
from .content_provider import ContentProvider, ProviderRegistry
from .env import AndroidEnv, Ctx
from .errors import SchedulerError
from .intents import Intent
from .scheduler import MainFirstPolicy, RandomPolicy, ReplayPolicy, SchedulePolicy
from .service import ServiceController
from .strictmode import StrictMode, strict_mode_of
from .views import ScreenManager, UIEvent


class AndroidSystem:
    """A simulated device/process pair hosting one application."""

    def __init__(
        self,
        policy: Optional[SchedulePolicy] = None,
        seed: Optional[int] = None,
        name: str = "app",
        binder_threads: int = 1,
    ):
        if policy is None:
            policy = RandomPolicy(seed or 0) if seed is not None else MainFirstPolicy()
        self.env = AndroidEnv(policy, name=name)
        self.binder = BinderPool(self.env, binder_threads)
        self.screen = ScreenManager(self)
        self.ams = ActivityManagerService(self)
        self.services = ServiceController(self)
        self.broadcasts = BroadcastManager(self)
        self.providers = ProviderRegistry(self)
        self._booted = False

    # -- run control ----------------------------------------------------------------

    def boot(self) -> None:
        """Initialize the main thread up to its event loop (steps 1–3 of
        Figure 2)."""
        if self._booted:
            return
        self.env.run_until(lambda: self.env.main.looping)
        self._booted = True

    def launch(self, activity_cls) -> None:
        """Schedule the launch of the application's (or next) activity."""
        self.boot()
        self.ams.launch(activity_cls)

    def run_to_quiescence(self, max_steps: int = 2_000_000) -> int:
        """Run until no thread can make progress — the paper's discipline of
        triggering an event only after the previous one is consumed (§5)."""
        return self.env.run(max_steps=max_steps)

    def finish(self, trace_name: Optional[str] = None) -> ExecutionTrace:
        """Shut the system down and return the generated execution trace."""
        self.env.shutdown()
        return self.env.build_trace(trace_name)

    # -- event injection (UI Explorer interface) ----------------------------------------

    def enabled_events(self, include_intents: bool = True) -> List[UIEvent]:
        """Events the environment can fire now: the foreground widgets'
        events, BACK/rotate, and (extension, §8) one intent event per
        broadcast action the application is registered for."""
        events = self.screen.enabled_events()
        if include_intents:
            for action in self.broadcasts.registered_actions():
                events.append(UIEvent("intent", action))
        return events

    def fire(self, event: UIEvent) -> None:
        """Inject one UI event.  Widget events are posted by the main
        thread itself (the looper dispatches input — Figure 3, op 19);
        BACK and rotation go through ActivityManagerService; intents are
        system-sent broadcasts."""
        if event.kind == "back":
            self.ams.press_back()
            return
        if event.kind == "rotate":
            self.ams.rotate()
            return
        if event.kind == "intent":
            self.send_system_broadcast(event.widget_id)
            return
        widget = self.screen.widget(event.widget_id)
        handler = widget.handler_for(event.kind)
        if handler is None:
            raise LookupError(
                "widget %s has no %s handler" % (event.widget_id, event.kind)
            )
        enable_name = widget.enable_name_for(event.kind)
        if enable_name is None:
            raise SchedulerError(
                "event %s fired but never enabled" % event.describe()
            )
        main = self.env.main
        activity = widget.activity

        if event.kind == "text":
            callback = lambda: handler(self.env.main_ctx, event.payload)
        else:
            callback = lambda: handler(self.env.main_ctx)

        def dispatch() -> None:
            self.env.post_message(
                main,
                main,
                callback,
                "%s.%s" % (activity.instance_tag, _handler_base(event)),
                event=enable_name,
            )

        main.push_action(dispatch)

    # -- application-facing context services ----------------------------------------------

    def start_service(self, ctx: Ctx, service_cls, intent: Any = None) -> None:
        self.services.start(ctx, service_cls, intent)

    def stop_service(self, ctx: Ctx, service_cls) -> None:
        self.services.stop(ctx, service_cls)

    def register_receiver(self, ctx: Ctx, receiver: BroadcastReceiver, action: str) -> None:
        self.broadcasts.register(ctx, receiver, action)

    def send_broadcast(self, ctx: Ctx, action: str, intent: Any = None) -> int:
        return self.broadcasts.send(ctx, action, intent)

    def send_system_broadcast(self, action: str, intent: Any = None) -> int:
        """A broadcast originated by the environment (battery, clock, …) —
        the Dynodroid-style intent injection the paper lists as future
        work (§8)."""
        if intent is None:
            intent = Intent(action)
        return self.broadcasts.send(None, action, intent)

    def content_resolver(self, provider_cls) -> ContentProvider:
        """The ContentResolver role: the process-wide provider instance."""
        return self.providers.get(provider_cls)

    @property
    def strict_mode(self) -> StrictMode:
        return strict_mode_of(self.env)

    def __repr__(self) -> str:
        return "AndroidSystem(%s)" % self.env


def _handler_base(event: UIEvent) -> str:
    if event.kind == "click":
        return "onClick:%s" % event.widget_id
    if event.kind == "long-click":
        return "onLongClick:%s" % event.widget_id
    if event.kind == "text":
        return "onText:%s" % event.widget_id
    return "on%s" % event.kind.capitalize()


def replay_system(
    decisions: List[str], name: str = "app", binder_threads: int = 1
) -> AndroidSystem:
    """Build a system that replays a recorded scheduling-decision sequence
    (deterministic re-execution of a previous run)."""
    return AndroidSystem(
        policy=ReplayPolicy(decisions), name=name, binder_threads=binder_threads
    )
