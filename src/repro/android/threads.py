"""Simulated threads.

A :class:`SimThread` is a cooperative thread of the simulator.  Its body
is a stack of *frames* (Python generators): the scheduler advances the top
frame one step at a time, so interleavings happen exactly at the points
where application code ``yield``\\ s (or between atomic callbacks).

Blocking operations — lock acquisition and joins — are *commands*:
application code yields an :class:`Acquire`/:class:`Join` object and the
scheduler parks the thread until the command can complete.  Everything
else (reads, writes, posts, forks, releases) executes synchronously inside
the owning thread's step and is logged immediately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from .errors import SchedulerError


class ThreadState(enum.Enum):
    NEW = "new"  # created (set C of Figure 5)
    RUNNABLE = "runnable"  # running (set R)
    BLOCKED = "blocked"  # parked on a command
    FINISHED = "finished"  # exited (set F)


class Command:
    """Base class of blocking commands yielded by application code."""


@dataclass
class Acquire(Command):
    lock: Any  # a Lock from repro.android.locks

    def __repr__(self) -> str:
        return "Acquire(%s)" % self.lock


@dataclass
class Join(Command):
    thread: "SimThread"

    def __repr__(self) -> str:
        return "Join(%s)" % self.thread.name


@dataclass
class WaitUntil(Command):
    """Park the thread until ``predicate()`` holds.  Used for framework
    synchronization that leaves no trace footprint (e.g. waiting for a
    HandlerThread's looper to come up before posting to it)."""

    predicate: Callable[[], bool]
    reason: str = ""

    def __repr__(self) -> str:
        return "WaitUntil(%s)" % (self.reason or "<predicate>")


@dataclass
class Frame:
    """One entry of a thread's frame stack."""

    gen: Generator
    task: Optional[str] = None  # task instance this frame executes, if any
    on_done: Optional[Callable[[], None]] = None


class SimThread:
    """One simulated thread."""

    def __init__(self, name: str, entry: Optional[Callable] = None):
        self.name = name
        self.entry = entry
        self.state = ThreadState.NEW
        self.frames: List[Frame] = []
        self.queue = None  # MessageQueue once attachQ'd
        self.looping = False
        self.current_task: Optional[str] = None
        self.blocked_on: Optional[Command] = None
        self.held_locks: List[Any] = []
        #: closures the thread runs when otherwise idle (binder-style work).
        self.actions: List[Callable[[], None]] = []
        #: free-form tag ("main", "binder", "background") for reporting.
        self.role: str = "background"
        #: threads with no happens-before provenance for their posts (models
        #: untracked natively-created threads, §6 "False positives").
        self.untracked: bool = False
        #: one-shot MessageQueue.IdleHandler registrations:
        #: (base_name, callback, enable_name) triples.
        self.idle_handlers: List[tuple] = []

    # -- structure -----------------------------------------------------------

    @property
    def has_queue(self) -> bool:
        return self.queue is not None

    @property
    def alive(self) -> bool:
        return self.state in (ThreadState.NEW, ThreadState.RUNNABLE, ThreadState.BLOCKED)

    @property
    def idle(self) -> bool:
        """Running but with nothing on the frame stack (⊥ in Figure 5)."""
        return (
            self.state is ThreadState.RUNNABLE
            and not self.frames
            and not self.actions
        )

    def push_frame(self, frame: Frame) -> None:
        self.frames.append(frame)

    def top_frame(self) -> Frame:
        if not self.frames:
            raise SchedulerError("thread %s has no frame to run" % self.name)
        return self.frames[-1]

    def pop_frame(self) -> Frame:
        frame = self.frames.pop()
        if frame.on_done is not None:
            frame.on_done()
        return frame

    def push_action(self, action: Callable[[], None]) -> None:
        self.actions.append(action)

    def __repr__(self) -> str:
        return "SimThread(%s, %s%s)" % (
            self.name,
            self.state.value,
            ", looping" if self.looping else "",
        )


def as_generator(result: Any) -> Optional[Generator]:
    """Callbacks may be plain callables (atomic) or generator functions
    (preemptible).  Normalize a call result: a generator is driven stepwise,
    anything else means the callback already ran to completion."""
    if isinstance(result, Generator):
        return result
    return None
