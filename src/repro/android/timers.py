"""Timers and idle handlers.

* :class:`Timer` — Java's ``java.util.Timer``: tasks run periodically on a
  dedicated timer thread.  Each execution emits an ``enable`` for the next,
  "connect[ing] periodic execution of Java's TimerTask objects" (§5).
* ``add_idle_handler`` — Android's ``MessageQueue.IdleHandler``: a one-shot
  callback the looper runs when its queue goes idle; registration emits the
  enable, execution is a posted task tagged with it.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from .env import AndroidEnv, Ctx, invoke

if TYPE_CHECKING:
    from .system import AndroidSystem


class Timer:
    """A timer with its own thread, running scheduled tasks on it."""

    def __init__(self, ctx: Ctx, name: Optional[str] = None):
        self.env = ctx.env
        self.name = name or self.env.ids.alloc("timer")
        self._jobs = []
        self.thread = ctx.fork(self._entry, name=self.name)

    def schedule(
        self,
        callback: Callable,
        period: int,
        runs: int,
        task_name: str = "timerTask",
    ) -> None:
        """Schedule ``callback`` to run ``runs`` times, ``period`` apart.
        Must be called before the timer thread drains its job list (i.e.
        right after construction, as with Java's Timer idiom)."""
        self._jobs.append((callback, period, runs, task_name))

    def _entry(self, ctx: Ctx):
        for callback, period, runs, task_name in self._jobs:
            enable_name = "timer:%s:%s!1" % (self.name, task_name)
            ctx.enable(enable_name)
            for i in range(runs):
                yield  # period boundary (virtual; timer thread sleeps)
                yield from invoke(callback, ctx)
                if i + 1 < runs:
                    next_enable = "timer:%s:%s!%d" % (self.name, task_name, i + 2)
                    ctx.enable(next_enable)


def add_idle_handler(
    ctx: Ctx, callback: Callable, name: str = "idleHandler"
) -> None:
    """Register a one-shot idle handler on the calling thread's looper
    queue.  When the queue goes idle the handler is posted (by the looper
    thread itself) and executed as a task carrying the registration's
    enable tag."""
    env = ctx.env
    thread = ctx.thread
    enable_name = "idle:%s!%d" % (name, env.ids.serial("idle"))
    ctx.enable(enable_name)
    thread.idle_handlers.append((name, callback, enable_name))
