"""UI widgets and the screen model.

Widgets are registered by activities (normally in ``on_create``).  A
widget event (click, long-click, text input) can fire only while the
widget is *enabled*; enabling emits an ``enable`` operation, and every
subsequent dispatch posts the handler with an ``event`` tag naming that
enable — giving the ENABLE-ST/ENABLE-MT edges the paper uses to order UI
callbacks after the code that made them possible (Figure 3, edge d).

The UI Explorer inspects :meth:`ScreenManager.enabled_events` — the
analogue of DroidRacer inspecting ``WindowManagerImpl`` for the events
enabled on a screen (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from .env import Ctx

if TYPE_CHECKING:
    from .activity import Activity


@dataclass(frozen=True)
class UIEvent:
    """One fireable event, as offered to the UI Explorer."""

    kind: str  # "click" | "long-click" | "text" | "back" | "rotate"
    widget_id: Optional[str] = None
    payload: Optional[str] = None  # text for input events

    def describe(self) -> str:
        if self.widget_id is None:
            return self.kind
        if self.payload is not None:
            return "%s:%s=%r" % (self.kind, self.widget_id, self.payload)
        return "%s:%s" % (self.kind, self.widget_id)

    def __str__(self) -> str:
        return self.describe()


class Widget:
    """Base widget: identity, owner activity, enabled state and per-event
    handler/enable bookkeeping."""

    #: event kinds this widget type supports
    EVENT_KINDS: tuple = ()

    def __init__(self, activity: "Activity", widget_id: str):
        self.activity = activity
        self.widget_id = widget_id
        self.enabled = False
        self._handlers: Dict[str, Callable] = {}
        self._enable_names: Dict[str, str] = {}
        self._enable_generation = 0

    # -- enablement -------------------------------------------------------------

    def set_enabled(self, ctx: Ctx, enabled: bool, silent: bool = False) -> None:
        """Enable/disable the widget.  Enabling emits one ``enable``
        operation per handled event kind; the emitting operation is
        whatever task/thread calls this — exactly where the ordering
        constraint originates.

        ``silent=True`` enables the widget *without* logging the enable
        operations — modeling a missed instrumentation point, the paper's
        documented source of false positives ("Missing enable operations
        might result in false positives", §6).
        """
        if enabled and not self.enabled:
            self.enabled = True
            self._enable_generation += 1
            for kind in self._handlers:
                name = self._fresh_enable_name(kind)
                self._enable_names[kind] = name
                if not silent:
                    ctx.enable(name)
        elif not enabled:
            self.enabled = False

    def _fresh_enable_name(self, kind: str) -> str:
        base = "%s:%s@%s" % (kind, self.widget_id, self.activity.instance_tag)
        if self._enable_generation > 1:
            return "%s!%d" % (base, self._enable_generation)
        return base

    def set_handler(self, kind: str, handler: Callable) -> None:
        if kind not in self.EVENT_KINDS:
            raise ValueError(
                "%s does not support %r events" % (type(self).__name__, kind)
            )
        self._handlers[kind] = handler

    def handler_for(self, kind: str) -> Optional[Callable]:
        return self._handlers.get(kind)

    def enable_name_for(self, kind: str) -> Optional[str]:
        return self._enable_names.get(kind)

    def fireable_events(self) -> List[UIEvent]:
        if not self.enabled:
            return []
        return [
            UIEvent(kind, self.widget_id)
            for kind in self.EVENT_KINDS
            if kind in self._handlers and kind in self._enable_names
        ]

    def __repr__(self) -> str:
        return "%s(%s%s)" % (
            type(self).__name__,
            self.widget_id,
            "" if self.enabled else ", disabled",
        )


class Button(Widget):
    EVENT_KINDS = ("click", "long-click")


class TextField(Widget):
    """A text-input field with an input format (§5: DroidRacer inspects
    text-field flags to supply appropriately formatted input)."""

    EVENT_KINDS = ("text",)

    #: manually constructed data inputs per format, as in the paper.
    DATA_INPUTS = {
        "text": ("hello", "lorem ipsum"),
        "email": ("[email protected]",),
        "number": ("42",),
        "url": ("http://example.com/song.mp3",),
    }

    def __init__(self, activity: "Activity", widget_id: str, input_format: str = "text"):
        super().__init__(activity, widget_id)
        if input_format not in self.DATA_INPUTS:
            raise ValueError("unknown input format %r" % input_format)
        self.input_format = input_format

    def fireable_events(self) -> List[UIEvent]:
        if not self.enabled or "text" not in self._handlers:
            return []
        if "text" not in self._enable_names:
            return []
        return [
            UIEvent("text", self.widget_id, payload)
            for payload in self.DATA_INPUTS[self.input_format]
        ]


class ScreenManager:
    """Tracks the resumed (foreground) activity and exposes its enabled
    events, plus the intrinsic BACK and rotate events."""

    def __init__(self, system):
        self.system = system
        self.foreground: Optional["Activity"] = None

    def set_foreground(self, activity: Optional["Activity"]) -> None:
        self.foreground = activity

    def enabled_events(self, include_intrinsic: bool = True) -> List[UIEvent]:
        events: List[UIEvent] = []
        activity = self.foreground
        if activity is not None:
            for widget in activity.widgets.values():
                events.extend(widget.fireable_events())
            if include_intrinsic:
                events.append(UIEvent("back"))
                events.append(UIEvent("rotate"))
        return events

    def widget(self, widget_id: str) -> Widget:
        if self.foreground is None:
            raise LookupError("no foreground activity")
        return self.foreground.widgets[widget_id]
