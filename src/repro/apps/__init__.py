"""Application models used by the evaluation (the paper's 15 subjects)."""
