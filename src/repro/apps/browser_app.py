"""A browser app with the paper's Browser false-positive mechanism (§6).

"The high number of false positives reported for Browser is due to
asynchronous posts by untracked natively-created (non-binder) threads."

The LOAD button's handler records the URL, then hands rendering to a
*native* renderer thread whose creation is invisible to the Trace
Generator (no ``fork`` operation).  The renderer posts ``onPageFinished``
back to the main thread.  In reality every renderer action is causally
after the click handler; in the trace the renderer and its posts float
free, so the detector reports races that cannot actually occur — plus one
genuine race on the favicon cache shared with a tracked prefetch thread.
"""

from __future__ import annotations

from typing import List

from repro.android import Activity, AndroidSystem, Ctx
from repro.explorer import AppModel


class BrowserActivity(Activity):
    def __init__(self, system: AndroidSystem):
        super().__init__(system)
        self.pages_loaded: List[str] = []

    def on_create(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "url", "about:blank")
        ctx.write(self.obj, "title", "")
        ctx.write(self.obj, "progress", 0)
        self.register_text_field(ctx, "addressBar", on_text=self.on_url_entered, input_format="url")
        self.register_button(ctx, "loadBtn", on_click=self.on_load)

    def on_resume(self, ctx: Ctx) -> None:
        # A tracked prefetch thread warms the favicon cache: its write
        # races (genuinely) with the renderer's favicon update.
        def prefetch(tctx: Ctx):
            yield
            tctx.write(self.obj, "favicon", "default.ico")

        ctx.fork(prefetch, name="favicon-prefetch")

    def on_url_entered(self, ctx: Ctx, text: str) -> None:
        ctx.write(self.obj, "pendingUrl", text)

    def on_load(self, ctx: Ctx) -> None:
        url = ctx.read(self.obj, "pendingUrl") or "http://example.com/"
        ctx.write(self.obj, "url", url)
        ctx.write(self.obj, "progress", 0)

        def renderer(tctx: Ctx):
            # Natively-created: its ops are logged but carry no provenance.
            tctx.write(self.obj, "favicon", url + "/favicon.ico")
            tctx.post(self._page_finished(url), name="onPageFinished")

        # The fork of the native renderer is NOT logged (untracked=True):
        # everything it does looks causally disconnected to the detector.
        ctx.fork(renderer, name="native-render", untracked=True)

    def _page_finished(self, url: str):
        def callback() -> None:
            ctx = self.env.current_ctx
            # Really ordered after on_load (the renderer ran in between),
            # but the trace has no happens-before path: false positives on
            # url/progress between this task and the click handler.
            ctx.write(self.obj, "title", "Loaded " + url)
            ctx.write(self.obj, "progress", 100)
            current = ctx.read(self.obj, "url")
            self.pages_loaded.append(current)

        return callback


class BrowserApp(AppModel):
    name = "browser"

    def build(self, seed: int = 0) -> AndroidSystem:
        system = AndroidSystem(seed=seed, name=self.name)
        system.launch(BrowserActivity)
        return system
