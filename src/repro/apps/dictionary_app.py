"""A dictionary app with the Aard Dictionary race (§6, "A multi-threaded race").

The paper reports a race on a ``Service`` object responsible for loading
dictionaries: the service populates the dictionary list on one thread
while a background lookup thread reads it without synchronization.  In
the bad interleaving the lookup observes the (empty) dictionaries before
they are loaded and the user's word cannot be retrieved.

This model reproduces the shape: ``DictionaryService.on_start_command``
forks a loader thread that writes ``loaded``/``entries``; the LOOKUP
button forks a lookup thread that reads them.  DroidRacer-style detection
reports one multithreaded race on the Service object, and running the two
schedules (loader first vs lookup first) exhibits the bad behaviour.
"""

from __future__ import annotations

from repro.android import Activity, AndroidSystem, Ctx, Service
from repro.explorer import AppModel


class DictionaryService(Service):
    """Loads dictionaries on a background thread once started."""

    WORDS = {"race": "a contest of speed", "lock": "a fastening mechanism"}

    def on_create(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "loaded", False)
        ctx.write(self.obj, "entries", {})

    def on_start_command(self, ctx: Ctx, intent) -> None:
        def loader(tctx: Ctx):
            yield  # simulate I/O latency before the dictionaries arrive
            tctx.write(self.obj, "entries", dict(self.WORDS))
            tctx.write(self.obj, "loaded", True)

        ctx.fork(loader, name="dict-loader")


class LookupActivity(Activity):
    """UI: a text field for the word and a LOOKUP button."""

    def __init__(self, system: AndroidSystem):
        super().__init__(system)
        self.results = []  # lookup outcomes, for assertions in tests

    def on_create(self, ctx: Ctx) -> None:
        self.register_text_field(ctx, "word", on_text=self.on_word_entered)
        self.register_button(ctx, "lookupBtn", on_click=self.on_lookup)

    def on_resume(self, ctx: Ctx) -> None:
        self.system.start_service(ctx, DictionaryService)

    def on_word_entered(self, ctx: Ctx, text: str) -> None:
        ctx.write(self.obj, "query", text)

    def on_lookup(self, ctx: Ctx) -> None:
        service = self.system.services.running.get(DictionaryService)
        if service is None:
            self.results.append(("error", "service not running"))
            return
        query = ctx.read(self.obj, "query") or "race"

        def lookup(tctx: Ctx):
            # The §6 bug: no synchronization with the loader thread.
            loaded = tctx.read(service.obj, "loaded")
            entries = tctx.read(service.obj, "entries") or {}
            if loaded and query in entries:
                self.results.append(("hit", entries[query]))
            else:
                self.results.append(("miss", query))

        ctx.fork(lookup, name="dict-lookup")


class DictionaryApp(AppModel):
    """Explorer-ready app model."""

    name = "dictionary"

    def build(self, seed: int = 0) -> AndroidSystem:
        system = AndroidSystem(seed=seed, name=self.name)
        system.launch(LookupActivity)
        return system
