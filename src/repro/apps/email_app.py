"""An email client (K-9-Mail-like): heavy asynchronous-task churn.

K-9 Mail's Table 2 row stands out for its 689 asynchronous tasks; its
Table 3 row for multithreaded races (9 reported, 2 true).  This model
exercises the same machinery shapes:

* a folder-sync AsyncTask per folder, each publishing progress;
* an unread-count badge updated **without synchronization** from sync
  threads and from the mark-read handler (the seeded multithreaded race);
* a message-list ContentProvider, refreshed cross-posted;
* SharedPreferences for the signature (apply/commit mix);
* an IdleHandler prefetching message bodies once the queue drains.
"""

from __future__ import annotations

from typing import List

from repro.android import (
    Activity,
    AndroidSystem,
    AsyncTask,
    Ctx,
    add_idle_handler,
    get_shared_preferences,
)
from repro.android.content_provider import ContentProvider
from repro.explorer import AppModel

FOLDERS = ("inbox", "sent", "spam")


class MailProvider(ContentProvider):
    TABLES = ("messages",)


class FolderSyncTask(AsyncTask):
    """Synchronizes one folder; bumps the shared unread badge racily."""

    def __init__(self, env, activity: "MailboxActivity", folder: str):
        super().__init__(env, name="FolderSync_%s" % folder)
        self.activity = activity
        self.folder = folder

    def do_in_background(self, ctx: Ctx, *params):
        provider = self.activity.system.content_resolver(MailProvider)
        fetched = 0
        for i in range(2):
            provider.insert(
                ctx, "messages", {"folder": self.folder, "subject": "mail-%d" % i}
            )
            fetched += 1
            # The bug: read-modify-write of the badge with no lock, from
            # several sync threads at once (multithreaded race).
            unread = ctx.read(self.activity.obj, "unread") or 0
            ctx.write(self.activity.obj, "unread", unread + 1)
            self.publish_progress(ctx, fetched)
            yield
        return fetched

    def on_progress_update(self, ctx: Ctx, value) -> None:
        ctx.write(self.activity.obj, "syncProgress:%s" % self.folder, value)

    def on_post_execute(self, ctx: Ctx, result) -> None:
        ctx.write(self.activity.obj, "lastSync:%s" % self.folder, result)
        self.activity.refresh_list(ctx)


class MailboxActivity(Activity):
    def __init__(self, system: AndroidSystem):
        super().__init__(system)
        self.prefetched: List[str] = []

    def on_create(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "unread", 0)
        prefs = get_shared_preferences(self.system, "mail")
        prefs.edit().put("signature", "sent from repro").apply(ctx)
        self.register_button(ctx, "syncBtn", on_click=self.on_sync_all)
        self.register_button(ctx, "markReadBtn", on_click=self.on_mark_read)
        self.register_button(ctx, "signatureBtn", on_click=self.on_edit_signature)

    def on_resume(self, ctx: Ctx) -> None:
        add_idle_handler(ctx, self._prefetch_bodies, name="prefetchBodies")

    def on_sync_all(self, ctx: Ctx) -> None:
        for folder in FOLDERS:
            FolderSyncTask(self.env, self, folder).execute(ctx, folder)

    def on_mark_read(self, ctx: Ctx) -> None:
        # Races with the sync threads' increments (no common lock).
        ctx.write(self.obj, "unread", 0)

    def on_edit_signature(self, ctx: Ctx) -> None:
        prefs = get_shared_preferences(self.system, "mail")
        prefs.edit().put("signature", "brief").apply(ctx)

    def refresh_list(self, ctx: Ctx) -> None:
        provider = self.system.content_resolver(MailProvider)
        cursor = provider.query(ctx, "messages")
        ctx.write(self.obj, "listRevision", cursor.count(ctx))

    def _prefetch_bodies(self) -> None:
        ctx = self.env.current_ctx
        revision = ctx.read(self.obj, "listRevision")
        self.prefetched.append("revision-%s" % revision)


class EmailApp(AppModel):
    name = "email"

    def build(self, seed: int = 0) -> AndroidSystem:
        system = AndroidSystem(seed=seed, name=self.name)
        system.launch(MailboxActivity)
        return system
