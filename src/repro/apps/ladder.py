"""Closure-ladder traces: worst-case inputs for the outer FIFO/NOPRE fixpoint.

The happens-before engine's outer loop re-runs FIFO and NOPRE until no new
edge appears; each round pays a closure re-saturation.  Most app traces
settle in two or three rounds, which hides the cost of the re-saturation
strategy.  This generator builds traces that *provably* need one outer
round per ladder level, so the incremental-vs-full saturation gap scales
with trace size (``benchmarks/bench_closure.py``).

The construction chains tasks across ``loopers`` looper threads:

* level 0 tasks are posted back-to-back by a single driver thread, so
  their posts are program-order related and FIFO orders them in round 1;
* each level-``ℓ`` task posts its level-``ℓ+1`` successor *from inside its
  body* to the next looper (round-robin).  The successors' posts only
  become happens-before ordered once the level-``ℓ`` tasks are ordered
  end-to-begin — i.e. after round ``ℓ+1`` — so every level adds exactly
  one more FIFO round, and NOPRE keeps firing for the same-looper levels
  above it.

Each task writes a per-looper hot location (totally ordered once the
ladder saturates — a large *non*-racy candidate set exercising the
enumeration fast path), plus a per-chain location ordered by the post
chain.  Optional ``rogues`` are tasks posted by an independent driver
thread, unordered against the entire ladder: they write the shared
locations and produce genuine races.
"""

from __future__ import annotations

import random

from .. import core  # noqa: F401  (package import order)
from ..core.operations import (
    acquire,
    attachq,
    begin,
    end,
    fork,
    looponq,
    post,
    release,
    threadexit,
    threadinit,
    write,
)
from ..core.trace import ExecutionTrace, TraceBuilder


def ladder_trace(
    levels: int,
    width: int,
    loopers: int = 2,
    rogues: int = 1,
    shared_every: int = 4,
    body: int = 0,
    name: str = None,
) -> ExecutionTrace:
    """Build a closure ladder.

    Parameters
    ----------
    levels:
        Ladder height — the trace needs roughly this many outer
        FIFO/NOPRE rounds to saturate.
    width:
        Independent chains climbing the ladder in parallel.
    loopers:
        Looper threads the chains round-robin across.
    rogues:
        Per looper, tasks posted by an unordered second driver; each
        writes the shared locations, creating real races.
    shared_every:
        Every ``shared_every``-th chain also writes ``app.shared``.
    body:
        Extra acquire/write/release cycles per task on a lock and
        location private to the task's (level, chain) cell.  The cycles
        inflate the per-task node count (the lock operations break access
        coalescing) without adding lock edges or changing which pairs
        race, so benchmarks can scale node count and task count
        independently — the node-per-chain ratio is what the chain
        reachability backend's memory is sensitive to.
    """
    if levels < 1 or width < 1 or loopers < 1:
        raise ValueError("levels, width, and loopers must be positive")
    b = TraceBuilder(name or "ladder-%dx%d" % (levels, width))

    looper = lambda level: "looper%d" % (level % loopers)
    task = lambda level, chain: "p%d_%d" % (level, chain)

    b.add(threadinit("driver"))
    for k in range(loopers):
        t = "looper%d" % k
        b.extend([threadinit(t), attachq(t), looponq(t)])

    # Level-0 posts from the driver: program order makes FIFO applicable
    # between every level-0 pair in the first round.
    for chain in range(width):
        b.add(post("driver", task(0, chain), looper(0)))

    for level in range(levels):
        t = looper(level)
        for chain in range(width):
            b.add(begin(t, task(level, chain)))
            b.add(write(t, "%s.state" % t))
            b.add(write(t, "chain%d.v" % chain))
            for _ in range(body):
                cell = "cell%d_%d" % (level, chain)
                b.add(acquire(t, "%s.lock" % cell))
                b.add(write(t, "%s.v" % cell))
                b.add(release(t, "%s.lock" % cell))
            if shared_every and chain % shared_every == 0:
                b.add(write(t, "app.shared"))
            if level + 1 < levels:
                b.add(post(t, task(level + 1, chain), looper(level + 1)))
            b.add(end(t, task(level, chain)))

    if rogues:
        b.add(threadinit("rogue-driver"))
        for k in range(loopers):
            t = "looper%d" % k
            for r in range(rogues):
                rtask = "rogue%d_%d" % (k, r)
                b.add(post("rogue-driver", rtask, t))
                b.add(begin(t, rtask))
                b.add(write(t, "%s.state" % t))
                b.add(write(t, "app.shared"))
                b.add(end(t, rtask))
    return b.build()


def scaled_ladder_trace(
    nodes: int,
    levels: int = 12,
    width: int = 16,
    loopers: int = 6,
    rogues: int = 1,
    name: str = None,
) -> ExecutionTrace:
    """A closure ladder sized to roughly ``nodes`` graph nodes with
    *bounded per-round fan-out* — the 100k-node benchmark input.

    ``ladder_trace`` scales node count through ``levels × width``, but the
    FIFO/NOPRE pair lists grow quadratically in tasks-per-looper, so a
    100k-node ladder built that way spends minutes in rule premises before
    saturation even starts.  This variant keeps the task count (and with
    it every per-round edge list) fixed at ``levels × width`` and inflates
    the per-task ``body`` instead: lock-broken access cycles add nodes
    without adding FIFO pairs, NOPRE candidates, or races, so node count
    scales to 100k+ while the trace still builds in seconds and the outer
    fixpoint still runs ``levels`` rounds.
    """
    if nodes < 1:
        raise ValueError("nodes must be positive")
    tasks = levels * width
    # Per task the coalesced graph holds ~5 fixed nodes (begin/end, the
    # coalesced writes, the chaining post) plus 3 per body cycle (the lock
    # operations break access coalescing).
    body = max(0, round((nodes / tasks - 5) / 3))
    return ladder_trace(
        levels,
        width,
        loopers=loopers,
        rogues=rogues,
        body=body,
        name=name or "ladder-%dk" % max(1, round(nodes / 1000)),
    )


def wide_trace(
    threads: int,
    tasks_per_thread: int = 3,
    body: int = 2,
    shared_locations: int = 4,
    seed: int = 0,
    name: str = None,
) -> ExecutionTrace:
    """Many-short-chains stress input for chain merging.

    A driver forks ``threads`` looper threads; each runs a short pre-loop
    segment (init write, ``attachQ``/``loopOnQ``) and then
    ``tasks_per_thread`` driver-posted tasks of ``body`` writes each.  The
    chain decomposition yields ``1 + tasks_per_thread`` chains per thread
    — exactly the shape where C balloons relative to n.  Chain merging
    coalesces each thread's pre-loop chain with its *first* task (NO-Q-PO
    contributes the static bridge edge) but must leave the remaining
    same-looper tasks separate: driver posts order them only through
    FIFO, which is derived *after* merging runs, so merging them would be
    the unsound interleaved-chain merge the directed tests rule out.

    Each task writes per-thread private state plus a seeded pick of
    ``shared_locations`` globals; unordered cross-thread writers of the
    same global produce genuine races.
    """
    if threads < 1 or tasks_per_thread < 1:
        raise ValueError("threads and tasks_per_thread must be positive")
    rng = random.Random(seed)
    b = TraceBuilder(name or "wide-%dx%d" % (threads, tasks_per_thread))
    b.add(threadinit("driver"))
    workers = ["w%d" % k for k in range(threads)]
    for t in workers:
        b.add(fork("driver", t))
        b.extend(
            [threadinit(t), write(t, "%s.init" % t), attachq(t), looponq(t)]
        )
    for round_no in range(tasks_per_thread):
        for t in workers:
            b.add(post("driver", "%s_task%d" % (t, round_no), t))
    for round_no in range(tasks_per_thread):
        for t in workers:
            task = "%s_task%d" % (t, round_no)
            b.add(begin(t, task))
            for _ in range(body):
                b.add(write(t, "%s.state" % t))
            b.add(write(t, "shared%d" % rng.randrange(shared_locations)))
            b.add(end(t, task))
    return b.build()


def lock_handoff_trace(name: str = "lock-handoff") -> ExecutionTrace:
    """Adversarial input for *incremental* re-closure: a gain that no edge
    source can see.

    A looper task ``t0`` writes ``X`` and forks thread ``B``; ``B``
    releases a lock that the FIFO-ordered task ``t1`` acquires (LOCK's
    cross-thread edge points from ``B`` into the middle of ``t1``); the
    driver posts ``t1``/``t2`` back-to-back, so the first outer round
    derives ``end(t1) ≺st begin(t2)``; ``t2`` posts ``tc`` to a second
    looper, where ``tc`` writes ``X`` again.  (``t0`` is posted at the
    front, so FIFO never relates it to ``t1``/``t2`` directly.)

    After the FIFO round, ``t0``'s nodes gain the ordering into ``tc``
    only through ``B``: ``t0 ≺mt B`` composed with ``B``'s freshly gained
    ``B ≺ tc`` (TRANS-MT — ``tc`` runs on the second looper).  ``t0``
    itself never reaches the round's edge source ``end(t1)``, because
    ``t0 ≺ B ≺ end(t1)`` has same-thread endpoints and TRANS-MT's side
    condition blocks it — the paper's same-looper precision device.  Any
    dirty frontier computed solely from the *sources* of the round's
    edges therefore skips ``t0``, leaves ``t0 ⊀ tc`` stale, and reports a
    false write/write race on ``X``; propagating gains transitively (rows
    that changed become sources in turn) closes the gap.  The correct
    analysis reports **no** races on this trace under every backend and
    saturation mode.
    """
    b = TraceBuilder(name)
    b.add(threadinit("driver"))
    for t in ("main", "side"):
        b.extend([threadinit(t), attachq(t), looponq(t)])
    b.add(post("driver", "t0", "main", at_front=True))
    b.add(post("driver", "t1", "main"))
    b.add(post("driver", "t2", "main"))
    b.add(begin("main", "t0"))
    b.add(write("main", "X"))
    b.add(fork("main", "B"))
    b.add(end("main", "t0"))
    b.add(threadinit("B"))
    b.add(acquire("B", "L"))
    b.add(release("B", "L"))
    b.add(threadexit("B"))
    b.add(begin("main", "t1"))
    b.add(acquire("main", "L"))
    b.add(release("main", "L"))
    b.add(end("main", "t1"))
    b.add(begin("main", "t2"))
    b.add(post("main", "tc", "side"))
    b.add(end("main", "t2"))
    b.add(begin("side", "tc"))
    b.add(write("side", "X"))
    b.add(end("side", "tc"))
    return b.build()
