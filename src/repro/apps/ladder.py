"""Closure-ladder traces: worst-case inputs for the outer FIFO/NOPRE fixpoint.

The happens-before engine's outer loop re-runs FIFO and NOPRE until no new
edge appears; each round pays a closure re-saturation.  Most app traces
settle in two or three rounds, which hides the cost of the re-saturation
strategy.  This generator builds traces that *provably* need one outer
round per ladder level, so the incremental-vs-full saturation gap scales
with trace size (``benchmarks/bench_closure.py``).

The construction chains tasks across ``loopers`` looper threads:

* level 0 tasks are posted back-to-back by a single driver thread, so
  their posts are program-order related and FIFO orders them in round 1;
* each level-``ℓ`` task posts its level-``ℓ+1`` successor *from inside its
  body* to the next looper (round-robin).  The successors' posts only
  become happens-before ordered once the level-``ℓ`` tasks are ordered
  end-to-begin — i.e. after round ``ℓ+1`` — so every level adds exactly
  one more FIFO round, and NOPRE keeps firing for the same-looper levels
  above it.

Each task writes a per-looper hot location (totally ordered once the
ladder saturates — a large *non*-racy candidate set exercising the
enumeration fast path), plus a per-chain location ordered by the post
chain.  Optional ``rogues`` are tasks posted by an independent driver
thread, unordered against the entire ladder: they write the shared
locations and produce genuine races.
"""

from __future__ import annotations

from .. import core  # noqa: F401  (package import order)
from ..core.operations import (
    acquire,
    attachq,
    begin,
    end,
    looponq,
    post,
    release,
    threadinit,
    write,
)
from ..core.trace import ExecutionTrace, TraceBuilder


def ladder_trace(
    levels: int,
    width: int,
    loopers: int = 2,
    rogues: int = 1,
    shared_every: int = 4,
    body: int = 0,
    name: str = None,
) -> ExecutionTrace:
    """Build a closure ladder.

    Parameters
    ----------
    levels:
        Ladder height — the trace needs roughly this many outer
        FIFO/NOPRE rounds to saturate.
    width:
        Independent chains climbing the ladder in parallel.
    loopers:
        Looper threads the chains round-robin across.
    rogues:
        Per looper, tasks posted by an unordered second driver; each
        writes the shared locations, creating real races.
    shared_every:
        Every ``shared_every``-th chain also writes ``app.shared``.
    body:
        Extra acquire/write/release cycles per task on a lock and
        location private to the task's (level, chain) cell.  The cycles
        inflate the per-task node count (the lock operations break access
        coalescing) without adding lock edges or changing which pairs
        race, so benchmarks can scale node count and task count
        independently — the node-per-chain ratio is what the chain
        reachability backend's memory is sensitive to.
    """
    if levels < 1 or width < 1 or loopers < 1:
        raise ValueError("levels, width, and loopers must be positive")
    b = TraceBuilder(name or "ladder-%dx%d" % (levels, width))

    looper = lambda level: "looper%d" % (level % loopers)
    task = lambda level, chain: "p%d_%d" % (level, chain)

    b.add(threadinit("driver"))
    for k in range(loopers):
        t = "looper%d" % k
        b.extend([threadinit(t), attachq(t), looponq(t)])

    # Level-0 posts from the driver: program order makes FIFO applicable
    # between every level-0 pair in the first round.
    for chain in range(width):
        b.add(post("driver", task(0, chain), looper(0)))

    for level in range(levels):
        t = looper(level)
        for chain in range(width):
            b.add(begin(t, task(level, chain)))
            b.add(write(t, "%s.state" % t))
            b.add(write(t, "chain%d.v" % chain))
            for _ in range(body):
                cell = "cell%d_%d" % (level, chain)
                b.add(acquire(t, "%s.lock" % cell))
                b.add(write(t, "%s.v" % cell))
                b.add(release(t, "%s.lock" % cell))
            if shared_every and chain % shared_every == 0:
                b.add(write(t, "app.shared"))
            if level + 1 < levels:
                b.add(post(t, task(level + 1, chain), looper(level + 1)))
            b.add(end(t, task(level, chain)))

    if rogues:
        b.add(threadinit("rogue-driver"))
        for k in range(loopers):
            t = "looper%d" % k
            for r in range(rogues):
                rtask = "rogue%d_%d" % (k, r)
                b.add(post("rogue-driver", rtask, t))
                b.add(begin(t, rtask))
                b.add(write(t, "%s.state" % t))
                b.add(write(t, "app.shared"))
                b.add(end(t, rtask))
    return b.build()
