"""A messenger app with the paper's Messenger findings (§6).

Two mechanisms are modelled:

* **The Cursor race** ("A single-threaded race"): a background sync thread
  posts an ``updateCursor`` task to the main thread; the DELETE button's
  handler mutates the same ``Cursor`` rows.  The two main-thread tasks
  have no happens-before order (the update was cross-posted), and
  reordering them yields an index-out-of-bounds on the deleted row —
  DroidRacer's confirmed cross-posted true positive.

* **A custom task queue** (§6, "False positives and negatives"): the app
  runs its own list-of-Runnables queue on a dedicated thread.  DroidRacer
  sees an ordinary thread and applies NO-Q-PO, deriving spurious
  happens-before between the runnables — so a genuine race between two
  queued runnables is *missed* (a documented false negative, reproduced
  here and asserted in the tests).
"""

from __future__ import annotations

from typing import Callable, List

from repro.android import Activity, AndroidSystem, Ctx
from repro.explorer import AppModel


class CustomQueue:
    """An application-level task queue: a plain list of runnables drained
    by a dedicated (ordinary) thread — opaque to the Trace Generator."""

    def __init__(self, ctx: Ctx, expected_jobs: int, name: str = "custom-queue"):
        self._jobs: List[Callable[[Ctx], None]] = []
        self._expected = expected_jobs
        self.thread = ctx.fork(self._entry, name=name)

    def submit(self, job: Callable[[Ctx], None]) -> None:
        """No instrumentation: this is just a Python list append, exactly
        like the ``List<Runnable>`` queues in Messenger/FBReader."""
        self._jobs.append(job)

    def _entry(self, tctx: Ctx):
        done = 0
        while done < self._expected:
            yield tctx.wait_until(lambda: bool(self._jobs), "custom queue job")
            job = self._jobs.pop(0)
            job(tctx)
            done += 1
            yield


class ConversationActivity(Activity):
    """Message list backed by a Cursor; a sync thread refreshes it."""

    ROWS = ["hello", "how are you", "bye"]

    def __init__(self, system: AndroidSystem):
        super().__init__(system)
        self.crashes: List[str] = []  # observed bad behaviours

    def on_create(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "rows", list(self.ROWS))
        ctx.write(self.obj, "rowCount", len(self.ROWS))
        self.register_button(ctx, "deleteBtn", on_click=self.on_delete)
        self.register_button(ctx, "draftBtn", on_click=self.on_draft)

    def on_resume(self, ctx: Ctx) -> None:
        # Background sync: re-reads the DB and cross-posts a cursor update.
        def sync(tctx: Ctx):
            yield  # network latency
            tctx.post(self._update_cursor, name="updateCursor")

        ctx.fork(sync, name="msg-sync")
        # The custom queue receives two draft-saving runnables: one from
        # the main thread now, one from a worker later (genuine race on
        # the draft field that NO-Q-PO hides from the detector).
        self.queue = CustomQueue(ctx, expected_jobs=2)
        self.queue.submit(lambda qctx: qctx.write(self.obj, "draft", "from-main"))

        def draft_worker(tctx: Ctx) -> None:
            self.queue.submit(lambda qctx: qctx.write(self.obj, "draft", "from-worker"))

        ctx.fork(draft_worker, name="draft-worker")

    def _update_cursor(self) -> None:
        ctx = self.env.current_ctx
        rows = ctx.read(self.obj, "rows") or []
        count = ctx.read(self.obj, "rowCount") or 0
        # Adapter walks rows [0, count): if a concurrent delete shrank the
        # list, this is the "index out of bounds" the paper triggered.
        if count > len(rows):
            self.crashes.append("IndexOutOfBounds: count=%d rows=%d" % (count, len(rows)))
            return
        ctx.write(self.obj, "rendered", list(rows[:count]))

    def on_delete(self, ctx: Ctx) -> None:
        rows = list(ctx.read(self.obj, "rows") or [])
        if rows:
            rows.pop()
        ctx.write(self.obj, "rows", rows)
        # Bug: rowCount is written by the update task, not refreshed here.

    def on_draft(self, ctx: Ctx) -> None:
        ctx.read(self.obj, "draft")


class MessengerApp(AppModel):
    name = "messenger"

    def build(self, seed: int = 0) -> AndroidSystem:
        system = AndroidSystem(seed=seed, name=self.name)
        system.launch(ConversationActivity)
        return system
