"""The paper's motivating music-player application (Figure 1).

``DwFileAct`` downloads a music file in a background ``FileDwTask`` and
enables a PLAY button when the download completes.  ``onDestroy`` sets the
``isActivityDestroyed`` flag that the background task and the completion
callback assert on (lines 41 and 53 of Figure 1) — the two assertions that
fail when the Figure 4 races fire.

Running this app with a BACK press reproduces the Figure 4 trace shape;
clicking PLAY reproduces Figure 3.
"""

from __future__ import annotations

from repro.android import Activity, AndroidSystem, AsyncTask, Ctx


class FileDwTask(AsyncTask):
    """Downloads the file, reporting progress (Figure 1, lines 20–59)."""

    #: number of simulated download chunks
    CHUNKS = 3

    def __init__(self, env, act: "DwFileAct"):
        super().__init__(env, name="FileDwTask")
        self.act = act

    def on_pre_execute(self, ctx: Ctx) -> None:
        # dialog = new ProgressDialog(act); dialog.show()
        ctx.write(self.act.obj, "dialog", "progress-dialog")

    def do_in_background(self, ctx: Ctx, *params):
        progress = 0
        for chunk in range(self.CHUNKS):
            progress += 1024
            # assertTrue(!act.isActivityDestroyed)  — Figure 1, line 41
            destroyed = ctx.read(self.act.obj, "isActivityDestroyed")
            self.act.background_assertions.append(not destroyed)
            self.publish_progress(ctx, progress)
            yield  # preemption point: the download loop is interleavable
        return None

    def on_progress_update(self, ctx: Ctx, value) -> None:
        ctx.write(self.act.obj, "progressBar", value)

    def on_post_execute(self, ctx: Ctx, result) -> None:
        # assertTrue(!act.isActivityDestroyed)  — Figure 1, line 53
        destroyed = ctx.read(self.act.obj, "isActivityDestroyed")
        self.act.post_execute_assertions.append(not destroyed)
        ctx.write(self.act.obj, "dialog", None)  # dialog.dismiss()
        play = self.act.find_view("playBtn")
        play.set_enabled(ctx, True)  # btn.setEnabled(true) — line 56


class MusicPlayActivity(Activity):
    """The playback activity started by the PLAY button (Figure 1, line 8)."""

    def on_create(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "playing", True)


class DwFileAct(Activity):
    """The download activity (Figure 1, lines 1–18)."""

    def __init__(self, system: AndroidSystem):
        super().__init__(system)
        self.background_assertions = []
        self.post_execute_assertions = []
        self.task = None

    def on_create(self, ctx: Ctx) -> None:
        # boolean isActivityDestroyed = false  — field init, Figure 1 line 2
        ctx.write(self.obj, "isActivityDestroyed", False)
        # The PLAY button starts disabled; onPostExecute enables it.
        self.register_button(ctx, "playBtn", on_click=self.on_play_click, enabled=False)

    def on_resume(self, ctx: Ctx) -> None:
        # new FileDwTask(this).execute("http://abc/song.mp3") — line 6
        self.task = FileDwTask(self.env, self)
        self.task.execute(ctx, "http://abc/song.mp3")

    def on_play_click(self, ctx: Ctx) -> None:
        # startActivity(intent) — line 11
        self.start_activity(ctx, MusicPlayActivity)

    def on_destroy(self, ctx: Ctx) -> None:
        # isActivityDestroyed = true — line 15
        ctx.write(self.obj, "isActivityDestroyed", True)


def run_scenario(press_back: bool, seed: int = 0):
    """Run the motivating scenario; returns (system, trace).

    ``press_back=False`` is the Figure 3 scenario (click PLAY after the
    download); ``press_back=True`` is Figure 4 (BACK instead of PLAY).
    """
    from repro.android import UIEvent

    system = AndroidSystem(seed=seed, name="music-player")
    system.launch(DwFileAct)
    system.run_to_quiescence()
    if press_back:
        system.fire(UIEvent("back"))
    else:
        system.fire(UIEvent("click", "playBtn"))
    system.run_to_quiescence()
    trace = system.finish()
    return system, trace
