"""A note-taking app (Tomdroid-like) exercising the structured-storage
substrate: ContentProvider + Cursor, a sync Service, periodic autosave,
system intents and StrictMode.

Seeded concurrency findings:

* a **cross-posted Cursor race**: the sync service cross-posts a list
  refresh (``requery``) that races with the ADD button's insert-and-
  refresh on the same cursor — the Messenger ``CursorAdapter`` pattern;
* a **multithreaded provider race**: the autosave timer writes the notes
  table from its own thread while the main thread inserts;
* a **StrictMode violation**: the SAVE button does disk I/O on the main
  thread.
"""

from __future__ import annotations

from typing import List, Optional

from repro.android import Activity, AndroidSystem, BroadcastReceiver, Ctx, Service, Timer
from repro.android.content_provider import ContentProvider, Cursor, CursorIndexError
from repro.android.strictmode import blocking_io
from repro.explorer import AppModel


class NotesProvider(ContentProvider):
    TABLES = ("notes",)


class NoteSyncService(Service):
    """Pulls remote notes on a background thread, then cross-posts the
    cursor refresh to the main thread."""

    REMOTE_NOTES = ({"title": "groceries"}, {"title": "pldi deadline"})

    def __init__(self, system):
        super().__init__(system)
        self.activity: Optional["NotesActivity"] = None

    def on_start_command(self, ctx: Ctx, intent) -> None:
        activity = self.activity

        def sync(tctx: Ctx):
            provider = self.system.content_resolver(NotesProvider)
            yield  # network latency
            for note in self.REMOTE_NOTES:
                provider.insert(tctx, "notes", dict(note))
            if activity is not None:
                tctx.post(activity.refresh_list, name="refreshNotesList")

        ctx.fork(sync, name="note-sync")


class ConnectivityReceiver(BroadcastReceiver):
    """Re-syncs when connectivity returns (registered for a system
    intent, so the explorer can inject it)."""

    def __init__(self, system, activity: "NotesActivity"):
        super().__init__(system)
        self.activity = activity

    def on_receive(self, ctx: Ctx, intent) -> None:
        ctx.write(self.activity.obj, "online", True)
        self.activity.system.start_service(ctx, NoteSyncService)


class NotesActivity(Activity):
    AUTOSAVE_RUNS = 2

    def __init__(self, system: AndroidSystem):
        super().__init__(system)
        self.cursor: Optional[Cursor] = None
        self.render_log: List[int] = []
        self.cursor_errors: List[str] = []

    def on_create(self, ctx: Ctx) -> None:
        provider = self.system.content_resolver(NotesProvider)
        provider.insert(ctx, "notes", {"title": "welcome"})
        self.cursor = provider.query(ctx, "notes")
        self.register_button(ctx, "addBtn", on_click=self.on_add)
        self.register_button(ctx, "saveBtn", on_click=self.on_save)
        self.register_button(ctx, "listBtn", on_click=self.on_show_list)

    def on_resume(self, ctx: Ctx) -> None:
        self.receiver = ConnectivityReceiver(self.system, self)
        self.system.register_receiver(
            ctx, self.receiver, "android.net.conn.CONNECTIVITY_CHANGE"
        )
        sync = self.system.services
        NoteSyncService_instance = None
        self.system.start_service(ctx, NoteSyncService)
        service = self.system.services.running.get(NoteSyncService)
        if service is not None:
            service.activity = self
        # Periodic autosave on a Timer thread: races with main-thread
        # inserts on the notes table (multithreaded provider race).
        timer = Timer(ctx, name="autosave")
        timer.schedule(self._autosave, period=200, runs=self.AUTOSAVE_RUNS)

    def _autosave(self, tctx: Ctx) -> None:
        provider = self.system.content_resolver(NotesProvider)
        provider.update(tctx, "notes", {"saved": True})

    def refresh_list(self) -> None:
        """Runs as a main-thread task cross-posted by the sync thread."""
        ctx = self.env.current_ctx
        provider = self.system.content_resolver(NotesProvider)
        fresh = provider.query(ctx, "notes")
        rows = fresh.obj.raw_read("rows")
        if self.cursor is not None:
            self.cursor.requery(ctx, rows)

    def on_add(self, ctx: Ctx) -> None:
        provider = self.system.content_resolver(NotesProvider)
        provider.insert(ctx, "notes", {"title": "new note"})
        rows = provider.query(ctx, "notes").obj.raw_read("rows")
        self.cursor.requery(ctx, rows)

    def on_show_list(self, ctx: Ctx) -> None:
        try:
            shown = 0
            if self.cursor.move_to_first(ctx):
                shown += 1
                while self.cursor.move_to_next(ctx):
                    shown += 1
            self.render_log.append(shown)
        except CursorIndexError as exc:
            self.cursor_errors.append(str(exc))

    def on_save(self, ctx: Ctx) -> None:
        # Disk write on the main thread: a StrictMode violation.
        blocking_io(ctx, "disk-write", "flush notes database")
        provider = self.system.content_resolver(NotesProvider)
        provider.update(ctx, "notes", {"flushed": True})


class NotesApp(AppModel):
    name = "notes"

    def build(self, seed: int = 0) -> AndroidSystem:
        system = AndroidSystem(seed=seed, name=self.name)
        system.launch(NotesActivity)
        return system
