"""Hand-encoded execution traces from the paper (Figures 3 and 4).

These traces reproduce §2.3–§2.4 verbatim: the music-player scenario in
which the user clicks PLAY (Figure 3, no races among the discussed pairs)
and the variant in which the user presses BACK (Figure 4, two races).

Operation numbering in comments matches the paper's figures (1-based).
"""

from __future__ import annotations

from repro.core import ExecutionTrace
from repro.core.operations import (
    attachq,
    begin,
    enable,
    end,
    fork,
    looponq,
    post,
    read,
    threadexit,
    threadinit,
    write,
)

#: Threads of the scenario (paper: binder, main, background).
T0, T1, T2 = "t0", "t1", "t2"

#: The single memory location discussed in the paper's figures.
DW_FILE_ACT = "DwFileAct@1.isActivityDestroyed"


def figure3_trace() -> ExecutionTrace:
    """Figure 3: user clicks the PLAY button.

    Conflicting pairs (7, 12) and (7, 16) are happens-before ordered
    through the fork edge (a), post edges (b), the thread-local task
    ordering (c) and the enable edges (d, e) — no races.
    """
    ops = [
        threadinit(T0),  # 1 (binder thread; shown first for a valid replay)
        threadinit(T1),  # 2
        attachq(T1),  # 3
        looponq(T1),  # 4
        enable(T1, "LAUNCH_ACTIVITY"),  # 5
        post(T0, "LAUNCH_ACTIVITY", T1),  # 6
        begin(T1, "LAUNCH_ACTIVITY"),  # 7
        write(T1, DW_FILE_ACT),  # 8  (field init, line 2 of Figure 1)
        fork(T1, T2),  # 9
        enable(T1, "onDestroy"),  # 10
        end(T1, "LAUNCH_ACTIVITY"),  # 11
        threadinit(T2),  # 12
        read(T2, DW_FILE_ACT),  # 13 (assert in doInBackground, line 41)
        post(T2, "onPostExecute", T1),  # 14
        threadexit(T2),  # 15
        begin(T1, "onPostExecute"),  # 16
        read(T1, DW_FILE_ACT),  # 17 (assert in onPostExecute, line 53)
        enable(T1, "onPlayClick"),  # 18 (PLAY button enabled, line 56)
        end(T1, "onPostExecute"),  # 19
        post(T1, "onPlayClick", T1, event="onPlayClick"),  # 20
        begin(T1, "onPlayClick"),  # 21
        enable(T1, "onPause"),  # 22 (startActivity, line 11)
        end(T1, "onPlayClick"),  # 23
        post(T0, "onPause", T1, event="onPause"),  # 24
    ]
    return ExecutionTrace(ops, name="figure3")


#: Trace positions (0-based) of the operations §2.4 discusses, keyed by the
#: paper's operation numbers in Figure 3.
FIGURE3_POSITIONS = {
    "write_launch": 7,  # paper op 7  — write in LAUNCH_ACTIVITY
    "read_background": 12,  # paper op 12 — read on thread t2
    "read_post_execute": 16,  # paper op 16 — read in onPostExecute
}


def figure4_trace() -> ExecutionTrace:
    """Figure 4: user presses BACK instead of PLAY.

    ``onDestroy`` writes the flag; pairs (12, 21) and (16, 21) race, while
    (7, 21) is ordered through ENABLE (op 9) → POST (op 19) → BEGIN (op 20).
    """
    ops = [
        threadinit(T0),
        threadinit(T1),
        attachq(T1),
        looponq(T1),
        enable(T1, "LAUNCH_ACTIVITY"),
        post(T0, "LAUNCH_ACTIVITY", T1),
        begin(T1, "LAUNCH_ACTIVITY"),  # paper op 6
        write(T1, DW_FILE_ACT),  # paper op 7
        fork(T1, T2),  # paper op 8
        enable(T1, "onDestroy"),  # paper op 9
        end(T1, "LAUNCH_ACTIVITY"),  # paper op 10
        threadinit(T2),  # paper op 11
        read(T2, DW_FILE_ACT),  # paper op 12
        post(T2, "onPostExecute", T1),  # paper op 13
        threadexit(T2),  # paper op 14
        begin(T1, "onPostExecute"),  # paper op 15
        read(T1, DW_FILE_ACT),  # paper op 16
        enable(T1, "onPlayClick"),  # paper op 17
        end(T1, "onPostExecute"),  # paper op 18
        post(T0, "onDestroy", T1, event="onDestroy"),  # paper op 19
        begin(T1, "onDestroy"),  # paper op 20
        write(T1, DW_FILE_ACT),  # paper op 21 (line 15 of Figure 1)
        end(T1, "onDestroy"),  # paper op 22
    ]
    return ExecutionTrace(ops, name="figure4")


FIGURE4_POSITIONS = {
    "write_launch": 7,  # paper op 7
    "read_background": 12,  # paper op 12
    "read_post_execute": 16,  # paper op 16
    "write_destroy": 21,  # paper op 21
}
