"""A puzzle game (SGTPuzzles-like): native game engine + UI shell.

SGTPuzzles tops Table 3's multithreaded column (11 reported, 10 true):
the C game engine runs on its own threads while the Java shell touches
shared state.  This model has a *tracked* solver thread (its races are
genuine — the 10 true positives' mechanism) and an *untracked* native
render thread (false positives — the remaining report), plus delayed
redraw posts for the timer-driven animation.
"""

from __future__ import annotations

from repro.android import Activity, AndroidSystem, Ctx
from repro.explorer import AppModel


class PuzzleActivity(Activity):
    BOARD_FIELDS = ("board", "selection", "undoStack", "clock")

    def on_create(self, ctx: Ctx) -> None:
        for field in self.BOARD_FIELDS:
            ctx.write(self.obj, field, 0)
        self.register_button(ctx, "moveBtn", on_click=self.on_move)
        self.register_button(ctx, "undoBtn", on_click=self.on_undo)
        self.register_button(ctx, "newGameBtn", on_click=self.on_new_game)

    def on_resume(self, ctx: Ctx) -> None:
        # The solver computes hints concurrently with UI edits — genuine
        # multithreaded races on the board state.
        def solver(tctx: Ctx):
            for _ in range(2):
                board = tctx.read(self.obj, "board")
                tctx.write(self.obj, "hint", (board or 0) + 1)
                tctx.write(self.obj, "selection", -1)
                yield

        ctx.fork(solver, name="solver")
        # Animation: delayed redraw posts (timer-driven).
        ctx.post_delayed(self._redraw, 50, name="redrawTick")
        ctx.post_delayed(self._redraw, 150, name="redrawTick")

    def _redraw(self) -> None:
        rctx = self.env.current_ctx
        rctx.write(self.obj, "clock", self.env.clock)

    def on_move(self, ctx: Ctx) -> None:
        board = ctx.read(self.obj, "board") or 0
        ctx.write(self.obj, "board", board + 1)
        ctx.write(self.obj, "undoStack", board)
        ctx.write(self.obj, "selection", board % 9)

    def on_undo(self, ctx: Ctx) -> None:
        previous = ctx.read(self.obj, "undoStack")
        ctx.write(self.obj, "board", previous)

    def on_new_game(self, ctx: Ctx) -> None:
        ctx.write(self.obj, "board", 0)
        ctx.write(self.obj, "frameBuffer", "clear")
        # The native renderer repaints; its thread creation is invisible,
        # so its frameBuffer write looks concurrent with the clear above
        # (the one false-positive mechanism in this app).
        def renderer(tctx: Ctx):
            tctx.write(self.obj, "frameBuffer", "repaint")
            tctx.post(self._frame_done, name="frameDone")

        ctx.fork(renderer, name="native-paint", untracked=True)

    def _frame_done(self) -> None:
        fctx = self.env.current_ctx
        fctx.read(self.obj, "frameBuffer")
        fctx.write(self.obj, "fps", 60)


class PuzzleApp(AppModel):
    name = "puzzle"

    def build(self, seed: int = 0) -> AndroidSystem:
        system = AndroidSystem(seed=seed, name=self.name)
        system.launch(PuzzleActivity)
        return system
