"""Registry of all application models.

* ``paper_app(name)`` — the synthetic model calibrated to one of the 15
  evaluation subjects (Tables 2/3);
* ``DEMO_APPS`` — the hand-written models: the paper's motivating
  music player (Figures 1–4) and the §6 case studies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.explorer import AppModel

from .browser_app import BrowserApp
from .dictionary_app import DictionaryApp
from .email_app import EmailApp
from .messenger_app import MessengerApp
from .music_player import DwFileAct
from .notes_app import NotesApp
from .puzzle_app import PuzzleApp
from .specs import ALL_SPECS, OPEN_SOURCE_SPECS, PROPRIETARY_SPECS, SPEC_BY_NAME, AppSpec
from .synthetic import SyntheticApp


class MusicPlayerApp(AppModel):
    """Explorer-ready model of the motivating example."""

    name = "music-player"

    def build(self, seed: int = 0):
        from repro.android import AndroidSystem

        system = AndroidSystem(seed=seed, name=self.name)
        system.launch(DwFileAct)
        return system


def paper_app(name: str, scale: float = 1.0) -> SyntheticApp:
    """The calibrated synthetic model for one Table 2/3 subject."""
    spec = SPEC_BY_NAME.get(name)
    if spec is None:
        raise KeyError(
            "unknown paper app %r (have: %s)" % (name, ", ".join(SPEC_BY_NAME))
        )
    return SyntheticApp(spec, scale=scale)


def all_paper_apps(scale: float = 1.0, open_source_only: bool = False) -> List[SyntheticApp]:
    specs = OPEN_SOURCE_SPECS if open_source_only else ALL_SPECS
    return [SyntheticApp(spec, scale=scale) for spec in specs]


DEMO_APPS: Dict[str, AppModel] = {
    "music-player": MusicPlayerApp(),
    "dictionary": DictionaryApp(),
    "messenger": MessengerApp(),
    "browser": BrowserApp(),
    "notes": NotesApp(),
    "email": EmailApp(),
    "puzzle": PuzzleApp(),
}


def demo_app(name: str) -> AppModel:
    app = DEMO_APPS.get(name)
    if app is None:
        raise KeyError("unknown demo app %r (have: %s)" % (name, ", ".join(DEMO_APPS)))
    return app
