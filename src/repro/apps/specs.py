"""Calibration data for the 15 evaluation subjects (paper, Tables 2 and 3).

We cannot run the original binaries (ten open-source apps of 2013 vintage
and five proprietary ones), so each subject is modelled by a synthetic
application (:mod:`repro.apps.synthetic`) calibrated to its published
statistics:

* Table 2 — trace length, distinct fields, thread counts (with/without
  task queues), asynchronous task count;
* Table 3 — race reports per category, with true-positive counts for the
  open-source subjects (``None`` for proprietary ones, where the paper
  could not validate).

``RaceQuota(reported, true)`` drives the synthetic app's race *gadgets*:
``true`` gadget instances are genuinely reorderable; the remainder use the
paper's documented false-positive mechanisms (untracked native threads,
missing enables, timing-separated delayed posts, invisible causality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.classification import RaceCategory


@dataclass(frozen=True)
class RaceQuota:
    """Reported race count and (for open-source apps) true positives."""

    reported: int
    true: Optional[int] = None  # None: not validated (proprietary)

    @property
    def false(self) -> Optional[int]:
        if self.true is None:
            return None
        return self.reported - self.true

    def __post_init__(self):
        if self.true is not None and not 0 <= self.true <= self.reported:
            raise ValueError("true positives out of range: %r" % (self,))


@dataclass(frozen=True)
class AppSpec:
    """One row of Tables 2 and 3."""

    name: str
    loc: Optional[int]  # paper's LOC (None for proprietary apps)
    trace_length: int
    fields: int
    threads_plain: int  # Table 2 "Threads (w/o Qs)"
    threads_looper: int  # Table 2 "Threads (w/ Qs)", including main
    async_tasks: int
    multithreaded: RaceQuota = RaceQuota(0, 0)
    cross_posted: RaceQuota = RaceQuota(0, 0)
    co_enabled: RaceQuota = RaceQuota(0, 0)
    delayed: RaceQuota = RaceQuota(0, 0)
    unknown: RaceQuota = RaceQuota(0, 0)
    proprietary: bool = False
    #: target happens-before-graph reduction ratio (nodes / trace length);
    #: the paper reports a 1.4%–24.8% band with 11.1% average (§6).
    target_ratio: float = 0.11

    def quota(self, category: RaceCategory) -> RaceQuota:
        return {
            RaceCategory.MULTITHREADED: self.multithreaded,
            RaceCategory.CROSS_POSTED: self.cross_posted,
            RaceCategory.CO_ENABLED: self.co_enabled,
            RaceCategory.DELAYED: self.delayed,
            RaceCategory.UNKNOWN: self.unknown,
        }[category]

    @property
    def total_reported(self) -> int:
        return (
            self.multithreaded.reported
            + self.cross_posted.reported
            + self.co_enabled.reported
            + self.delayed.reported
            + self.unknown.reported
        )

    @property
    def total_true(self) -> Optional[int]:
        if self.proprietary:
            return None
        return sum(
            quota.true or 0
            for quota in (
                self.multithreaded,
                self.cross_posted,
                self.co_enabled,
                self.delayed,
                self.unknown,
            )
        )


def _q(reported: int, true: Optional[int] = None) -> RaceQuota:
    return RaceQuota(reported, true)


#: The ten open-source subjects (Tables 2 and 3, upper halves).
OPEN_SOURCE_SPECS = (
    AppSpec(
        "Aard Dictionary", 4044, 1355, 189, 2, 1, 58,
        multithreaded=_q(1, 1), target_ratio=0.22,
    ),
    AppSpec(
        "Music Player", 11012, 5532, 521, 3, 2, 62,
        cross_posted=_q(17, 4), co_enabled=_q(11, 10), delayed=_q(4, 0),
        unknown=_q(3, 2), target_ratio=0.18,
    ),
    AppSpec(
        "My Tracks", 26146, 7305, 573, 11, 7, 164,
        multithreaded=_q(1, 0), cross_posted=_q(2, 1), co_enabled=_q(1, 0),
        target_ratio=0.16,
    ),
    AppSpec(
        "Messenger", 27593, 10106, 845, 11, 4, 99,
        multithreaded=_q(1, 1), cross_posted=_q(15, 5), co_enabled=_q(4, 3),
        delayed=_q(2, 2), target_ratio=0.14,
    ),
    AppSpec(
        "Tomdroid Notes", 3215, 10120, 413, 3, 1, 348,
        cross_posted=_q(5, 2), co_enabled=_q(1, 0), target_ratio=0.20,
    ),
    AppSpec(
        "FBReader", 50042, 10723, 322, 14, 1, 119,
        multithreaded=_q(1, 0), cross_posted=_q(22, 22), co_enabled=_q(14, 4),
        target_ratio=0.10,
    ),
    AppSpec(
        "Browser", 30874, 19062, 963, 13, 4, 103,
        multithreaded=_q(2, 1), cross_posted=_q(64, 2), target_ratio=0.10,
    ),
    AppSpec(
        "OpenSudoku", 6151, 24901, 334, 5, 1, 45,
        multithreaded=_q(1, 0), cross_posted=_q(1, 0), target_ratio=0.04,
    ),
    AppSpec(
        "K-9 Mail", 54119, 29662, 1296, 7, 2, 689,
        multithreaded=_q(9, 2), co_enabled=_q(1, 0), target_ratio=0.12,
    ),
    AppSpec(
        "SGTPuzzles", 2368, 38864, 566, 4, 1, 80,
        multithreaded=_q(11, 10), cross_posted=_q(21, 8), target_ratio=0.03,
    ),
)

#: The five proprietary subjects (no source; true positives unvalidated).
PROPRIETARY_SPECS = (
    AppSpec(
        "Remind Me", None, 10348, 348, 3, 1, 176,
        cross_posted=_q(21), co_enabled=_q(33), proprietary=True,
        target_ratio=0.14,
    ),
    AppSpec(
        "Twitter", None, 16975, 1362, 21, 5, 97,
        cross_posted=_q(20), co_enabled=_q(7), delayed=_q(4),
        proprietary=True, target_ratio=0.12,
    ),
    AppSpec(
        "Adobe Reader", None, 33866, 1267, 17, 4, 226,
        multithreaded=_q(34), cross_posted=_q(73), delayed=_q(9),
        unknown=_q(9), proprietary=True, target_ratio=0.08,
    ),
    AppSpec(
        "Facebook", None, 52146, 801, 16, 3, 16,
        multithreaded=_q(12), cross_posted=_q(10), proprietary=True,
        target_ratio=0.02,
    ),
    AppSpec(
        "Flipkart", None, 157539, 2065, 36, 3, 105,
        multithreaded=_q(12), cross_posted=_q(152), co_enabled=_q(84),
        delayed=_q(30), unknown=_q(36), proprietary=True, target_ratio=0.022,
    ),
)

ALL_SPECS = OPEN_SOURCE_SPECS + PROPRIETARY_SPECS

SPEC_BY_NAME: Dict[str, AppSpec] = {spec.name: spec for spec in ALL_SPECS}


def open_source_totals() -> Dict[str, Tuple[int, int]]:
    """Aggregate (reported, true) per category for the open-source apps —
    the 'Total' row of Table 3."""
    totals: Dict[str, Tuple[int, int]] = {}
    for attr in ("multithreaded", "cross_posted", "co_enabled", "delayed", "unknown"):
        reported = sum(getattr(s, attr).reported for s in OPEN_SOURCE_SPECS)
        true = sum(getattr(s, attr).true or 0 for s in OPEN_SOURCE_SPECS)
        totals[attr] = (reported, true)
    return totals
