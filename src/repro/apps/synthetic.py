"""Synthetic application models calibrated to the paper's subjects.

Each of the paper's 15 evaluation apps is modelled by a
:class:`SyntheticApp` built from its :class:`~repro.apps.specs.AppSpec`.
The app consists of one activity plus *race gadgets* and *filler*:

Race gadgets (one per Table 3 category, each instance touching a group of
dedicated ``Racy`` fields so report counts are exact):

* **multithreaded, true** — a worker thread and the ``probe`` click
  handler write the same fields with no synchronization;
* **multithreaded, false** — the worker writes fields, then forks an
  *untracked* native thread (its fork is invisible to the Trace Generator,
  §6) which posts a main-thread task reading them: really ordered,
  invisibly so;
* **cross-posted, true** — the worker posts a main-thread task whose
  writes race with the ``probe`` handler's writes (two main-thread tasks,
  one cross-posted);
* **cross-posted, false** — the ``probe`` handler writes fields and forks
  an untracked relay that posts a main-thread task writing them;
* **co-enabled, true** — two always-enabled buttons whose handlers write
  the same fields;
* **co-enabled, false** — button ``ceD`` is enabled *silently* (a missed
  enable instrumentation point) by ``ceC``'s handler; their handlers share
  fields;
* **delayed, true** — a delayed post followed by an undelayed post to the
  same thread (no FIFO ordering derivable);
* **delayed, false** — two delayed posts with the longer delay posted
  first (δ₁ > δ₂ defeats the §4.2 rule; in practice the timing separation
  always orders them);
* **unknown** — framework-level posts with no event, delay, or
  cross-thread provenance in their chains.

For proprietary apps (true-positive counts unvalidated in the paper) all
gadget instances use the "true" mechanisms and the ground truth records
``None``.

Filler reproduces the remaining Table 2 statistics exactly (threads with
and without queues, async tasks, distinct fields) and approximately
(trace length, node-reduction ratio): private-field access runs separated
by private-lock operations, so no filler access ever races.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.android import Activity, AndroidSystem, Ctx, SharedObject, looper_entry
from repro.core.classification import RaceCategory
from repro.core.trace import ExecutionTrace
from repro.explorer import AppModel

from .specs import AppSpec, RaceQuota


@dataclass(frozen=True)
class GroundTruthEntry:
    """Expected detector output for one racy field."""

    field_name: str  # Class.field identity ("Racy.mt_t0")
    category: RaceCategory
    is_true: Optional[bool]  # None for proprietary (unvalidated)


@dataclass
class BuildPlan:
    """Derived construction counts for one spec (validated up front)."""

    spec: AppSpec
    scale: float

    mt_tp: int = 0
    mt_fp: int = 0
    cp_tp: int = 0
    cp_fp: int = 0
    ce_tp: int = 0
    ce_fp: int = 0
    dl_tp: int = 0
    dl_fp: int = 0
    un_tp: int = 0
    un_fp: int = 0

    events: Tuple[str, ...] = ()
    worker_needed: bool = False
    gadget_plain_threads: int = 0
    gadget_tasks: int = 0
    filler_plain: int = 0
    filler_loopers: int = 0
    filler_tasks: int = 0
    filler_fields: int = 0
    target_length: int = 0
    filler_runs: int = 0
    run_length: int = 1
    runs_per_thread: int = 0
    task_run_lengths: List[int] = field(default_factory=list)
    thread_run_lengths: List[List[int]] = field(default_factory=list)

    def __post_init__(self):
        spec = self.spec
        self.mt_tp, self.mt_fp = _split(spec.multithreaded, spec.proprietary)
        self.cp_tp, self.cp_fp = _split(spec.cross_posted, spec.proprietary)
        self.ce_tp, self.ce_fp = _split(spec.co_enabled, spec.proprietary)
        self.dl_tp, self.dl_fp = _split(spec.delayed, spec.proprietary)
        self.un_tp, self.un_fp = _split(spec.unknown, spec.proprietary)

        events = ["probe"]
        if self.ce_tp:
            events += ["ceA", "ceB"]
        if self.ce_fp:
            events += ["ceC", "ceD"]
        self.events = tuple(events)

        self.worker_needed = bool(self.mt_tp or self.mt_fp or self.cp_tp)
        self.gadget_plain_threads = (
            int(self.worker_needed) + int(bool(self.mt_fp)) + int(bool(self.cp_fp))
        )
        self.gadget_tasks = (
            int(bool(self.cp_tp))
            + int(bool(self.cp_fp))
            + int(bool(self.mt_fp))
            + (2 if self.dl_tp else 0)
            + (2 if self.dl_fp else 0)
            + (2 if self.un_tp else 0)
            + (2 if self.un_fp else 0)
        )

        self.filler_plain = spec.threads_plain - self.gadget_plain_threads
        self.filler_loopers = spec.threads_looper - 1
        framework_tasks = 1 + len(self.events)  # LAUNCH + event dispatches
        self.filler_tasks = spec.async_tasks - framework_tasks - self.gadget_tasks
        racy_fields = spec.total_reported
        self.filler_fields = spec.fields - racy_fields
        for name, value in (
            ("filler threads without queues", self.filler_plain),
            ("filler looper threads", self.filler_loopers),
            ("filler async tasks", self.filler_tasks),
            ("filler fields", self.filler_fields),
        ):
            if value < 0:
                raise ValueError(
                    "%s: spec leaves %d %s" % (spec.name, value, name)
                )

        self._plan_filler_volume()

    def _plan_filler_volume(self) -> None:
        spec = self.spec
        self.target_length = max(200, round(spec.trace_length * self.scale))

        widget_enables = 1 + (2 if self.ce_tp else 0) + (1 if self.ce_fp else 0)
        fixed_ops = (
            4  # main: threadinit, attachQ, loopOnQ, threadexit
            + 2  # binder: threadinit, threadexit
            + 3 * (self.gadget_plain_threads + self.filler_plain)  # fork/init/exit
            + 5 * self.filler_loopers  # fork/init/attachQ/loopOnQ/exit
            + 3 * spec.async_tasks  # post + begin + end per task
            + 1  # launch enable
            + widget_enables
            + 3  # lifecycle enables around launch (onPause, onDestroy, ...)
            + 2 * spec.total_reported  # gadget accesses (two sides per field)
        )
        budget = max(0, self.target_length - fixed_ops)
        # Graph-node accounting (after per-thread coalescing):
        #   sync nodes  = fixed_ops - gadget-access runs collapse (small)
        #   access nodes: one per filler task + one per plain-thread run,
        #   and each plain-thread run adds acquire+release (two more nodes).
        nodes_target = max(1, round(spec.target_ratio * self.target_length))
        avail = nodes_target - fixed_ops - self.filler_tasks
        if self.filler_plain:
            thread_runs = max(self.filler_plain, avail // 3)
            self.runs_per_thread = math.ceil(thread_runs / self.filler_plain)
        else:
            self.runs_per_thread = 0
        self.filler_runs = self.filler_tasks + self.runs_per_thread * self.filler_plain
        lock_ops = 2 * self.runs_per_thread * self.filler_plain
        # Floor: every filler field must be touched at least once, so the
        # Fields column stays exact at any scale (the trace can only track
        # the paper's length at scale 1.0 anyway).
        accesses = max(
            self.filler_runs,
            budget - lock_ops,
            math.ceil(self.filler_fields * 1.6),
        )
        total_runs = max(1, self.filler_runs)
        base = accesses // total_runs
        extra = accesses - base * total_runs
        # Exact per-run lengths: the first ``extra`` runs get one more access.
        lengths = [base + 1] * extra + [base] * (total_runs - extra)
        self.task_run_lengths = lengths[: self.filler_tasks]
        per_thread = lengths[self.filler_tasks :]
        self.thread_run_lengths = [
            per_thread[i :: self.filler_plain] for i in range(self.filler_plain)
        ]
        self.run_length = max(1, base)


def _split(quota: RaceQuota, proprietary: bool) -> Tuple[int, int]:
    """(true-mechanism count, false-mechanism count) for a quota."""
    if proprietary or quota.true is None:
        return quota.reported, 0
    return quota.true, quota.reported - quota.true


class FieldPool:
    """A cyclic pool of (object, field) entries owned by one group of
    same-thread filler units; ``take(n)`` hands out the next ``n`` entries,
    wrapping around so every field gets accessed."""

    def __init__(self, entries: List[Tuple[SharedObject, str]]):
        self.entries = entries
        self._offset = 0

    def take(self, n: int) -> List[Tuple[SharedObject, str]]:
        out = []
        for _ in range(n):
            out.append(self.entries[self._offset % len(self.entries)])
            self._offset += 1
        return out


class _BuildState:
    """Per-run mutable state (fresh for every build)."""

    def __init__(self):
        self.racy: Optional[SharedObject] = None
        self.pools: Dict[str, FieldPool] = {}
        self.activity = None


class SyntheticApp(AppModel):
    """A synthetic application calibrated to one :class:`AppSpec`."""

    def __init__(self, spec: AppSpec, scale: float = 1.0):
        self.spec = spec
        self.scale = scale
        self.plan = BuildPlan(spec, scale)
        self.name = spec.name
        self._state = _BuildState()
        self._activity_cls = _make_activity_class(self)

    # -- field naming ---------------------------------------------------------

    def _fields(self, prefix: str, count: int) -> List[str]:
        return ["%s%d" % (prefix, i) for i in range(count)]

    @property
    def mt_tp_fields(self) -> List[str]:
        return self._fields("mt_t", self.plan.mt_tp)

    @property
    def mt_fp_fields(self) -> List[str]:
        return self._fields("mt_f", self.plan.mt_fp)

    @property
    def cp_tp_fields(self) -> List[str]:
        return self._fields("cp_t", self.plan.cp_tp)

    @property
    def cp_fp_fields(self) -> List[str]:
        return self._fields("cp_f", self.plan.cp_fp)

    @property
    def ce_tp_fields(self) -> List[str]:
        return self._fields("ce_t", self.plan.ce_tp)

    @property
    def ce_fp_fields(self) -> List[str]:
        return self._fields("ce_f", self.plan.ce_fp)

    @property
    def dl_tp_fields(self) -> List[str]:
        return self._fields("dl_t", self.plan.dl_tp)

    @property
    def dl_fp_fields(self) -> List[str]:
        return self._fields("dl_f", self.plan.dl_fp)

    @property
    def un_tp_fields(self) -> List[str]:
        return self._fields("un_t", self.plan.un_tp)

    @property
    def un_fp_fields(self) -> List[str]:
        return self._fields("un_f", self.plan.un_fp)

    def ground_truth(self) -> Dict[str, GroundTruthEntry]:
        """Expected race reports, keyed by field identity (``Racy.xxx``)."""
        validated = not self.spec.proprietary
        entries: Dict[str, GroundTruthEntry] = {}

        def add(fields: List[str], category: RaceCategory, is_true: Optional[bool]):
            for name in fields:
                key = "Racy.%s" % name
                entries[key] = GroundTruthEntry(
                    key, category, is_true if validated else None
                )

        add(self.mt_tp_fields, RaceCategory.MULTITHREADED, True)
        add(self.mt_fp_fields, RaceCategory.MULTITHREADED, False)
        add(self.cp_tp_fields, RaceCategory.CROSS_POSTED, True)
        add(self.cp_fp_fields, RaceCategory.CROSS_POSTED, False)
        add(self.ce_tp_fields, RaceCategory.CO_ENABLED, True)
        add(self.ce_fp_fields, RaceCategory.CO_ENABLED, False)
        add(self.dl_tp_fields, RaceCategory.DELAYED, True)
        add(self.dl_fp_fields, RaceCategory.DELAYED, False)
        add(self.un_tp_fields, RaceCategory.UNKNOWN, True)
        add(self.un_fp_fields, RaceCategory.UNKNOWN, False)
        return entries

    # -- AppModel interface --------------------------------------------------------

    def build(self, seed: int = 0) -> AndroidSystem:
        self._state = _BuildState()
        system = AndroidSystem(seed=seed, name=self.spec.name)
        system.launch(self._activity_cls)
        return system

    def scripted_events(self) -> List[str]:
        return ["click:%s" % widget for widget in self.plan.events]

    def run(self, seed: int = 0) -> Tuple[AndroidSystem, ExecutionTrace]:
        """One representative test: launch, fire the scripted events, and
        return the finished system and trace (the Table 2/3 pipeline)."""
        from repro.explorer import find_event

        system = self.build(seed)
        system.run_to_quiescence()
        for key in self.scripted_events():
            event = find_event(system.enabled_events(), key)
            if event is None:
                raise RuntimeError(
                    "%s: scripted event %s not enabled" % (self.spec.name, key)
                )
            system.fire(event)
            system.run_to_quiescence()
        trace = system.finish(self.spec.name)
        return system, trace

    # -- activity callbacks (invoked by the generated Activity class) --------------

    def _on_create(self, activity: Activity, ctx: Ctx) -> None:
        state = self._state
        state.activity = activity
        state.racy = SharedObject(self.env(), "Racy")
        plan = self.plan
        activity.register_button(ctx, "probe", on_click=self._probe_click)
        if plan.ce_tp:
            activity.register_button(ctx, "ceA", on_click=self._ce_a_click)
            activity.register_button(ctx, "ceB", on_click=self._ce_b_click)
        if plan.ce_fp:
            activity.register_button(ctx, "ceC", on_click=self._ce_c_click)
            activity.register_button(
                ctx, "ceD", on_click=self._ce_d_click, enabled=False
            )

    def env(self):
        return self._state.activity.env

    def _on_resume(self, activity: Activity, ctx: Ctx):
        plan = self.plan
        env = activity.env
        racy = self._state.racy

        # -- gadget threads -------------------------------------------------
        if plan.worker_needed:
            ctx.fork(self._worker_entry(racy), name="worker")

        # -- delayed gadgets (§4.2 postDelayed) -----------------------------
        if plan.dl_tp:
            ctx.post_delayed(
                self._writer(racy, self.dl_tp_fields, 1), 120, name="DelayedTask"
            )
            ctx.post(self._writer(racy, self.dl_tp_fields, 2), name="PromptTask")
        if plan.dl_fp:
            ctx.post_delayed(
                self._writer(racy, self.dl_fp_fields, 1), 500, name="SlowDelayed"
            )
            ctx.post_delayed(
                self._writer(racy, self.dl_fp_fields, 2), 10, name="FastDelayed"
            )

        # -- unknown-category gadgets ----------------------------------------
        main = env.main
        if plan.un_tp:
            main.push_action(
                self._frame_post(main, self._writer(racy, self.un_tp_fields, 1))
            )
            main.push_action(
                self._frame_post(main, self._writer(racy, self.un_tp_fields, 2))
            )
        if plan.un_fp:

            def first_then_chain():
                mctx = env.main_ctx
                for name in self.un_fp_fields:
                    mctx.write(racy, name, 1)
                main.push_action(
                    self._frame_post(main, self._reader(racy, self.un_fp_fields))
                )

            main.push_action(self._frame_post(main, first_then_chain))

        # -- filler ------------------------------------------------------------
        loopers = [
            ctx.fork(looper_entry, name="looper-%d" % i)
            for i in range(plan.filler_loopers)
        ]
        if loopers:
            yield ctx.wait_until(
                lambda: all(t.looping for t in loopers), "loopers up"
            )
        self._state.pools = self._filler_field_pools(env)
        for i in range(plan.filler_plain):
            pool = self._state.pools["plain-%d" % i]
            ctx.fork(self._filler_thread_entry(pool, i), name="filler-%d" % i)
        targets = [env.main] + loopers
        for i in range(plan.filler_tasks):
            target_index = i % len(targets)
            pool = self._state.pools["task-target-%d" % target_index]
            length = plan.task_run_lengths[i] if i < len(plan.task_run_lengths) else 1
            ctx.post(
                self._filler_task(pool, length),
                name="fillerTask",
                to=targets[target_index],
            )

    def _filler_field_pools(self, env) -> Dict[str, FieldPool]:
        """Partition the filler fields among the access-unit groups so no
        field is shared across threads (hence no filler races).  Groups:
        one per plain filler thread, one per posting target (units in one
        group always run on the same thread).  Fields are split
        proportionally to each group's access volume, so cycling through a
        pool covers every field."""
        plan = self.plan
        # (group name, access volume in runs)
        groups: List[Tuple[str, int]] = [
            ("plain-%d" % i, plan.runs_per_thread) for i in range(plan.filler_plain)
        ]
        target_count = 1 + plan.filler_loopers
        if plan.filler_tasks:
            for i in range(target_count):
                tasks_here = len(range(i, plan.filler_tasks, target_count))
                groups.append(("task-target-%d" % i, tasks_here))
        if not groups:
            groups = [("spare", 1)]
        obj = SharedObject(env, "Filler")
        total_volume = sum(max(1, volume) for _, volume in groups)
        raw: Dict[str, List[Tuple[SharedObject, str]]] = {}
        next_field = 0
        for index, (group, volume) in enumerate(groups):
            if index == len(groups) - 1:
                count = plan.filler_fields - next_field
            else:
                count = round(plan.filler_fields * max(1, volume) / total_volume)
                count = min(count, plan.filler_fields - next_field)
            # Cap at the accesses the group will actually perform.
            count = min(count, max(1, volume) * plan.run_length)
            entries = [
                (obj, "f%d" % i) for i in range(next_field, next_field + max(0, count))
            ]
            next_field += max(0, count)
            if not entries:
                entries = [(obj, "spare_%s" % group)]
            raw[group] = entries
        # Any remainder (from caps) goes to the largest group.
        if next_field < plan.filler_fields:
            largest = max(raw, key=lambda g: len(raw[g]))
            raw[largest].extend(
                (obj, "f%d" % i) for i in range(next_field, plan.filler_fields)
            )
        return {group: FieldPool(entries) for group, entries in raw.items()}

    # -- gadget bodies ------------------------------------------------------------

    def _worker_entry(self, racy: SharedObject):
        plan = self.plan
        app = self

        def entry(wctx: Ctx):
            for name in app.mt_tp_fields:
                wctx.write(racy, name, "worker")
            yield
            if plan.mt_fp:
                for name in app.mt_fp_fields:
                    wctx.write(racy, name, "worker")
                # Hand off to an untracked native thread: the fork is not
                # logged, so the causal order worker-write -> relay-post ->
                # main-read is invisible (the Browser false positives, §6).
                wctx.fork(app._relay_entry(racy, app.mt_fp_fields), untracked=True)
            if plan.cp_tp:
                wctx.post(
                    app._writer(racy, app.cp_tp_fields, "cp-task"), name="CpTask"
                )

        return entry

    def _relay_entry(self, racy: SharedObject, fields: List[str]):
        app = self

        def entry(rctx: Ctx):
            rctx.post(app._reader(racy, fields), name="RelayTask")

        return entry

    def _cp_fp_relay_entry(self, racy: SharedObject):
        app = self

        def entry(rctx: Ctx):
            rctx.post(
                app._writer(racy, app.cp_fp_fields, "relay"), name="NativeCallback"
            )

        return entry

    def _writer(self, racy: SharedObject, fields: List[str], value) -> Callable:
        env_getter = self.env

        def write_all():
            ctx = env_getter().current_ctx
            for name in fields:
                ctx.write(racy, name, value)

        return write_all

    def _reader(self, racy: SharedObject, fields: List[str]) -> Callable:
        env_getter = self.env

        def read_all():
            ctx = env_getter().current_ctx
            for name in fields:
                ctx.read(racy, name)

        return read_all

    def _frame_post(self, main, callback: Callable) -> Callable[[], None]:
        def action() -> None:
            self.env().post_message(main, main, callback, "FrameworkTask")

        return action

    # -- event handlers ---------------------------------------------------------------

    def _probe_click(self, ctx: Ctx) -> None:
        racy = self._state.racy
        for name in self.mt_tp_fields:
            ctx.write(racy, name, "probe")
        for name in self.cp_tp_fields:
            ctx.write(racy, name, "probe")
        if self.plan.cp_fp:
            for name in self.cp_fp_fields:
                ctx.write(racy, name, "probe")
            ctx.fork(self._cp_fp_relay_entry(racy), untracked=True)

    def _ce_a_click(self, ctx: Ctx) -> None:
        racy = self._state.racy
        for name in self.ce_tp_fields:
            ctx.write(racy, name, "A")

    def _ce_b_click(self, ctx: Ctx) -> None:
        racy = self._state.racy
        for name in self.ce_tp_fields:
            ctx.write(racy, name, "B")

    def _ce_c_click(self, ctx: Ctx) -> None:
        racy = self._state.racy
        for name in self.ce_fp_fields:
            ctx.write(racy, name, "C")
        # Missed instrumentation point: ceD becomes clickable but no enable
        # operation is logged (the paper's co-enabled false positives).
        self._state.activity.find_view("ceD").set_enabled(ctx, True, silent=True)

    def _ce_d_click(self, ctx: Ctx) -> None:
        racy = self._state.racy
        for name in self.ce_fp_fields:
            ctx.write(racy, name, "D")

    # -- filler bodies ------------------------------------------------------------------

    def _filler_thread_entry(self, pool: FieldPool, thread_index: int):
        plan = self.plan
        lengths = (
            plan.thread_run_lengths[thread_index]
            if thread_index < len(plan.thread_run_lengths)
            else [plan.run_length] * plan.runs_per_thread
        )

        def entry(tctx: Ctx):
            lock = tctx.env.new_lock()
            for length in lengths:
                yield tctx.acquire(lock)
                for i, (obj, name) in enumerate(pool.take(length)):
                    tctx.write(obj, name, i)
                tctx.release(lock)
                yield

        return entry

    def _filler_task(self, pool: FieldPool, run_length: int) -> Callable:
        env_getter = self.env

        def body():
            # Runs on whichever looper the message was posted to.
            ctx = env_getter().current_ctx
            for i, (obj, name) in enumerate(pool.take(run_length)):
                ctx.write(obj, name, i)

        return body


def _make_activity_class(app: SyntheticApp):
    class SyntheticMain(Activity):
        def on_create(self, ctx: Ctx) -> None:
            app._on_create(self, ctx)

        def on_resume(self, ctx: Ctx):
            return app._on_resume(self, ctx)

    SyntheticMain.__name__ = "Main_%s" % app.spec.name.replace(" ", "").replace("-", "")
    SyntheticMain.__qualname__ = SyntheticMain.__name__
    return SyntheticMain
