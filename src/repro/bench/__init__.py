"""Benchmark harness: the app → trace → detect pipeline and the paper's
table renderers."""

from .runner import AppRunResult, run_all, run_paper_app
from .reporting import (
    render_performance,
    render_table2,
    render_table3,
    render_table3_expected,
)
from .stats import TraceStats
from .timeline import render_race_context, render_task_summary, render_timeline

__all__ = [
    "AppRunResult",
    "TraceStats",
    "render_performance",
    "render_race_context",
    "render_table2",
    "render_table3",
    "render_table3_expected",
    "render_task_summary",
    "render_timeline",
    "run_all",
    "run_paper_app",
]
