"""Table rendering in the layout of the paper's Tables 2 and 3."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.classification import RaceCategory

from .runner import AppRunResult


def _fmt_xy(reported: int, true: Optional[int]) -> str:
    if true is None:
        return str(reported)
    return "%d (%d)" % (reported, true)


def render_table2(results: Sequence[AppRunResult]) -> str:
    """Table 2: statistics about applications and traces — paper value
    alongside the measured value for every column."""
    header = (
        "Application          | Trace length      | Fields        | Thr w/o Q | Thr w/ Q  | Async tasks"
    )
    rule = "-" * len(header)
    lines = [header, rule, "                     |  paper /  ours    | paper/ ours  | ppr/ours  | ppr/ours  | paper/ ours"]
    lines.append(rule)
    for result in results:
        spec, stats = result.spec, result.stats
        lines.append(
            "%-20s | %6d / %6d   | %4d / %4d   | %2d / %2d   | %2d / %2d   | %4d / %4d"
            % (
                spec.name,
                spec.trace_length,
                stats.trace_length,
                spec.fields,
                stats.fields,
                spec.threads_plain,
                stats.threads_without_queues,
                spec.threads_looper,
                stats.threads_with_queues,
                spec.async_tasks,
                stats.async_tasks,
            )
        )
    return "\n".join(lines)


#: Table 3 column order (multithreaded, then single-threaded categories).
TABLE3_CATEGORIES = (
    RaceCategory.MULTITHREADED,
    RaceCategory.CROSS_POSTED,
    RaceCategory.CO_ENABLED,
    RaceCategory.DELAYED,
)


def render_table3(results: Sequence[AppRunResult], include_unknown: bool = True) -> str:
    """Table 3: data races reported, ``X (Y)`` = reports (true positives).
    The unknown-category counts the paper reports in prose are appended as
    an extra column."""
    categories = list(TABLE3_CATEGORIES)
    if include_unknown:
        categories.append(RaceCategory.UNKNOWN)
    header = "%-20s | %s" % (
        "Application",
        " | ".join("%-18s" % c.value for c in categories),
    )
    rule = "-" * len(header)
    lines = [header, rule]
    totals = {c: [0, 0, True] for c in categories}  # reported, true, validated
    for result in results:
        counts = result.category_counts()
        cells = []
        for category in categories:
            reported, true = counts[category]
            cells.append("%-18s" % _fmt_xy(reported, true))
            totals[category][0] += reported
            if true is None:
                totals[category][2] = False
            else:
                totals[category][1] += true
        lines.append("%-20s | %s" % (result.spec.name, " | ".join(cells)))
    lines.append(rule)
    total_cells = []
    for category in categories:
        reported, true, validated = totals[category]
        total_cells.append("%-18s" % _fmt_xy(reported, true if validated else None))
    lines.append("%-20s | %s" % ("Total", " | ".join(total_cells)))
    return "\n".join(lines)


def render_table3_expected(results: Sequence[AppRunResult]) -> str:
    """Side-by-side check: measured X(Y) against the paper's X(Y)."""
    lines = [
        "%-20s | %-13s | %-22s | %-22s" % ("Application", "category", "paper X(Y)", "measured X(Y)"),
        "-" * 86,
    ]
    for result in results:
        counts = result.category_counts()
        for category in list(TABLE3_CATEGORIES) + [RaceCategory.UNKNOWN]:
            quota = result.spec.quota(category)
            measured = counts[category]
            if quota.reported == 0 and measured[0] == 0:
                continue
            match = "" if (quota.reported, quota.true) == measured else "   <- MISMATCH"
            lines.append(
                "%-20s | %-13s | %-22s | %-22s%s"
                % (
                    result.spec.name,
                    category.value,
                    _fmt_xy(quota.reported, quota.true),
                    _fmt_xy(*measured),
                    match,
                )
            )
    return "\n".join(lines)


def render_performance(results: Sequence[AppRunResult]) -> str:
    """§6 'Performance': node-coalescing reduction and analysis time."""
    lines = [
        "%-20s | %10s | %8s | %10s | %10s" % ("Application", "trace len", "nodes", "nodes/len", "detect (s)"),
        "-" * 72,
    ]
    ratios = []
    for result in results:
        report = result.report
        ratios.append(report.reduction_ratio)
        lines.append(
            "%-20s | %10d | %8d | %9.1f%% | %10.2f"
            % (
                result.spec.name,
                report.trace_length,
                report.node_count,
                100.0 * report.reduction_ratio,
                report.analysis_seconds,
            )
        )
    lines.append("-" * 72)
    lines.append(
        "reduction ratio: min %.1f%%  avg %.1f%%  max %.1f%%   (paper: 1.4%% - 24.8%%, avg 11.1%%)"
        % (
            100 * min(ratios),
            100 * sum(ratios) / len(ratios),
            100 * max(ratios),
        )
    )
    return "\n".join(lines)
