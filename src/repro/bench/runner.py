"""The app → trace → detection pipeline used by every benchmark."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.specs import AppSpec
from repro.apps.synthetic import GroundTruthEntry, SyntheticApp
from repro.core.classification import RaceCategory
from repro.core.race_detector import RaceReport, detect_races
from repro.core.trace import ExecutionTrace
from repro.obs import current_tracer

from .stats import TraceStats


@dataclass
class AppRunResult:
    """Everything one representative test of one subject produces."""

    spec: AppSpec
    trace: ExecutionTrace
    stats: TraceStats
    report: RaceReport
    ground_truth: Dict[str, GroundTruthEntry]

    def category_counts(self) -> Dict[RaceCategory, Tuple[int, Optional[int]]]:
        """(reported, true-positive) per category, matching Table 3's
        ``X(Y)`` entries.  True positives are counted by matching reports
        against the app's ground-truth registry (the paper used manual
        debugger-assisted validation)."""
        out: Dict[RaceCategory, Tuple[int, Optional[int]]] = {}
        for category in RaceCategory:
            races = [r for r in self.report.races if r.category is category]
            if self.spec.proprietary:
                out[category] = (len(races), None)
                continue
            true = sum(
                1
                for race in races
                if (entry := self.ground_truth.get(race.field_name)) is not None
                and entry.is_true
            )
            out[category] = (len(races), true)
        return out


def run_paper_app(spec: AppSpec, scale: float = 1.0, seed: int = 5) -> AppRunResult:
    """Run one calibrated subject through the full pipeline."""
    tracer = current_tracer()
    with tracer.span("bench.app", app=spec.name, scale=scale) as span:
        app = SyntheticApp(spec, scale=scale)
        with tracer.span("bench.generate", app=spec.name):
            _, trace = app.run(seed=seed)
        report = detect_races(trace)
        span.set(ops=len(trace), races=len(report.races))
    return AppRunResult(
        spec=spec,
        trace=trace,
        stats=TraceStats.of(trace, spec.name),
        report=report,
        ground_truth=app.ground_truth(),
    )


def run_all(specs, scale: float = 1.0, seed: int = 5) -> List[AppRunResult]:
    return [run_paper_app(spec, scale=scale, seed=seed) for spec in specs]
