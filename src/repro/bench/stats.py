"""Trace statistics (the columns of Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.trace import ExecutionTrace


@dataclass(frozen=True)
class TraceStats:
    """One row of Table 2, computed from a trace."""

    app: str
    trace_length: int
    fields: int
    threads_without_queues: int
    threads_with_queues: int
    async_tasks: int

    @classmethod
    def of(cls, trace: ExecutionTrace, app: str = "") -> "TraceStats":
        return cls(
            app=app or trace.name,
            trace_length=len(trace),
            fields=len(trace.fields()),
            threads_without_queues=len(
                [t for t in trace.threads_without_queue() if not _is_system(t)]
            ),
            threads_with_queues=len(trace.threads_with_queue()),
            async_tasks=trace.async_task_count(),
        )


def _is_system(thread: str) -> bool:
    """The paper excludes binder and other system threads from Table 2
    ('These numbers do not include the count of binder threads and other
    system threads created by the Android runtime')."""
    return thread.startswith("binder")
