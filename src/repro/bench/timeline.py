"""Timeline rendering — traces in the paper's Figure 3 layout.

Renders an execution trace as one column per thread, one row per
operation, with task brackets and optional happens-before edge
annotations for a chosen memory location — the visualization the paper
uses to explain its examples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.happens_before import HappensBefore
from repro.core.operations import OpKind
from repro.core.trace import ExecutionTrace, field_of_location


def render_timeline(
    trace: ExecutionTrace,
    threads: Optional[Sequence[str]] = None,
    focus_location: Optional[str] = None,
    max_ops: int = 200,
    column_width: int = 34,
) -> str:
    """Render ``trace`` with one column per thread.

    ``focus_location`` (a location or ``Class.field`` identity) marks the
    accesses to it with ``*``; other accesses can be elided by passing
    the threads of interest.
    """
    threads = list(threads or trace.threads)
    lines: List[str] = []
    header = "  op# " + "".join("%-*s" % (column_width, t) for t in threads)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    shown = 0
    for op in trace:
        if op.thread not in threads:
            continue
        if shown >= max_ops:
            lines.append("  ... (%d more operations)" % (len(trace) - op.index))
            break
        column = threads.index(op.thread)
        marker = ""
        if focus_location and op.is_memory_access:
            if (
                op.location == focus_location
                or field_of_location(op.location) == focus_location
            ):
                marker = " *"
        text = op.render() + marker
        pad = " " * (column_width * column)
        lines.append("%5d %s%s" % (op.index + 1, pad, text))
        shown += 1
    return "\n".join(lines)


def render_task_summary(trace: ExecutionTrace) -> str:
    """One line per asynchronous task: poster, target, span, provenance."""
    lines = [
        "%-28s | %-10s | %-10s | %-13s | %s"
        % ("task", "posted by", "runs on", "ops [beg,end]", "provenance"),
        "-" * 92,
    ]
    infos = sorted(
        (info for info in trace.tasks.values() if info.post_index is not None),
        key=lambda info: info.post_index,
    )
    for info in infos:
        provenance = []
        if info.event:
            provenance.append("event=%s" % info.event)
        if info.is_delayed:
            provenance.append("delay=%dms" % info.delay)
        if info.at_front:
            provenance.append("at-front")
        if info.posted_in_task:
            provenance.append("from task %s" % info.posted_in_task)
        span = (
            "[%s, %s]" % (info.begin_index, info.end_index)
            if info.begin_index is not None
            else "(never ran)"
        )
        lines.append(
            "%-28s | %-10s | %-10s | %-13s | %s"
            % (
                info.name[:28],
                info.poster_thread or "?",
                info.thread or "?",
                span,
                "; ".join(provenance) or "-",
            )
        )
    return "\n".join(lines)


def render_race_context(
    trace: ExecutionTrace,
    hb: HappensBefore,
    location: str,
    context: int = 3,
) -> str:
    """The accesses to one location with surrounding operations and their
    pairwise ordering matrix — the developer's view of a report."""
    accesses = [
        op
        for op in trace.memory_accesses()
        if op.location == location or field_of_location(op.location) == location
    ]
    if not accesses:
        return "no accesses to %s" % location
    lines = ["accesses to %s:" % location]
    for op in accesses:
        task = trace.task_name_of(op.index) or "(no task)"
        lines.append(
            "  op %4d  %-40s in %s" % (op.index, op.render(), task)
        )
    lines.append("")
    lines.append("pairwise happens-before (rows ≺ columns):")
    ids = [op.index for op in accesses]
    header = "        " + " ".join("%6d" % j for j in ids)
    lines.append(header)
    for i in ids:
        row = ["%6d" % i]
        for j in ids:
            if i == j:
                cell = "-"
            elif i < j and hb.ordered(i, j):
                cell = "≺"
            elif j < i and hb.ordered(j, i):
                cell = "≻"
            else:
                cell = "RACE" if trace[i].conflicts_with(trace[j]) else "·"
            row.append("%6s" % cell)
        lines.append(" ".join(row))
    return "\n".join(lines)
