"""Command-line interface: ``droidracer``.

Subcommands mirror the tool's workflow:

* ``droidracer table2`` / ``table3`` / ``performance`` — regenerate the
  paper's evaluation artifacts;
* ``droidracer run <app>`` — run one subject (calibrated synthetic model)
  and print its race report;
* ``droidracer explore <demo-app>`` — systematic UI exploration of a
  hand-written demo app with race detection on every trace;
* ``droidracer analyze <trace.jsonl>`` — offline detection on a trace file;
* ``droidracer corpus ingest|analyze|report`` — the persistent trace
  corpus: content-addressed store, parallel cached batch analysis, and
  corpus-level aggregated race reports;
* ``droidracer serve`` — long-running async HTTP service over the same
  corpus: trace uploads, a durable bounded job queue, a persistent
  worker pool, and report/streaming endpoints (``docs/service.md``);
* ``droidracer obs history|compare|gate|dashboard|suspicion`` — the run-history
  store: list recorded runs, diff two runs span by span, gate on
  correctness/performance drift, render a static HTML dashboard.

Observability (``run``, ``demo``, ``explore``, ``analyze``, ``corpus
analyze``, and the table commands; see ``docs/observability.md``):
``--metrics`` prints a per-span summary table to stderr, ``--trace-out
FILE`` writes Chrome ``trace_event`` JSON for ``chrome://tracing`` /
Perfetto, and ``--json`` reports gain a ``metrics`` block whenever
either flag is active.  ``--history DIR`` (default:
``$DROIDRACER_HISTORY``) appends a structured ``RunRecord`` for the
invocation to a persistent store — with no history dir configured
nothing is written and reports are byte-identical.  Instrumentation
never changes race reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.apps.registry import DEMO_APPS, demo_app, paper_app
from repro.apps.specs import ALL_SPECS, OPEN_SOURCE_SPECS, SPEC_BY_NAME
from repro.bench import (
    render_performance,
    render_table2,
    render_table3,
    run_all,
)
from repro.core import (
    BACKEND_BITMASK,
    BACKEND_CHAINS,
    KERNEL_AUTO,
    KERNEL_PYTHON,
    KERNEL_WORDS,
    TRIAGE_OFF,
    TRIAGE_VC,
    TRIAGES,
    detect_races,
)
from repro.core.trace import ExecutionTrace
from repro.explorer import UIExplorer


#: Default corpus location (relative to the working directory).
DEFAULT_STORE = ".droidracer/corpus"


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-length scale factor (1.0 = the paper's full lengths)",
    )
    parser.add_argument("--seed", type=int, default=5, help="schedule seed")


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=(BACKEND_BITMASK, BACKEND_CHAINS),
        default=BACKEND_BITMASK,
        help="happens-before reachability backend: dense bitmask rows "
        "(default) or the O(n*C) chain index for large traces "
        "(results are identical)",
    )
    parser.add_argument(
        "--closure-workers",
        type=int,
        default=1,
        metavar="N",
        help="saturate closure full sweeps across N forked worker "
        "processes (default 1 = serial; any N yields byte-identical "
        "reports, and platforms without fork fall back to serial)",
    )
    parser.add_argument(
        "--closure-kernel",
        choices=(KERNEL_AUTO, KERNEL_PYTHON, KERNEL_WORDS),
        default=KERNEL_AUTO,
        help="closure row kernel: 'words' = word-batched sweeps (numpy "
        "fast path when installed), 'python' = reference big-int loops, "
        "'auto' (default) = words exactly when numpy is available "
        "(results are identical)",
    )
    parser.add_argument(
        "--no-merge-chains",
        dest="merge_chains",
        action="store_false",
        help="disable the pre-saturation chain-merging pass (chains "
        "backend; results are identical — ablation/debug knob)",
    )
    parser.add_argument(
        "--triage",
        choices=TRIAGES,
        default=TRIAGE_OFF,
        help="linear-time triage tier: 'vc' runs a streaming "
        "vector-clock pass that soundly under-approximates the Android "
        "happens-before relation and skips the closure on traces it "
        "proves race-free; racy traces escalate to the full closure "
        "and report byte-identically (default: %(default)s)",
    )


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        metavar="DIR",
        help="trace corpus directory (default: %(default)s)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect pipeline spans/counters and print a summary table "
        "to stderr (adds a 'metrics' block to --json reports)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the pipeline's span tree as Chrome trace_event JSON "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--history",
        metavar="DIR",
        help="append a RunRecord for this invocation to the run-history "
        "store at DIR (default: $DROIDRACER_HISTORY; unset = no recording)",
    )


def _add_history(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history",
        metavar="DIR",
        help="run-history store directory (default: $DROIDRACER_HISTORY)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="droidracer",
        description="DroidRacer reproduction: race detection for (simulated) Android applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table2", "table3", "performance"):
        p = sub.add_parser(table, help="regenerate %s of the paper" % table)
        p.add_argument(
            "--open-source-only",
            action="store_true",
            help="only the 10 open-source subjects",
        )
        _add_scale(p)
        _add_obs(p)

    p_run = sub.add_parser("run", help="run one calibrated subject")
    p_run.add_argument("app", choices=sorted(SPEC_BY_NAME))
    p_run.add_argument(
        "--save-trace",
        metavar="PATH",
        help="write the generated execution trace as JSONL for offline analysis",
    )
    p_run.add_argument(
        "--json",
        action="store_true",
        help="emit the race report as machine-readable JSON",
    )
    _add_backend(p_run)
    _add_scale(p_run)
    _add_obs(p_run)

    p_demo = sub.add_parser("demo", help="run a hand-written demo app scenario")
    p_demo.add_argument("app", choices=sorted(DEMO_APPS))
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument("--events", nargs="*", default=None, metavar="EVENT",
                        help="event keys to fire (default: every enabled click)")
    p_demo.add_argument("--save-trace", metavar="PATH")
    _add_obs(p_demo)

    p_explore = sub.add_parser("explore", help="systematically explore a demo app")
    p_explore.add_argument("app", choices=sorted(DEMO_APPS))
    p_explore.add_argument(
        "--strategy",
        choices=("dfs", "monkey", "dynodroid", "guided"),
        default="dfs",
        help="exploration strategy: systematic depth-first (default), a "
        "random baseline, or suspiciousness-guided (mines the run "
        "history; see docs/exploration.md)",
    )
    p_explore.add_argument("--depth", type=int, default=2)
    p_explore.add_argument("--seed", type=int, default=0)
    p_explore.add_argument("--max-runs", type=int, default=25)
    p_explore.add_argument(
        "--budget",
        type=int,
        default=4,
        help="events per sequence (monkey/dynodroid/guided strategies)",
    )
    p_explore.add_argument(
        "--sequences",
        type=int,
        default=4,
        help="event sequences to run (monkey/dynodroid/guided strategies)",
    )
    p_explore.add_argument(
        "--store",
        metavar="DIR",
        help="also ingest every generated trace into this corpus store",
    )
    _add_obs(p_explore)

    p_analyze = sub.add_parser("analyze", help="detect races in a trace file (JSONL)")
    p_analyze.add_argument("trace", help="path to a trace in JSONL format")
    p_analyze.add_argument(
        "--explain",
        action="store_true",
        help="print a structured explanation for every reported race",
    )
    p_analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the race report as machine-readable JSON",
    )
    _add_backend(p_analyze)
    _add_obs(p_analyze)

    p_corpus = sub.add_parser(
        "corpus", help="persistent trace corpus: ingest, batch-analyze, report"
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command", required=True)

    p_ingest = corpus_sub.add_parser(
        "ingest", help="store traces (JSONL files or directories) in the corpus"
    )
    p_ingest.add_argument("paths", nargs="+", metavar="PATH")
    _add_store(p_ingest)
    p_ingest.add_argument("--app", help="override app attribution for these traces")
    p_ingest.add_argument(
        "--lenient",
        action="store_true",
        help="skip malformed trace lines (with a warning) instead of failing",
    )

    p_canalyze = corpus_sub.add_parser(
        "analyze", help="run race detection over every stored trace"
    )
    _add_store(p_canalyze)
    p_canalyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: os.cpu_count(); 1 = serial)",
    )
    p_canalyze.add_argument(
        "--no-cache", action="store_true", help="ignore and do not write the result cache"
    )
    p_canalyze.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trace analysis budget; expiry becomes an AnalysisTimeout "
        "error on that trace instead of hanging the batch",
    )
    p_canalyze.add_argument("--json", action="store_true")
    _add_backend(p_canalyze)
    _add_obs(p_canalyze)

    p_creport = corpus_sub.add_parser(
        "report", help="corpus-level aggregated race report (deduplicated)"
    )
    _add_store(p_creport)
    p_creport.add_argument("--jobs", type=int, default=None, metavar="N")
    p_creport.add_argument("--json", action="store_true")
    _add_backend(p_creport)

    p_serve = sub.add_parser(
        "serve",
        help="run the async race-analysis service over a shared corpus",
    )
    _add_store(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: 0 = an ephemeral port, printed at boot)",
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="analysis worker processes (default: os.cpu_count(); "
        "0 = inline, no worker pool)",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        metavar="N",
        help="max queued-not-running jobs before uploads get 429 "
        "(default: %(default)s; 0 = unbounded)",
    )
    p_serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="analysis attempts per job before a worker-death failure "
        "parks it as failed (default: %(default)s)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trace analysis budget (expiry fails the job instead of "
        "wedging a worker)",
    )
    p_serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=None,
        metavar="N",
        help="request body cap (default: 64 MiB)",
    )
    p_serve.add_argument(
        "--history",
        metavar="DIR",
        help="append a RunRecord per completed analysis to the run-history "
        "store at DIR (default: $DROIDRACER_HISTORY; unset = no recording)",
    )
    _add_backend(p_serve)
    p_serve.add_argument(
        "--log-json",
        metavar="PATH",
        help="append structured JSON-lines event records (request ids "
        "correlated to job ids, trace/config digests, active span) to "
        "PATH; '-' logs to stderr",
    )
    p_serve.add_argument(
        "--self-test",
        action="store_true",
        help="boot an ephemeral server against a temp corpus, upload a "
        "known trace, verify the served report against offline analysis, "
        "and exit (used by docs_check and CI)",
    )
    p_serve.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="with --self-test: also save the server's /v1/metrics.json "
        "document to FILE (a snapshot `droidracer obs top --snapshot` "
        "can render)",
    )
    p_serve.add_argument(
        "--no-drain",
        action="store_true",
        help="accept and journal jobs but never dispatch them (queue "
        "inspection / restart-recovery testing)",
    )

    p_obs = sub.add_parser(
        "obs",
        help="observability: history, compare, gate, dashboard, suspicion, "
        "and live `top` over a running service",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_ohistory = obs_sub.add_parser("history", help="list recorded runs")
    _add_history(p_ohistory)
    p_ohistory.add_argument(
        "--command",
        dest="command_filter",
        metavar="CMD",
        help="only runs of this command (run, analyze, corpus.analyze, ...)",
    )
    p_ohistory.add_argument("--app", help="only runs of this app")
    p_ohistory.add_argument(
        "--limit", type=int, default=0, metavar="N", help="newest N runs only"
    )
    p_ohistory.add_argument("--json", action="store_true")
    p_ohistory.add_argument(
        "--export-bench",
        metavar="DIR",
        help="write the BENCH_*.json files to DIR as derived views of the "
        "latest recorded benchmark runs",
    )

    p_ocompare = obs_sub.add_parser(
        "compare", help="span-by-span diff of two recorded runs"
    )
    p_ocompare.add_argument("a", help="run id prefix or 1-based position")
    p_ocompare.add_argument("b", help="run id prefix or 1-based position")
    p_ocompare.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        metavar="FRAC",
        help="wall-time noise band (default: %(default)s = ±20%%)",
    )
    p_ocompare.add_argument("--json", action="store_true")
    _add_history(p_ocompare)

    p_ogate = obs_sub.add_parser(
        "gate",
        help="exit non-zero on correctness drift or performance regression",
    )
    _add_history(p_ogate)
    p_ogate.add_argument(
        "--baseline",
        metavar="DIR",
        help="baseline history store to gate against (default: self-check "
        "the --history store's internal consistency)",
    )
    p_ogate.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        metavar="FRAC",
        help="allowed span slowdown as a fraction (default: %(default)s "
        "= +50%%)",
    )
    p_ogate.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        metavar="S",
        help="ignore spans whose baseline wall time is below S "
        "(default: %(default)s)",
    )
    p_ogate.add_argument("--json", action="store_true")

    p_odash = obs_sub.add_parser(
        "dashboard", help="render the store as a self-contained HTML page"
    )
    _add_history(p_odash)
    p_odash.add_argument(
        "--out",
        default="droidracer-dashboard.html",
        metavar="FILE",
        help="output path (default: %(default)s)",
    )

    p_otop = obs_sub.add_parser(
        "top",
        help="live terminal view of a running service's telemetry "
        "(qps, latency quantiles, queue depth, triage filter rate)",
    )
    p_otop.add_argument(
        "--url",
        metavar="URL",
        help="poll a running service (e.g. http://127.0.0.1:8333)",
    )
    p_otop.add_argument(
        "--snapshot",
        metavar="FILE",
        help="render a saved /v1/metrics.json document instead of polling "
        "(e.g. from `droidracer serve --self-test --metrics-out FILE`)",
    )
    p_otop.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll/redraw interval on a TTY (default: %(default)s)",
    )
    p_otop.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N redraws (default: 0 = until interrupted; "
        "a non-TTY stdout always renders exactly one static snapshot)",
    )

    p_osusp = obs_sub.add_parser(
        "suspicion",
        help="mine the store's per-location suspicion index (the guided "
        "explorer's input)",
    )
    _add_history(p_osusp)
    p_osusp.add_argument("--app", help="only this app's locations")
    p_osusp.add_argument(
        "--limit", type=int, default=10, metavar="N",
        help="top N locations per app (default: %(default)s)",
    )
    p_osusp.add_argument("--json", action="store_true")
    p_osusp.add_argument(
        "--export",
        metavar="DIR",
        help="also write the index as suspicion_index.json under DIR "
        "(the export_suspicion derived view)",
    )

    args = parser.parse_args(argv)

    if args.command == "obs":
        return _obs_main(args)

    metrics = getattr(args, "metrics", False)
    trace_out = getattr(args, "trace_out", None)
    history_dir = None
    if hasattr(args, "metrics"):  # only obs-capable subcommands record
        from repro.obs import resolve_history_dir

        history_dir = resolve_history_dir(getattr(args, "history", None))
    if not (metrics or trace_out or history_dir):
        return _dispatch(args)

    # Observability requested: run the whole command under a real tracer
    # inside one top-level span (so the exported Chrome trace covers the
    # full command wall time), then flush the sinks.  A configured
    # history dir needs the tracer too (RunRecords carry the span
    # aggregates) but adds no sink — stdout/stderr stay untouched until
    # the record is appended.
    from repro.obs import ChromeTraceSink, MemorySink, SummarySink, Tracer, use_tracer

    sinks: list = [MemorySink()]
    if trace_out:
        sinks.append(ChromeTraceSink(trace_out))
    if metrics:
        sinks.append(SummarySink())
    tracer = Tracer(sinks=sinks)
    command = args.command
    if command == "corpus":
        command = "corpus.%s" % args.corpus_command
    if history_dir:
        args._history_notes = []
    with use_tracer(tracer):
        with tracer.span("cli.%s" % command):
            code = _dispatch(args)
    tracer.finish()
    if trace_out:
        print("pipeline trace written to %s" % trace_out, file=sys.stderr)
    if history_dir and code == 0 and getattr(args, "_history_notes", None):
        appended = _record_history(
            history_dir, command, args._history_notes, tracer
        )
        print(
            "history: %d run record(s) appended to %s" % (appended, history_dir),
            file=sys.stderr,
        )
    return code


def _dispatch(args: argparse.Namespace) -> int:
    notes = getattr(args, "_history_notes", None)

    if args.command in ("table2", "table3", "performance"):
        specs = OPEN_SOURCE_SPECS if args.open_source_only else ALL_SPECS
        results = run_all(specs, scale=args.scale, seed=args.seed)
        renderer = {
            "table2": render_table2,
            "table3": render_table3,
            "performance": render_performance,
        }[args.command]
        print(renderer(results))
        if notes is not None:
            from repro.core.race_detector import DetectorConfig

            for result in results:
                notes.append(
                    {
                        "kind": "report",
                        "app": result.spec.name,
                        "trace_name": result.trace.name,
                        "trace_digest": result.trace.canonical_digest(),
                        "report": result.report.to_dict(),
                        "config": DetectorConfig(),
                        "span_root_app": result.spec.name,
                    }
                )
        return 0

    if args.command == "run":
        app = paper_app(args.app, scale=args.scale)
        _, trace = app.run(seed=args.seed)
        if args.save_trace:
            with open(args.save_trace, "w") as handle:
                handle.write(trace.to_jsonl())
            print("trace written to %s (%d operations)" % (args.save_trace, len(trace)))
        triage_extra = None
        if args.triage == TRIAGE_VC:
            vc_report, filtered = _run_triage(trace)
            if filtered:
                return _print_vc_report(vc_report, args)
            triage_extra = _triage_extra(vc_report)
        report = detect_races(
            trace,
            backend=args.backend,
            kernel=args.closure_kernel,
            merge_chains=args.merge_chains,
            closure_workers=args.closure_workers,
        )
        if notes is not None:
            from repro.core.race_detector import DetectorConfig

            notes.append(
                {
                    "kind": "report",
                    "app": args.app,
                    "trace_name": trace.name,
                    "trace_digest": trace.canonical_digest(),
                    "report": report.to_dict(),
                    "config": DetectorConfig(backend=args.backend),
                    "triage": triage_extra,
                }
            )
        if args.json:
            print(_report_json(report, args))
            return 0
        print(report.summary())
        for race in report.races:
            print("  ", race)
        return 0

    if args.command == "demo":
        from repro.explorer import find_event

        app = demo_app(args.app)
        system = app.build(args.seed)
        system.run_to_quiescence()
        if args.events is None:
            events = [
                e for e in system.enabled_events() if e.kind == "click"
            ]
        else:
            events = []
            for key in args.events:
                event = find_event(system.enabled_events(), key)
                if event is None:
                    print("event %r not enabled; available: %s" % (
                        key,
                        ", ".join(e.describe() for e in system.enabled_events()),
                    ))
                    return 1
                events.append(event)
        for event in events:
            system.fire(event)
            system.run_to_quiescence()
        trace = system.finish()
        if args.save_trace:
            with open(args.save_trace, "w") as handle:
                handle.write(trace.to_jsonl())
            print("trace written to %s (%d operations)" % (args.save_trace, len(trace)))
        report = detect_races(trace)
        if notes is not None:
            from repro.core.race_detector import DetectorConfig

            notes.append(
                {
                    "kind": "report",
                    "app": args.app,
                    "trace_name": trace.name,
                    "trace_digest": trace.canonical_digest(),
                    "report": report.to_dict(),
                    "config": DetectorConfig(),
                }
            )
        print(report.summary())
        for race in report.races:
            print("  ", race)
        return 0

    if args.command == "explore":
        return _explore_main(args, notes)

    if args.command == "analyze":
        from repro.core.explain import explain_race
        from repro.core.race_detector import RaceDetector

        try:
            trace = ExecutionTrace.load(args.trace, name=args.trace)
        except (OSError, ValueError) as exc:
            print("cannot load %s: %s" % (args.trace, exc), file=sys.stderr)
            return 1
        triage_extra = None
        if args.triage == TRIAGE_VC:
            vc_report, filtered = _run_triage(trace)
            if filtered:
                return _print_vc_report(vc_report, args)
            triage_extra = _triage_extra(vc_report)
        detector = RaceDetector(
            trace,
            backend=args.backend,
            kernel=args.closure_kernel,
            merge_chains=args.merge_chains,
            closure_workers=args.closure_workers,
        )
        report = detector.detect()
        if notes is not None:
            from repro.core.race_detector import DetectorConfig

            notes.append(
                {
                    "kind": "report",
                    "trace_name": trace.name,
                    "trace_digest": trace.canonical_digest(),
                    "report": report.to_dict(),
                    "config": DetectorConfig(backend=args.backend),
                    "triage": triage_extra,
                }
            )
        if args.json:
            print(_report_json(report, args))
            return 0
        print(report.summary())
        for race in report.races:
            if args.explain:
                print()
                print(explain_race(detector.trace, detector.hb, race).render())
            else:
                print("  ", race)
        return 0

    if args.command == "corpus":
        return _corpus_main(args)

    if args.command == "serve":
        return _serve_main(args)

    return 1


def _explore_main(args: argparse.Namespace, notes) -> int:
    """``droidracer explore``: systematic DFS (the default), the random
    baselines, or suspiciousness-guided exploration.

    Every strategy records the same history shape when ``--history`` is
    set: one combined ``multi`` record whose ``extra["suspicion"]``
    carries the per-trace signal documents the guided explorer mines —
    so a DFS exploration today is the suspicion index a guided
    exploration draws on tomorrow.  Without ``--history`` nothing is
    recorded and output is byte-identical to the pre-feedback CLI.
    """
    from repro.core.race_detector import DetectorConfig, RaceDetector
    from repro.explorer import (
        DynodroidExplorer,
        GuidedExplorer,
        MonkeyExplorer,
        SuspicionIndex,
        signal_document,
    )

    app = demo_app(args.app)
    trace_store = None
    if args.store:
        from repro.corpus import TraceStore

        trace_store = TraceStore(args.store)

    entries: List[dict] = []
    suspicion_docs: List[dict] = []
    exploration_extra: Optional[dict] = None

    def _collect(trace, detector, report, events) -> None:
        """Per-trace bookkeeping shared by all strategies (history notes
        are only assembled when recording is on)."""
        if notes is None:
            return
        entries.append(
            {
                "trace_digest": trace.canonical_digest(),
                "report": report.to_dict(),
            }
        )
        suspicion_docs.append(
            signal_document(args.app, trace, detector.hb, report, events=events)
        )

    if args.strategy == "dfs":
        explorer = UIExplorer(
            app,
            depth=args.depth,
            seed=args.seed,
            max_runs=args.max_runs,
            trace_store=trace_store,
        )
        result = explorer.explore()
        print(
            "%s: %d runs at depth <= %d" % (args.app, result.runs_executed, args.depth)
        )
        if trace_store is not None:
            print(
                "corpus %s now holds %d trace(s)" % (args.store, len(trace_store))
            )
        for run in result.store.runs:
            detector = RaceDetector(run.trace)
            report = detector.detect()
            _collect(run.trace, detector, report, run.sequence)
            print("  %s -> %s" % (run.describe(), report.summary()))
            for race in report.races:
                print("      ", race)

    elif args.strategy in ("monkey", "dynodroid"):
        explorer_cls = (
            MonkeyExplorer if args.strategy == "monkey" else DynodroidExplorer
        )
        races = set()
        first_race_at = None
        sessions = 0
        for s in range(args.sequences):
            run = explorer_cls(app, budget=args.budget, seed=args.seed + s).run()
            sessions += 1
            if trace_store is not None:
                trace_store.ingest(run.trace, app=app.name)
            detector = RaceDetector(run.trace)
            report = detector.detect()
            _collect(run.trace, detector, report, run.events_fired)
            new = [
                (race.location, race.category.value)
                for race in report.races
                if (race.location, race.category.value) not in races
            ]
            races.update(new)
            if new and first_race_at is None:
                first_race_at = sessions
            print(
                "  #%d [%s] -> %s (%d new)"
                % (sessions, " -> ".join(run.events_fired) or "<empty>",
                   report.summary(), len(new))
            )
        print(
            "%s/%s: %d distinct races over %d sequences"
            % (args.app, args.strategy, len(races), sessions)
        )
        exploration_extra = {
            "strategy": args.strategy,
            "budget": args.budget,
            "sequences": sessions,
            "seed": args.seed,
            "races_found": len(races),
            "sequences_to_first_race": first_race_at,
            "races_per_100_sequences": (
                round(100.0 * len(races) / sessions, 4) if sessions else 0.0
            ),
        }

    else:  # guided
        from repro.obs import resolve_history_dir

        history_dir = resolve_history_dir(getattr(args, "history", None))
        index = SuspicionIndex()
        if history_dir:
            from repro.obs import HistoryStore

            store = HistoryStore(history_dir)
            if store.exists():
                index = SuspicionIndex.mine(store.records(), app=args.app)
        locations = len(index.signals(args.app))
        if locations:
            print(
                "suspicion index: %d scored location(s) for %s (history: %s)"
                % (locations, args.app, history_dir)
            )
        else:
            print(
                "suspicion index is empty for %s — guided exploration "
                "degrades to seeded-random" % args.app
            )
        explorer = GuidedExplorer(
            app,
            index=index,
            budget=args.budget,
            sequences=args.sequences,
            seed=args.seed,
            history_ref=history_dir,
        )
        result = explorer.run()
        for session in result.sessions:
            if trace_store is not None:
                trace_store.ingest(session.trace, app=app.name)
            if notes is not None:
                # The explorer analyzed each session as it ran; reuse its
                # report and signal document instead of re-deriving them.
                entries.append(
                    {
                        "trace_digest": session.trace.canonical_digest(),
                        "report": session.report.to_dict(),
                    }
                )
                suspicion_docs.append(session.signals)
            print(
                "  #%d %-7s [%s] -> %s (%d new, %d near-miss)"
                % (
                    session.index + 1,
                    session.kind,
                    " -> ".join(session.sequence) or "<empty>",
                    session.report.summary(),
                    len(session.new_races),
                    session.near_misses,
                )
            )
        print(result.describe())
        exploration_extra = {
            "strategy": "guided",
            "budget": args.budget,
            "sequences": result.sequence_count,
            "seed": args.seed,
            "history_ref": history_dir,
            "index_locations": locations,
            "races_found": len(result.races),
            "sequences_to_first_race": result.sequences_to_first_race,
            "races_per_100_sequences": round(
                result.races_per_100_sequences(), 4
            ),
        }
        if trace_store is not None:
            print(
                "corpus %s now holds %d trace(s)" % (args.store, len(trace_store))
            )

    if notes is not None and entries:
        from repro.core.race_detector import DetectorConfig

        note = {
            "kind": "multi",
            "app": args.app,
            "entries": entries,
            "config": DetectorConfig(),
            "suspicion": suspicion_docs,
        }
        if exploration_extra is not None:
            note["exploration"] = exploration_extra
        notes.append(note)
    return 0


def _want_metrics_block(args: argparse.Namespace) -> bool:
    """The ``metrics`` block rides in ``--json`` reports only when the
    user explicitly asked for instrumentation output.  ``--history``
    alone also runs under a tracer, but recording a run must keep the
    report byte-identical — the history store is a side channel, not a
    report change."""
    return bool(
        getattr(args, "metrics", False) or getattr(args, "trace_out", None)
    )


def _report_json(report, args: argparse.Namespace) -> str:
    """One trace's report as JSON — byte-identical to the historical
    ``report_to_json`` output unless ``--metrics``/``--trace-out`` is
    on, in which case a ``metrics`` block (span/counter aggregates) is
    added."""
    from repro.corpus import report_to_json
    from repro.obs import current_tracer

    if not _want_metrics_block(args) or not current_tracer().enabled:
        return report_to_json(report)
    payload = dict(report.to_dict(), metrics=current_tracer().metrics_dict())
    return json.dumps(payload, indent=2, sort_keys=True)


def _run_triage(trace):
    """The vc triage pass for single-trace commands: returns the
    :class:`VCReport` and whether the trace was proven race-free (in
    which case the closure is skipped entirely).  On escalation a note
    goes to stderr so stdout stays byte-identical to a triage-off run."""
    from repro.core import triage_races
    from repro.obs import current_tracer

    vc_report = triage_races(trace)
    filtered = not vc_report.races
    current_tracer().count("triage.filtered" if filtered else "triage.escalated")
    if not filtered:
        print(
            "triage: vc found %d race(s) in %s — escalating to the full closure"
            % (len(vc_report.races), vc_report.trace_name),
            file=sys.stderr,
        )
    return vc_report, filtered


def _triage_extra(vc_report) -> dict:
    """Triage summary attached to history records of escalated runs."""
    return {
        "mode": TRIAGE_VC,
        "verdict": "escalated",
        "vc_races": len(vc_report.races),
        "racy_locations": vc_report.racy_locations(),
        "seconds": vc_report.analysis_seconds,
    }


def _print_vc_report(vc_report, args) -> int:
    """Render a filtered (race-free) triage verdict.  ``--json`` emits
    the vc report dict — same envelope discipline as ``RaceReport``
    JSON, including the opt-in ``metrics`` block."""
    if getattr(args, "json", False):
        from repro.obs import current_tracer

        payload = dict(
            vc_report.to_dict(), triage={"mode": TRIAGE_VC, "verdict": "filtered"}
        )
        if _want_metrics_block(args) and current_tracer().enabled:
            payload["metrics"] = current_tracer().metrics_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        "%s: race-free by vc triage in %.3fs — closure skipped "
        "(%d locations checked, %d dangling joins, %d orphan begins)"
        % (
            vc_report.trace_name,
            vc_report.analysis_seconds,
            vc_report.locations_checked,
            vc_report.dangling_joins,
            vc_report.orphan_begins,
        )
    )
    return 0


def _corpus_main(args: argparse.Namespace) -> int:
    from repro.core.race_detector import DetectorConfig
    from repro.corpus import (
        BatchAnalyzer,
        ResultCache,
        TraceStore,
        aggregate,
        corpus_report_to_json,
    )

    store = TraceStore(args.store)

    if args.corpus_command == "ingest":
        try:
            entries = []
            for path in args.paths:
                entries.extend(
                    store.ingest(path, app=args.app, strict=not args.lenient)
                )
        except (OSError, ValueError) as exc:
            print("ingest failed: %s" % exc, file=sys.stderr)
            return 1
        print(
            "%d trace(s) ingested; corpus %s now holds %d"
            % (len(entries), args.store, len(store))
        )
        for entry in entries:
            print("  %s" % entry.describe())
        return 0

    if len(store) == 0:
        print(
            "corpus %s is empty — ingest traces first "
            "(droidracer corpus ingest, run --save-trace, explore --store)"
            % args.store,
            file=sys.stderr,
        )
        return 1

    use_cache = not getattr(args, "no_cache", False)
    cache = ResultCache(args.store) if use_cache else None
    config = DetectorConfig(
        backend=args.backend,
        kernel=args.closure_kernel,
        merge_chains=args.merge_chains,
        closure_workers=args.closure_workers,
        triage=args.triage,
    )
    analyzer = BatchAnalyzer(
        store,
        cache=cache,
        jobs=args.jobs,
        config=config,
        timeout=getattr(args, "timeout", None),
    )
    batch = analyzer.analyze()
    corpus_report = aggregate(batch)

    notes = getattr(args, "_history_notes", None)
    if notes is not None and args.corpus_command == "analyze":
        entries = [
            {
                "trace_digest": result.entry.digest,
                "report": result.report.to_dict(),
            }
            for result in batch.results
            if result.report is not None
        ]
        if entries:
            note = {"kind": "multi", "entries": entries, "config": config}
            if config.triage != TRIAGE_OFF:
                note["triage"] = {
                    "mode": config.triage,
                    "filtered": batch.triage_filtered,
                    "escalated": batch.triage_escalated,
                }
            notes.append(note)

    if args.corpus_command == "analyze":
        if args.json:
            from repro.obs import current_tracer

            payload = corpus_report.to_dict()
            if _want_metrics_block(args) and current_tracer().enabled:
                payload["metrics"] = current_tracer().metrics_dict()
            payload["traces"] = [
                {
                    "digest": result.entry.digest,
                    "name": result.entry.name,
                    "app": result.entry.app,
                    "cached": result.cached,
                    "error": result.error,
                    "filtered": result.filtered,
                    "triage": result.triage,
                    "report": result.report.to_dict() if result.report else None,
                }
                for result in batch.results
            ]
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for result in batch.results:
                print("  %s" % result.describe())
            print(batch.summary())
        return 0

    # corpus report
    if args.json:
        print(corpus_report_to_json(corpus_report))
    else:
        print(corpus_report.render())
    return 0


def _serve_main(args: argparse.Namespace) -> int:
    from repro.core.race_detector import DetectorConfig
    from repro.obs import resolve_history_dir

    config = DetectorConfig(
        backend=args.backend,
        kernel=args.closure_kernel,
        merge_chains=args.merge_chains,
        closure_workers=args.closure_workers,
        triage=args.triage,
    )
    history_dir = resolve_history_dir(getattr(args, "history", None))

    if args.self_test:
        return _serve_self_test(
            config,
            history_dir,
            metrics_out=getattr(args, "metrics_out", None),
            log_json=getattr(args, "log_json", None),
        )

    import asyncio
    import signal

    from repro.service import RaceService
    from repro.service.http import DEFAULT_MAX_BODY_BYTES

    service = RaceService(
        store_root=args.store,
        config=config,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        max_attempts=args.max_attempts,
        timeout=args.timeout,
        history_dir=history_dir,
        drain=not args.no_drain,
        max_body_bytes=args.max_body_bytes or DEFAULT_MAX_BODY_BYTES,
        log_json=args.log_json,
    )

    async def _amain() -> None:
        await service.start()
        print(
            "droidracer serve listening on http://%s:%d "
            "(store: %s, config: %s, workers: %s%s)"
            % (
                service.host,
                service.port,
                args.store,
                service.config_digest[:12],
                service.jobs if service.jobs > 0 else "inline",
                ", DRAINING DISABLED" if args.no_drain else "",
            ),
            flush=True,
        )
        if service.queue.recovered:
            print(
                "recovered %d unfinished job(s) from the journal"
                % service.queue.recovered,
                flush=True,
            )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.request_stop)
            except (NotImplementedError, ValueError):
                pass
        await service.serve_forever()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    return 0


def _serve_self_test(
    config,
    history_dir: Optional[str],
    metrics_out: Optional[str] = None,
    log_json: Optional[str] = None,
) -> int:
    """Boot an ephemeral server on a temp corpus, drive one trace
    through the full upload → analyze → report → stream path over a
    real socket, and verify the served report against in-process
    detection.  The runnable ``serve`` example for docs_check and CI.
    ``metrics_out`` saves the server's ``/v1/metrics.json`` document —
    a snapshot ``droidracer obs top --snapshot`` can render offline."""
    import tempfile

    from repro.apps.paper_traces import figure4_trace
    from repro.obs import report_digest
    from repro.service import BackgroundServer, ServiceClient

    trace = figure4_trace()
    with tempfile.TemporaryDirectory(prefix="droidracer-selftest-") as tmp:
        with BackgroundServer(
            store_root=tmp,
            config=config,
            jobs=0,
            queue_depth=8,
            history_dir=history_dir,
            log_json=log_json,
        ) as server:
            client = ServiceClient(server.base_url)
            payload = client.upload(
                trace.to_jsonl(), name=trace.name, compress=True
            )
            job = client.wait(payload["job"]["job_id"], timeout=60)
            if job["state"] != "done":
                print(
                    "serve self-test FAILED: job ended %s (%s)"
                    % (job["state"], job.get("error")),
                    file=sys.stderr,
                )
                return 1
            served = client.report(payload["trace_digest"])
            offline = config.build_detector(trace).detect().to_dict()
            if report_digest(served) != report_digest(offline):
                print(
                    "serve self-test FAILED: served report digest differs "
                    "from offline analysis",
                    file=sys.stderr,
                )
                return 1
            events = list(client.stream(after=0, max_events=1, timeout=10))
            if not events or events[0]["job"]["state"] != "done":
                print(
                    "serve self-test FAILED: no completion event on /v1/stream",
                    file=sys.stderr,
                )
                return 1
            if metrics_out:
                doc = client.metrics_json()
                with open(metrics_out, "w", encoding="utf-8") as handle:
                    json.dump(doc, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                print("metrics snapshot written to %s" % metrics_out)
            print(
                "serve self-test OK: %s analyzed over HTTP "
                "(%d races, report digest matches offline analysis)"
                % (trace.name, job["race_count"])
            )
    return 0


def _per_category(reports: List[dict]) -> dict:
    counts: dict = {}
    for report in reports:
        for race in report.get("races", ()):
            category = race.get("category", "?")
            counts[category] = counts.get(category, 0) + 1
    return counts


def _record_history(history_dir: str, command: str, notes, tracer) -> int:
    """Turn the dispatch's history notes into appended ``RunRecord``\\ s.

    Single-report commands (``run``, ``demo``, ``analyze``) get one
    record carrying the whole run's span aggregates and counters;
    table commands get one record per app with that app's ``bench.app``
    span subtree; multi-trace commands (``explore``,
    ``corpus.analyze``) get one combined record whose digests are
    order-independent combinations of the per-trace digests.
    """
    from repro.core.happens_before import SAT_INCREMENTAL
    from repro.core.race_detector import ENUM_BATCHED
    from repro.obs import (
        HistoryStore,
        RunRecord,
        aggregate_spans,
        combine_digests,
        report_digest,
        subtree_spans,
    )

    store = HistoryStore(history_dir)
    all_spans = tracer.spans
    full_rows = aggregate_spans(all_spans)
    per_app = sum(1 for note in notes if note["kind"] == "report") > 1
    appended = 0
    for note in notes:
        config = note["config"]
        extra = {"triage": note["triage"]} if note.get("triage") else {}
        # Feedback-loop payloads: per-trace suspicion signal documents
        # (what SuspicionIndex.mine consumes) and the exploration
        # summary (what the dashboard's strategy panel charts).
        for key in ("suspicion", "exploration"):
            if note.get(key):
                extra[key] = note[key]
        if note["kind"] == "multi":
            entries = note["entries"]
            reports = [entry["report"] for entry in entries]
            record = RunRecord(
                command=command,
                trace_digest=combine_digests(
                    entry["trace_digest"] for entry in entries
                ),
                config_digest=config.digest(),
                app=note.get("app"),
                trace_count=len(entries),
                trace_length=sum(r["trace_length"] for r in reports),
                backend=config.backend,
                saturation=SAT_INCREMENTAL,
                enumeration=ENUM_BATCHED,
                coalesce=config.coalesce,
                report_digest=combine_digests(
                    "%s:%s" % (entry["trace_digest"], report_digest(entry["report"]))
                    for entry in entries
                ),
                race_count=sum(len(r["races"]) for r in reports),
                racy_pairs=sum(r["racy_pair_count"] for r in reports),
                per_category=_per_category(reports),
                spans=full_rows,
                counters=dict(tracer.counters),
                gauges=dict(tracer.gauges),
                extra=extra,
            )
        else:
            report = note["report"]
            closure = dict(report.get("closure") or {})
            closure["nodes"] = report["node_count"]
            closure["reduction_ratio"] = report["reduction_ratio"]
            rows = full_rows
            counters = dict(tracer.counters)
            gauges = dict(tracer.gauges)
            if per_app:
                # A table run analyzes many apps under one tracer:
                # attribute only this app's bench.app subtree, and skip
                # the run-wide counters (they would repeat per record).
                root = next(
                    (
                        s
                        for s in all_spans
                        if s.name == "bench.app"
                        and s.attrs.get("app") == note.get("span_root_app")
                    ),
                    None,
                )
                rows = (
                    aggregate_spans(subtree_spans(all_spans, root.span_id))
                    if root is not None
                    else []
                )
                counters, gauges = {}, {}
            record = RunRecord(
                command=command,
                trace_digest=note["trace_digest"],
                config_digest=config.digest(),
                app=note.get("app"),
                trace_name=note.get("trace_name"),
                trace_count=1,
                trace_length=report["trace_length"],
                backend=config.backend,
                saturation=SAT_INCREMENTAL,
                enumeration=ENUM_BATCHED,
                coalesce=config.coalesce,
                closure=closure,
                report_digest=report_digest(report),
                race_count=len(report["races"]),
                racy_pairs=report["racy_pair_count"],
                per_category=_per_category([report]),
                spans=rows,
                counters=counters,
                gauges=gauges,
                extra=extra,
            )
        store.append(record)
        appended += 1
    return appended


def _obs_main(args: argparse.Namespace) -> int:
    """The ``droidracer obs`` subcommand family (read-only over the
    store, except ``dashboard``/``--export-bench`` which write derived
    views)."""
    from repro.obs import (
        HistoryStore,
        compare,
        export_bench,
        gate,
        resolve_history_dir,
        write_dashboard,
    )
    from repro.obs.history import RunRecordError

    if args.obs_command == "top":
        # Live telemetry, not the history store: no --history required.
        from repro.obs.top import run_top

        if bool(args.url) == bool(args.snapshot):
            print(
                "obs top: pass exactly one of --url or --snapshot",
                file=sys.stderr,
            )
            return 1
        return run_top(
            url=args.url,
            snapshot=args.snapshot,
            interval=args.interval,
            iterations=args.iterations,
        )

    history_dir = resolve_history_dir(getattr(args, "history", None))
    if not history_dir:
        print(
            "no history store configured: pass --history DIR or set "
            "$DROIDRACER_HISTORY",
            file=sys.stderr,
        )
        return 1
    store = HistoryStore(history_dir)

    if args.obs_command == "history":
        if args.export_bench:
            written = export_bench(store, args.export_bench)
            for path in written:
                print("wrote %s" % path)
            if not written:
                print(
                    "no benchmark runs recorded in %s — run "
                    "benchmarks/bench_closure.py with the history dir set"
                    % history_dir,
                    file=sys.stderr,
                )
                return 1
            return 0
        records = store.records(
            command=getattr(args, "command_filter", None), app=args.app
        )
        if args.limit:
            records = records[-args.limit :]
        if args.json:
            print(
                json.dumps(
                    [record.to_dict() for record in records],
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        if not records:
            print("history %s holds no matching runs" % history_dir)
            return 0
        print(
            "%-13s %-16s %-24s %-8s %s"
            % ("run", "command", "subject", "backend", "races")
        )
        for record in records:
            print(record.describe())
        return 0

    if args.obs_command == "compare":
        try:
            base = store.resolve(args.a)
            current = store.resolve(args.b)
        except RunRecordError as exc:
            print("obs compare: %s" % exc, file=sys.stderr)
            return 1
        comparison = compare(base, current, tolerance=args.tolerance)
        if args.json:
            print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
        else:
            print(comparison.render())
        return 0

    if args.obs_command == "gate":
        current = store.records()
        if not current:
            print("history %s is empty" % history_dir, file=sys.stderr)
            return 1
        baseline_records = None
        if args.baseline:
            baseline_store = HistoryStore(args.baseline)
            baseline_records = baseline_store.records()
            if not baseline_records:
                print(
                    "baseline store %s is empty" % args.baseline, file=sys.stderr
                )
                return 1
        result = gate(
            current,
            baseline_records,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
        )
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        else:
            print(result.render())
        return 0 if result.ok else 1

    if args.obs_command == "dashboard":
        count = write_dashboard(store, args.out)
        print("dashboard with %d run(s) written to %s" % (count, args.out))
        return 0

    if args.obs_command == "suspicion":
        from repro.explorer import SuspicionIndex
        from repro.obs import export_suspicion

        index = SuspicionIndex.mine(store.records(), app=args.app)
        if index.is_empty(args.app):
            print(
                "no suspicion signals recorded in %s — run "
                "`droidracer explore --history %s` (any strategy) first"
                % (history_dir, history_dir),
                file=sys.stderr,
            )
            return 1
        if args.json:
            print(json.dumps(index.to_dict(), indent=2, sort_keys=True))
        else:
            print(index.render(app=args.app, limit=args.limit))
        if args.export:
            path = export_suspicion(store, args.export, app=args.app)
            print("suspicion index written to %s" % path)
        return 0

    return 1


if __name__ == "__main__":
    sys.exit(main())
