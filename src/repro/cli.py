"""Command-line interface: ``droidracer``.

Subcommands mirror the tool's workflow:

* ``droidracer table2`` / ``table3`` / ``performance`` — regenerate the
  paper's evaluation artifacts;
* ``droidracer run <app>`` — run one subject (calibrated synthetic model)
  and print its race report;
* ``droidracer explore <demo-app>`` — systematic UI exploration of a
  hand-written demo app with race detection on every trace;
* ``droidracer analyze <trace.jsonl>`` — offline detection on a trace file;
* ``droidracer corpus ingest|analyze|report`` — the persistent trace
  corpus: content-addressed store, parallel cached batch analysis, and
  corpus-level aggregated race reports.

Observability (``run``, ``analyze``, ``corpus analyze``; see
``docs/observability.md``): ``--metrics`` prints a per-span summary
table to stderr, ``--trace-out FILE`` writes Chrome ``trace_event``
JSON for ``chrome://tracing`` / Perfetto, and ``--json`` reports gain a
``metrics`` block whenever either flag is active.  Instrumentation
never changes race reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.apps.registry import DEMO_APPS, demo_app, paper_app
from repro.apps.specs import ALL_SPECS, OPEN_SOURCE_SPECS, SPEC_BY_NAME
from repro.bench import (
    render_performance,
    render_table2,
    render_table3,
    run_all,
)
from repro.core import BACKEND_BITMASK, BACKEND_CHAINS, detect_races
from repro.core.trace import ExecutionTrace
from repro.explorer import UIExplorer


#: Default corpus location (relative to the working directory).
DEFAULT_STORE = ".droidracer/corpus"


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-length scale factor (1.0 = the paper's full lengths)",
    )
    parser.add_argument("--seed", type=int, default=5, help="schedule seed")


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=(BACKEND_BITMASK, BACKEND_CHAINS),
        default=BACKEND_BITMASK,
        help="happens-before reachability backend: dense bitmask rows "
        "(default) or the O(n*C) chain index for large traces "
        "(results are identical)",
    )


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        metavar="DIR",
        help="trace corpus directory (default: %(default)s)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect pipeline spans/counters and print a summary table "
        "to stderr (adds a 'metrics' block to --json reports)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the pipeline's span tree as Chrome trace_event JSON "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="droidracer",
        description="DroidRacer reproduction: race detection for (simulated) Android applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table2", "table3", "performance"):
        p = sub.add_parser(table, help="regenerate %s of the paper" % table)
        p.add_argument(
            "--open-source-only",
            action="store_true",
            help="only the 10 open-source subjects",
        )
        _add_scale(p)

    p_run = sub.add_parser("run", help="run one calibrated subject")
    p_run.add_argument("app", choices=sorted(SPEC_BY_NAME))
    p_run.add_argument(
        "--save-trace",
        metavar="PATH",
        help="write the generated execution trace as JSONL for offline analysis",
    )
    p_run.add_argument(
        "--json",
        action="store_true",
        help="emit the race report as machine-readable JSON",
    )
    _add_backend(p_run)
    _add_scale(p_run)
    _add_obs(p_run)

    p_demo = sub.add_parser("demo", help="run a hand-written demo app scenario")
    p_demo.add_argument("app", choices=sorted(DEMO_APPS))
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument("--events", nargs="*", default=None, metavar="EVENT",
                        help="event keys to fire (default: every enabled click)")
    p_demo.add_argument("--save-trace", metavar="PATH")

    p_explore = sub.add_parser("explore", help="systematically explore a demo app")
    p_explore.add_argument("app", choices=sorted(DEMO_APPS))
    p_explore.add_argument("--depth", type=int, default=2)
    p_explore.add_argument("--seed", type=int, default=0)
    p_explore.add_argument("--max-runs", type=int, default=25)
    p_explore.add_argument(
        "--store",
        metavar="DIR",
        help="also ingest every generated trace into this corpus store",
    )

    p_analyze = sub.add_parser("analyze", help="detect races in a trace file (JSONL)")
    p_analyze.add_argument("trace", help="path to a trace in JSONL format")
    p_analyze.add_argument(
        "--explain",
        action="store_true",
        help="print a structured explanation for every reported race",
    )
    p_analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the race report as machine-readable JSON",
    )
    _add_backend(p_analyze)
    _add_obs(p_analyze)

    p_corpus = sub.add_parser(
        "corpus", help="persistent trace corpus: ingest, batch-analyze, report"
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command", required=True)

    p_ingest = corpus_sub.add_parser(
        "ingest", help="store traces (JSONL files or directories) in the corpus"
    )
    p_ingest.add_argument("paths", nargs="+", metavar="PATH")
    _add_store(p_ingest)
    p_ingest.add_argument("--app", help="override app attribution for these traces")
    p_ingest.add_argument(
        "--lenient",
        action="store_true",
        help="skip malformed trace lines (with a warning) instead of failing",
    )

    p_canalyze = corpus_sub.add_parser(
        "analyze", help="run race detection over every stored trace"
    )
    _add_store(p_canalyze)
    p_canalyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: os.cpu_count(); 1 = serial)",
    )
    p_canalyze.add_argument(
        "--no-cache", action="store_true", help="ignore and do not write the result cache"
    )
    p_canalyze.add_argument("--json", action="store_true")
    _add_backend(p_canalyze)
    _add_obs(p_canalyze)

    p_creport = corpus_sub.add_parser(
        "report", help="corpus-level aggregated race report (deduplicated)"
    )
    _add_store(p_creport)
    p_creport.add_argument("--jobs", type=int, default=None, metavar="N")
    p_creport.add_argument("--json", action="store_true")
    _add_backend(p_creport)

    args = parser.parse_args(argv)

    metrics = getattr(args, "metrics", False)
    trace_out = getattr(args, "trace_out", None)
    if not (metrics or trace_out):
        return _dispatch(args)

    # Observability requested: run the whole command under a real tracer
    # inside one top-level span (so the exported Chrome trace covers the
    # full command wall time), then flush the sinks.
    from repro.obs import ChromeTraceSink, MemorySink, SummarySink, Tracer, use_tracer

    sinks: list = [MemorySink()]
    if trace_out:
        sinks.append(ChromeTraceSink(trace_out))
    if metrics:
        sinks.append(SummarySink())
    tracer = Tracer(sinks=sinks)
    command = args.command
    if command == "corpus":
        command = "corpus.%s" % args.corpus_command
    with use_tracer(tracer):
        with tracer.span("cli.%s" % command):
            code = _dispatch(args)
    tracer.finish()
    if trace_out:
        print("pipeline trace written to %s" % trace_out, file=sys.stderr)
    return code


def _dispatch(args: argparse.Namespace) -> int:
    if args.command in ("table2", "table3", "performance"):
        specs = OPEN_SOURCE_SPECS if args.open_source_only else ALL_SPECS
        results = run_all(specs, scale=args.scale, seed=args.seed)
        renderer = {
            "table2": render_table2,
            "table3": render_table3,
            "performance": render_performance,
        }[args.command]
        print(renderer(results))
        return 0

    if args.command == "run":
        app = paper_app(args.app, scale=args.scale)
        _, trace = app.run(seed=args.seed)
        if args.save_trace:
            with open(args.save_trace, "w") as handle:
                handle.write(trace.to_jsonl())
            print("trace written to %s (%d operations)" % (args.save_trace, len(trace)))
        report = detect_races(trace, backend=args.backend)
        if args.json:
            print(_report_json(report))
            return 0
        print(report.summary())
        for race in report.races:
            print("  ", race)
        return 0

    if args.command == "demo":
        from repro.explorer import find_event

        app = demo_app(args.app)
        system = app.build(args.seed)
        system.run_to_quiescence()
        if args.events is None:
            events = [
                e for e in system.enabled_events() if e.kind == "click"
            ]
        else:
            events = []
            for key in args.events:
                event = find_event(system.enabled_events(), key)
                if event is None:
                    print("event %r not enabled; available: %s" % (
                        key,
                        ", ".join(e.describe() for e in system.enabled_events()),
                    ))
                    return 1
                events.append(event)
        for event in events:
            system.fire(event)
            system.run_to_quiescence()
        trace = system.finish()
        if args.save_trace:
            with open(args.save_trace, "w") as handle:
                handle.write(trace.to_jsonl())
            print("trace written to %s (%d operations)" % (args.save_trace, len(trace)))
        report = detect_races(trace)
        print(report.summary())
        for race in report.races:
            print("  ", race)
        return 0

    if args.command == "explore":
        trace_store = None
        if args.store:
            from repro.corpus import TraceStore

            trace_store = TraceStore(args.store)
        explorer = UIExplorer(
            demo_app(args.app),
            depth=args.depth,
            seed=args.seed,
            max_runs=args.max_runs,
            trace_store=trace_store,
        )
        result = explorer.explore()
        print(
            "%s: %d runs at depth <= %d" % (args.app, result.runs_executed, args.depth)
        )
        if trace_store is not None:
            print(
                "corpus %s now holds %d trace(s)" % (args.store, len(trace_store))
            )
        for run in result.store.runs:
            report = detect_races(run.trace)
            print("  %s -> %s" % (run.describe(), report.summary()))
            for race in report.races:
                print("      ", race)
        return 0

    if args.command == "analyze":
        from repro.core.explain import explain_race
        from repro.core.race_detector import RaceDetector

        try:
            trace = ExecutionTrace.load(args.trace, name=args.trace)
        except (OSError, ValueError) as exc:
            print("cannot load %s: %s" % (args.trace, exc), file=sys.stderr)
            return 1
        detector = RaceDetector(trace, backend=args.backend)
        report = detector.detect()
        if args.json:
            print(_report_json(report))
            return 0
        print(report.summary())
        for race in report.races:
            if args.explain:
                print()
                print(explain_race(detector.trace, detector.hb, race).render())
            else:
                print("  ", race)
        return 0

    if args.command == "corpus":
        return _corpus_main(args)

    return 1


def _report_json(report) -> str:
    """One trace's report as JSON — byte-identical to the historical
    ``report_to_json`` output unless observability is on, in which case a
    ``metrics`` block (span/counter aggregates) is added."""
    from repro.corpus import report_to_json
    from repro.obs import current_tracer

    tracer = current_tracer()
    if not tracer.enabled:
        return report_to_json(report)
    payload = dict(report.to_dict(), metrics=tracer.metrics_dict())
    return json.dumps(payload, indent=2, sort_keys=True)


def _corpus_main(args: argparse.Namespace) -> int:
    from repro.core.race_detector import DetectorConfig
    from repro.corpus import (
        BatchAnalyzer,
        ResultCache,
        TraceStore,
        aggregate,
        corpus_report_to_json,
    )

    store = TraceStore(args.store)

    if args.corpus_command == "ingest":
        try:
            entries = []
            for path in args.paths:
                entries.extend(
                    store.ingest(path, app=args.app, strict=not args.lenient)
                )
        except (OSError, ValueError) as exc:
            print("ingest failed: %s" % exc, file=sys.stderr)
            return 1
        print(
            "%d trace(s) ingested; corpus %s now holds %d"
            % (len(entries), args.store, len(store))
        )
        for entry in entries:
            print("  %s" % entry.describe())
        return 0

    if len(store) == 0:
        print(
            "corpus %s is empty — ingest traces first "
            "(droidracer corpus ingest, run --save-trace, explore --store)"
            % args.store,
            file=sys.stderr,
        )
        return 1

    use_cache = not getattr(args, "no_cache", False)
    cache = ResultCache(args.store) if use_cache else None
    config = DetectorConfig(backend=args.backend)
    analyzer = BatchAnalyzer(store, cache=cache, jobs=args.jobs, config=config)
    batch = analyzer.analyze()
    corpus_report = aggregate(batch)

    if args.corpus_command == "analyze":
        if args.json:
            from repro.obs import current_tracer

            payload = corpus_report.to_dict()
            if current_tracer().enabled:
                payload["metrics"] = current_tracer().metrics_dict()
            payload["traces"] = [
                {
                    "digest": result.entry.digest,
                    "name": result.entry.name,
                    "app": result.entry.app,
                    "cached": result.cached,
                    "error": result.error,
                    "report": result.report.to_dict() if result.report else None,
                }
                for result in batch.results
            ]
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for result in batch.results:
                print("  %s" % result.describe())
            print(batch.summary())
        return 0

    # corpus report
    if args.json:
        print(corpus_report_to_json(corpus_report))
    else:
        print(corpus_report.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
