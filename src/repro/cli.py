"""Command-line interface: ``droidracer``.

Subcommands mirror the tool's workflow:

* ``droidracer table2`` / ``table3`` / ``performance`` — regenerate the
  paper's evaluation artifacts;
* ``droidracer run <app>`` — run one subject (calibrated synthetic model)
  and print its race report;
* ``droidracer explore <demo-app>`` — systematic UI exploration of a
  hand-written demo app with race detection on every trace;
* ``droidracer analyze <trace.jsonl>`` — offline detection on a trace file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.registry import DEMO_APPS, demo_app, paper_app
from repro.apps.specs import ALL_SPECS, OPEN_SOURCE_SPECS, SPEC_BY_NAME
from repro.bench import (
    render_performance,
    render_table2,
    render_table3,
    run_all,
)
from repro.core import detect_races
from repro.core.trace import ExecutionTrace
from repro.explorer import UIExplorer


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-length scale factor (1.0 = the paper's full lengths)",
    )
    parser.add_argument("--seed", type=int, default=5, help="schedule seed")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="droidracer",
        description="DroidRacer reproduction: race detection for (simulated) Android applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table2", "table3", "performance"):
        p = sub.add_parser(table, help="regenerate %s of the paper" % table)
        p.add_argument(
            "--open-source-only",
            action="store_true",
            help="only the 10 open-source subjects",
        )
        _add_scale(p)

    p_run = sub.add_parser("run", help="run one calibrated subject")
    p_run.add_argument("app", choices=sorted(SPEC_BY_NAME))
    p_run.add_argument(
        "--save-trace",
        metavar="PATH",
        help="write the generated execution trace as JSONL for offline analysis",
    )
    _add_scale(p_run)

    p_demo = sub.add_parser("demo", help="run a hand-written demo app scenario")
    p_demo.add_argument("app", choices=sorted(DEMO_APPS))
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument("--events", nargs="*", default=None, metavar="EVENT",
                        help="event keys to fire (default: every enabled click)")
    p_demo.add_argument("--save-trace", metavar="PATH")

    p_explore = sub.add_parser("explore", help="systematically explore a demo app")
    p_explore.add_argument("app", choices=sorted(DEMO_APPS))
    p_explore.add_argument("--depth", type=int, default=2)
    p_explore.add_argument("--seed", type=int, default=0)
    p_explore.add_argument("--max-runs", type=int, default=25)

    p_analyze = sub.add_parser("analyze", help="detect races in a trace file (JSONL)")
    p_analyze.add_argument("trace", help="path to a trace in JSONL format")
    p_analyze.add_argument(
        "--explain",
        action="store_true",
        help="print a structured explanation for every reported race",
    )

    args = parser.parse_args(argv)

    if args.command in ("table2", "table3", "performance"):
        specs = OPEN_SOURCE_SPECS if args.open_source_only else ALL_SPECS
        results = run_all(specs, scale=args.scale, seed=args.seed)
        renderer = {
            "table2": render_table2,
            "table3": render_table3,
            "performance": render_performance,
        }[args.command]
        print(renderer(results))
        return 0

    if args.command == "run":
        app = paper_app(args.app, scale=args.scale)
        _, trace = app.run(seed=args.seed)
        if args.save_trace:
            with open(args.save_trace, "w") as handle:
                handle.write(trace.to_jsonl())
            print("trace written to %s (%d operations)" % (args.save_trace, len(trace)))
        report = detect_races(trace)
        print(report.summary())
        for race in report.races:
            print("  ", race)
        return 0

    if args.command == "demo":
        from repro.explorer import find_event

        app = demo_app(args.app)
        system = app.build(args.seed)
        system.run_to_quiescence()
        if args.events is None:
            events = [
                e for e in system.enabled_events() if e.kind == "click"
            ]
        else:
            events = []
            for key in args.events:
                event = find_event(system.enabled_events(), key)
                if event is None:
                    print("event %r not enabled; available: %s" % (
                        key,
                        ", ".join(e.describe() for e in system.enabled_events()),
                    ))
                    return 1
                events.append(event)
        for event in events:
            system.fire(event)
            system.run_to_quiescence()
        trace = system.finish()
        if args.save_trace:
            with open(args.save_trace, "w") as handle:
                handle.write(trace.to_jsonl())
            print("trace written to %s (%d operations)" % (args.save_trace, len(trace)))
        report = detect_races(trace)
        print(report.summary())
        for race in report.races:
            print("  ", race)
        return 0

    if args.command == "explore":
        explorer = UIExplorer(
            demo_app(args.app), depth=args.depth, seed=args.seed, max_runs=args.max_runs
        )
        result = explorer.explore()
        print(
            "%s: %d runs at depth <= %d" % (args.app, result.runs_executed, args.depth)
        )
        for run in result.store.runs:
            report = detect_races(run.trace)
            print("  %s -> %s" % (run.describe(), report.summary()))
            for race in report.races:
                print("      ", race)
        return 0

    if args.command == "analyze":
        from repro.core.explain import explain_race
        from repro.core.race_detector import RaceDetector

        with open(args.trace) as handle:
            trace = ExecutionTrace.from_jsonl(handle.read(), name=args.trace)
        detector = RaceDetector(trace)
        report = detector.detect()
        print(report.summary())
        for race in report.races:
            if args.explain:
                print()
                print(explain_race(detector.trace, detector.hb, race).render())
            else:
                print("  ", race)
        return 0

    return 1


if __name__ == "__main__":
    sys.exit(main())
