"""Core analysis: the paper's primary contribution.

* :mod:`repro.core.operations` — the core trace language (Table 1);
* :mod:`repro.core.trace` — execution traces and metadata;
* :mod:`repro.core.semantics` — the operational semantics (Figure 5);
* :mod:`repro.core.happens_before` — the Android happens-before relation
  (Figures 6, 7) and its closure engine;
* :mod:`repro.core.graph` — happens-before graph + coalescing (§6);
* :mod:`repro.core.race_detector` — race detection (§4.3);
* :mod:`repro.core.classification` — race classification (§4.3);
* :mod:`repro.core.baselines` — ablation relations (§4.1, §7);
* :mod:`repro.core.lifecycle_model` — lifecycle machines (Figure 8).
"""

from .classification import RaceCategory, classify_race
from .explain import RaceExplanation, explain_race, hb_witness, render_witness
from .graph import HBGraph, HBNode, iter_bits
from .happens_before import (
    ANDROID_HB,
    BACKEND_BITMASK,
    BACKEND_CHAINS,
    KERNEL_AUTO,
    KERNEL_PYTHON,
    KERNEL_WORDS,
    SAT_FULL,
    SAT_INCREMENTAL,
    ClosureStats,
    HappensBefore,
    HBConfig,
    HBStats,
    peak_rss_bytes,
)
from .reachability import ChainIndex, have_numpy, resolve_kernel
from .lifecycle_model import (
    ActivityLifecycle,
    LifecycleError,
    ReceiverLifecycle,
    ServiceLifecycle,
)
from .operations import OpKind, Operation
from .race_detector import DetectorConfig, Race, RaceDetector, RaceReport, detect_races
from .semantics import ApplicationState, SemanticsError, is_valid_trace, validate_trace
from .trace import ExecutionTrace, InvalidTraceError, TraceBuilder, TraceFormatError
from .vc_triage import (
    TRIAGE_OFF,
    TRIAGE_VC,
    TRIAGES,
    TriageRaceDetector,
    triage_races,
)
from .vector_clock import VCRace, VCReport, VectorClockRaceDetector, detect_races_vc

__all__ = [
    "ANDROID_HB",
    "ActivityLifecycle",
    "ApplicationState",
    "BACKEND_BITMASK",
    "BACKEND_CHAINS",
    "ChainIndex",
    "ClosureStats",
    "DetectorConfig",
    "ExecutionTrace",
    "HappensBefore",
    "HBConfig",
    "HBGraph",
    "HBNode",
    "HBStats",
    "InvalidTraceError",
    "KERNEL_AUTO",
    "KERNEL_PYTHON",
    "KERNEL_WORDS",
    "LifecycleError",
    "OpKind",
    "Operation",
    "Race",
    "RaceCategory",
    "RaceDetector",
    "RaceExplanation",
    "RaceReport",
    "ReceiverLifecycle",
    "SAT_FULL",
    "SAT_INCREMENTAL",
    "SemanticsError",
    "ServiceLifecycle",
    "TRIAGE_OFF",
    "TRIAGE_VC",
    "TRIAGES",
    "TraceBuilder",
    "TraceFormatError",
    "TriageRaceDetector",
    "VCRace",
    "VCReport",
    "VectorClockRaceDetector",
    "classify_race",
    "detect_races",
    "detect_races_vc",
    "explain_race",
    "have_numpy",
    "hb_witness",
    "is_valid_trace",
    "iter_bits",
    "peak_rss_bytes",
    "render_witness",
    "resolve_kernel",
    "triage_races",
    "validate_trace",
]
