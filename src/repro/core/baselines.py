"""Baseline and ablation happens-before relations.

The paper positions its relation against two prior families and a naive
combination (§1, §4.1 "Specializations", §7):

* **multithreaded-only** (FastTrack-style): classic happens-before with
  full per-thread program order, fork/join and lock edges.  Applied to
  Android it misses every *single-threaded* race — full program order
  spuriously orders asynchronous tasks sharing a looper thread.
* **event-driven-only** (WebRacer/EventRacer-style): the thread-local rules
  alone, with post edges but no fork/join/lock reasoning — applied to
  Android it reports false positives for accesses ordered only through
  multithreaded synchronization.
* **naive combination**: all rules thrown together with unrestricted
  transitivity and lock edges regardless of thread.  Locks then induce a
  spurious ordering between two tasks on the same thread that merely use
  the same lock, masking real races (false negatives).

Two further ablations isolate runtime-environment modeling (§4.2):

* **no-enable**: drop ENABLE-ST/ENABLE-MT — the paper's Figure 4 lifecycle
  pair (write in LAUNCH_ACTIVITY vs write in onDestroy) then becomes a
  false positive.
* **no-fifo**: drop the FIFO rule — the non-deterministic async-program
  semantics; tasks on one thread become unordered unless NOPRE applies.

Every baseline is an :class:`~repro.core.happens_before.HBConfig`; they run
through the unmodified detection pipeline so differences in reported races
are attributable purely to the relation.
"""

from __future__ import annotations

from typing import Dict

from .happens_before import (
    ANDROID_HB,
    HBConfig,
    LOCKS_ALL,
    LOCKS_CROSS_THREAD,
    LOCKS_NONE,
    PO_ANDROID,
    PO_FULL,
    TRANS_DECOMPOSED,
    TRANS_PLAIN,
)

#: Classic multithreaded happens-before (threads without task queues).
MULTITHREADED_ONLY = HBConfig(
    program_order=PO_FULL,
    enable_edges=False,
    post_edges=True,  # posts modelled like forks of the handler
    attach_q_edge=False,
    fifo=False,
    delayed_fifo=False,
    nopre=False,
    fork_join=True,
    lock_edges=LOCKS_CROSS_THREAD,
    transitivity=TRANS_PLAIN,
)

#: Single-threaded event-driven happens-before (web-application detectors).
EVENT_DRIVEN_ONLY = HBConfig(
    program_order=PO_ANDROID,
    enable_edges=True,
    post_edges=True,
    attach_q_edge=True,
    fifo=True,
    delayed_fifo=True,
    nopre=True,
    fork_join=False,
    lock_edges=LOCKS_NONE,
    transitivity=TRANS_DECOMPOSED,
)

#: Naive combination: everything, unrestricted (the relation the paper's
#: decomposition exists to avoid).
NAIVE_COMBINED = HBConfig(
    program_order=PO_ANDROID,
    enable_edges=True,
    post_edges=True,
    attach_q_edge=True,
    fifo=True,
    delayed_fifo=True,
    nopre=True,
    fork_join=True,
    lock_edges=LOCKS_ALL,
    transitivity=TRANS_PLAIN,
)

#: Runtime-environment ablation: no lifecycle/UI enable modeling.
NO_ENABLE = HBConfig(enable_edges=False)

#: Non-deterministic asynchronous-call semantics (drop FIFO).
NO_FIFO = HBConfig(fifo=False, delayed_fifo=False)

#: Drop the no-preemption rule.
NO_NOPRE = HBConfig(nopre=False)

#: EXTENSION: the paper's relation plus the at-front post rule (§4.2
#: defers post-to-the-front to future work; we implement the sound case).
ANDROID_WITH_FRONT_POSTS = HBConfig(front_post_rule=True)

#: All named relations, keyed for the benchmark harness.
ALL_CONFIGS: Dict[str, HBConfig] = {
    "android": ANDROID_HB,
    "multithreaded-only": MULTITHREADED_ONLY,
    "event-driven-only": EVENT_DRIVEN_ONLY,
    "naive-combined": NAIVE_COMBINED,
    "no-enable": NO_ENABLE,
    "no-fifo": NO_FIFO,
    "no-nopre": NO_NOPRE,
    "android+front-posts": ANDROID_WITH_FRONT_POSTS,
}
