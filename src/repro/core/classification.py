"""Race classification (paper, §4.3).

To help developers find root causes, DroidRacer classifies each reported
race by analysing the *post chains* leading to the two racy operations.
For an operation ``α`` executed inside an asynchronous task,
``chain(α) = ⟨β1, …, βm⟩`` is the maximal sub-sequence of post operations
with ``callee(βk) = task(βk+1)`` and ``callee(βm) = task(α)`` — i.e. the
causal chain of posts that led to the task containing ``α``.

Categories (checked in this order; first match wins):

* **multithreaded** — the two operations run on different threads;
* **co-enabled** — the most recent *environmental-event* posts in the two
  chains are not happens-before ordered: two events (UI events, lifecycle
  callbacks of distinct objects, …) that can fire in parallel;
* **delayed** — the most recent *delayed* posts differ (or only one chain
  has one): the race hinges on timing constraints of ``postDelayed``;
* **cross-posted** — the most recent posts made *from another thread*
  differ (or only one chain has one): resolving the race needs combined
  thread-local and inter-thread reasoning;
* **unknown** — none of the above criteria applies.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from .happens_before import HappensBefore
from .operations import Operation
from .trace import ExecutionTrace


class RaceCategory(enum.Enum):
    MULTITHREADED = "multithreaded"
    CO_ENABLED = "co-enabled"
    DELAYED = "delayed"
    CROSS_POSTED = "cross-posted"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


#: The single-threaded categories, in the paper's checking order.
SINGLE_THREADED_ORDER = (
    RaceCategory.CO_ENABLED,
    RaceCategory.DELAYED,
    RaceCategory.CROSS_POSTED,
)


def classify_race(
    trace: ExecutionTrace, hb: HappensBefore, i: int, j: int
) -> RaceCategory:
    """Classify the race between trace positions ``i < j``."""
    if i > j:
        i, j = j, i
    op_i, op_j = trace[i], trace[j]
    if op_i.thread != op_j.thread:
        return RaceCategory.MULTITHREADED

    chain_i = trace.post_chain(i)
    chain_j = trace.post_chain(j)

    if _is_co_enabled(trace, hb, chain_i, chain_j):
        return RaceCategory.CO_ENABLED
    if _is_delayed(trace, chain_i, chain_j):
        return RaceCategory.DELAYED
    if _is_cross_posted(trace, op_i.thread, chain_i, chain_j):
        return RaceCategory.CROSS_POSTED
    return RaceCategory.UNKNOWN


def _most_recent(
    trace: ExecutionTrace, chain: List[int], predicate: Callable[[Operation], bool]
) -> Optional[int]:
    """Index of the most recent post in ``chain`` satisfying ``predicate``."""
    for index in reversed(chain):
        if predicate(trace[index]):
            return index
    return None


def _is_co_enabled(
    trace: ExecutionTrace,
    hb: HappensBefore,
    chain_i: List[int],
    chain_j: List[int],
) -> bool:
    is_event = lambda op: op.event is not None
    beta_i = _most_recent(trace, chain_i, is_event)
    beta_j = _most_recent(trace, chain_j, is_event)
    if beta_i is None or beta_j is None:
        return False
    if beta_i == beta_j:
        return False  # β ≺ β reflexively: ordered
    return not hb.ordered(*sorted((beta_i, beta_j)))


def _is_delayed(
    trace: ExecutionTrace, chain_i: List[int], chain_j: List[int]
) -> bool:
    is_delayed = lambda op: op.is_delayed_post
    beta_i = _most_recent(trace, chain_i, is_delayed)
    beta_j = _most_recent(trace, chain_j, is_delayed)
    if beta_i is None and beta_j is None:
        return False
    if beta_i is None or beta_j is None:
        return True  # only one chain involves a delayed post
    return beta_i != beta_j


def _is_cross_posted(
    trace: ExecutionTrace,
    racy_thread: str,
    chain_i: List[int],
    chain_j: List[int],
) -> bool:
    from_other_thread = lambda op: op.thread != racy_thread
    beta_i = _most_recent(trace, chain_i, from_other_thread)
    beta_j = _most_recent(trace, chain_j, from_other_thread)
    if beta_i is None and beta_j is None:
        return False
    if beta_i is None or beta_j is None:
        return True
    return beta_i != beta_j
