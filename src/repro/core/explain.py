"""Race explanation — debugging support for reported races.

The paper closes with "we also wish to investigate how to provide better
debugging support" (§8).  This module implements it for our detector:

* :func:`explain_race` — a structured explanation of one report: the two
  accesses, the asynchronous tasks containing them, their post chains
  (with enable provenance and delays), the classification rationale, and
  the *near-miss* analysis: which happens-before rules almost ordered the
  pair and what broke them;
* :func:`hb_witness` — for an *ordered* pair, a shortest chain of
  happens-before edges proving the ordering (useful to understand why a
  suspected race is not reported).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .classification import RaceCategory
from .graph import bits
from .happens_before import HappensBefore
from .operations import OpKind, Operation
from .race_detector import Race
from .trace import ExecutionTrace, TaskInfo


@dataclass
class ChainStep:
    """One post in a racy operation's causal chain."""

    post_index: int
    task: str
    poster_thread: str
    target_thread: str
    event: Optional[str]
    delay: Optional[int]

    def describe(self) -> str:
        extra = []
        if self.event:
            extra.append("event %s" % self.event)
        if self.delay:
            extra.append("delayed %dms" % self.delay)
        suffix = (" [%s]" % ", ".join(extra)) if extra else ""
        return "op %d: %s posts %s to %s%s" % (
            self.post_index,
            self.poster_thread,
            self.task,
            self.target_thread,
            suffix,
        )


@dataclass
class RaceExplanation:
    """Structured debugging output for one race report."""

    race: Race
    chain_i: List[ChainStep]
    chain_j: List[ChainStep]
    rationale: str
    near_misses: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [self.race.describe(), "", "why these operations are unordered:"]
        lines.append("  " + self.rationale)
        for label, chain, op in (
            ("first", self.chain_i, self.race.op_i),
            ("second", self.chain_j, self.race.op_j),
        ):
            lines.append("")
            lines.append(
                "%s access: op %d %s" % (label, op.index, op.render())
            )
            if chain:
                lines.append("  post chain:")
                for step in chain:
                    lines.append("    " + step.describe())
            else:
                lines.append("  (outside any asynchronous task)")
        if self.near_misses:
            lines.append("")
            lines.append("near misses (rules that almost ordered the pair):")
            for miss in self.near_misses:
                lines.append("  - " + miss)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _chain_steps(trace: ExecutionTrace, op_index: int) -> List[ChainStep]:
    steps = []
    for post_index in trace.post_chain(op_index):
        op = trace[post_index]
        steps.append(
            ChainStep(
                post_index=post_index,
                task=op.task,
                poster_thread=op.thread,
                target_thread=op.target,
                event=op.event,
                delay=op.delay,
            )
        )
    return steps


def _category_rationale(
    trace: ExecutionTrace, race: Race, chain_i: List[ChainStep], chain_j: List[ChainStep]
) -> str:
    category = race.category
    if category is RaceCategory.MULTITHREADED:
        return (
            "the accesses run on different threads (%s vs %s) with no "
            "fork/join, lock, or post path between them"
            % (race.op_i.thread, race.op_j.thread)
        )
    if category is RaceCategory.CO_ENABLED:
        ev_i = next((s for s in reversed(chain_i) if s.event), None)
        ev_j = next((s for s in reversed(chain_j) if s.event), None)
        return (
            "both accesses descend from environmental events (%s and %s) "
            "that are co-enabled: nothing orders their dispatches, so the "
            "handler tasks may run in either order"
            % (ev_i.event if ev_i else "?", ev_j.event if ev_j else "?")
        )
    if category is RaceCategory.DELAYED:
        dl_i = next((s for s in reversed(chain_i) if s.delay), None)
        dl_j = next((s for s in reversed(chain_j) if s.delay), None)
        described = " / ".join(
            "op %d (delay %dms)" % (s.post_index, s.delay)
            for s in (dl_i, dl_j)
            if s is not None
        )
        return (
            "the chains involve delayed posts (%s); FIFO ordering does not "
            "apply across these timeouts — check the timing constraints to "
            "rule the race out" % described
        )
    if category is RaceCategory.CROSS_POSTED:
        cp_i = next(
            (s for s in reversed(chain_i) if s.poster_thread != race.op_i.thread), None
        )
        cp_j = next(
            (s for s in reversed(chain_j) if s.poster_thread != race.op_j.thread), None
        )
        sources = ", ".join(
            "op %d from %s" % (s.post_index, s.poster_thread)
            for s in (cp_i, cp_j)
            if s is not None
        )
        return (
            "at least one task was posted from another thread (%s); the "
            "posts are unordered, so the FIFO rule cannot order the tasks "
            "— resolving this needs combined thread-local and inter-thread "
            "reasoning" % sources
        )
    return (
        "the tasks' post chains carry no event, delay, or cross-thread "
        "provenance that the classifier recognizes (framework-internal "
        "posts); inspect the posts manually"
    )


def _near_misses(
    trace: ExecutionTrace, hb: HappensBefore, race: Race
) -> List[str]:
    """Rules that would have ordered the pair had one premise held."""
    out: List[str] = []
    i, j = race.op_i.index, race.op_j.index
    task_i = trace.task_name_of(i)
    task_j = trace.task_name_of(j)
    if race.is_single_threaded and task_i and task_j and task_i != task_j:
        info_i, info_j = trace.tasks[task_i], trace.tasks[task_j]
        if info_i.post_index is not None and info_j.post_index is not None:
            first, second = sorted(
                (info_i, info_j), key=lambda info: info.begin_index
            )
            ordered_posts = hb.ordered(
                *sorted((first.post_index, second.post_index))
            ) and first.post_index < second.post_index
            if not ordered_posts:
                out.append(
                    "FIFO: post of %s (op %d) and post of %s (op %d) are "
                    "not happens-before ordered; ordering the posts (e.g. "
                    "posting both from one task) would serialize the tasks"
                    % (
                        first.name,
                        first.post_index,
                        second.name,
                        second.post_index,
                    )
                )
            elif first.is_delayed or second.is_delayed:
                out.append(
                    "FIFO: the posts are ordered but the delayed-post "
                    "condition fails (δ=%s then δ=%s); aligning the delays "
                    "restores the ordering"
                    % (first.delay, second.delay)
                )
            if info_j.event is None and info_i.event is None:
                out.append(
                    "ENABLE: neither task is tied to an enable operation; "
                    "a missed instrumentation point would make this a "
                    "false positive"
                )
    if not race.is_single_threaded:
        out.append(
            "LOCK: guarding both accesses with a common lock would create "
            "a release→acquire edge"
        )
        out.append(
            "JOIN: joining the background thread before the later access "
            "would create an exit→join edge"
        )
    return out


def explain_race(
    trace: ExecutionTrace, hb: HappensBefore, race: Race
) -> RaceExplanation:
    """Produce the structured explanation for one reported race."""
    chain_i = _chain_steps(trace, race.op_i.index)
    chain_j = _chain_steps(trace, race.op_j.index)
    return RaceExplanation(
        race=race,
        chain_i=chain_i,
        chain_j=chain_j,
        rationale=_category_rationale(trace, race, chain_i, chain_j),
        near_misses=_near_misses(trace, hb, race),
    )


def hb_witness(hb: HappensBefore, i: int, j: int) -> Optional[List[int]]:
    """A shortest node-level happens-before path from ``α_i`` to ``α_j``
    (operation indices), or ``None`` if the pair is unordered.  BFS over
    the closed edge relation restricted to edges that remain valid —
    every step of the returned path is itself an HB fact."""
    graph = hb.graph
    src = graph.node_of_op[i]
    dst = graph.node_of_op[j]
    if src == dst:
        return [i, j] if i <= j else None
    if not graph.ordered(src, dst):
        return None
    # BFS over hb successors, but only through nodes that still reach dst.
    parents: Dict[int, int] = {src: -1}
    frontier = deque([src])
    while frontier:
        node = frontier.popleft()
        if node == dst:
            break
        for succ in bits(graph.hb_row(node)):
            if succ in parents:
                continue
            if succ == dst or graph.ordered(succ, dst):
                parents[succ] = node
                frontier.append(succ)
    if dst not in parents:
        return None  # unreachable under the restricted relation
    path = []
    node = dst
    while node != -1:
        path.append(node)
        node = parents[node]
    path.reverse()
    return [graph.node(n).first_index for n in path]


def render_witness(trace: ExecutionTrace, path: List[int]) -> str:
    """Human-readable rendering of an HB witness path."""
    lines = []
    for op_index in path:
        op = trace[op_index]
        lines.append("op %4d  %s" % (op_index, op.render()))
    return "\n   ≺ ".join(lines) if lines else "(empty path)"
