"""Happens-before graph representation.

The Race Detector of the paper builds a directed graph over trace
operations and computes the happens-before relation by (restricted)
transitive closure.  As an optimization, *contiguous memory accesses
without any intervening synchronization operation are modeled by a single
node* (§6, "Performance"); the paper reports this reduces node counts to
1.4%–24.8% of the trace length without losing precision.

This module provides:

* :class:`HBNode` — a graph node: either a single (synchronization-relevant)
  operation or a coalesced run of read/write operations that are contiguous
  in the trace, on the same thread, and inside the same asynchronous task;
* :class:`HBGraph` — the node array plus the three edge relations
  (``st``, ``mt`` and their union ``hb``) stored as per-node successor
  bitmasks (arbitrary-precision integers), the representation the closure
  engine in :mod:`repro.core.happens_before` operates on.

Coalescing is precision-preserving because every operation in a coalesced
run has identical happens-before relationships to all operations outside
the run: no base rule of Figures 6/7 mentions ``read``/``write`` op-codes
explicitly, and the program-order rules relate the whole run to the same
surrounding operations.  Within a run, operations are totally ordered by
program order (same thread, same task), so no intra-run races exist.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .operations import OpKind, Operation
from .reachability import BACKEND_BITMASK, BACKEND_CHAINS
from .trace import ExecutionTrace


@dataclass
class HBNode:
    """One node of the happens-before graph."""

    node_id: int
    ops: List[Operation]
    thread: str
    task: Optional[str]  # enclosing asynchronous task (in_task), if any

    @property
    def first_index(self) -> int:
        return self.ops[0].index

    @property
    def last_index(self) -> int:
        return self.ops[-1].index

    @property
    def op(self) -> Operation:
        """The single operation of a synchronization node (undefined use for
        coalesced access nodes — callers must check :attr:`is_access_block`)."""
        return self.ops[0]

    @property
    def is_access_block(self) -> bool:
        return self.ops[0].is_memory_access

    @property
    def kind(self) -> Optional[OpKind]:
        """Op-code for single-op nodes, ``None`` for coalesced blocks of
        more than one access."""
        if len(self.ops) == 1:
            return self.ops[0].kind
        return None

    def accesses(self) -> Iterator[Operation]:
        return (op for op in self.ops if op.is_memory_access)

    def locations(self) -> List[str]:
        seen: Dict[str, None] = {}
        for op in self.accesses():
            seen.setdefault(op.location, None)
        return list(seen)

    def accesses_to(self, location: str) -> List[Operation]:
        return [op for op in self.accesses() if op.location == location]

    def writes_to(self, location: str) -> bool:
        return any(op.is_write for op in self.accesses_to(location))

    def reads_from(self, location: str) -> bool:
        return any(op.is_read for op in self.accesses_to(location))

    def __repr__(self) -> str:
        if len(self.ops) == 1:
            return "HBNode(%d, %s)" % (self.node_id, self.ops[0].render())
        return "HBNode(%d, %d accesses on %s)" % (
            self.node_id,
            len(self.ops),
            self.thread,
        )


class HBGraph:
    """Node array + ``st``/``mt`` successor bitmasks over node ids.

    Edges always point forward in trace order (every rule of Figures 6/7
    requires ``i < j``), so the graph is a DAG topologically sorted by
    node id.

    ``backend`` selects the closure representation: ``"bitmask"``
    (default) keeps the dense ``st``/``mt`` rows; ``"chains"`` leaves
    them unallocated and delegates every edge/query operation to a
    :class:`~repro.core.reachability.ChainIndex` attached later via
    :meth:`attach_index` (the index needs the rule configuration, which
    the graph does not know).
    """

    def __init__(
        self,
        trace: ExecutionTrace,
        coalesce: bool = True,
        backend: str = BACKEND_BITMASK,
    ):
        if backend not in (BACKEND_BITMASK, BACKEND_CHAINS):
            raise ValueError("bad backend %r" % backend)
        self.trace = trace
        self.coalesce = coalesce
        self.backend = backend
        self.reach = None  # ChainIndex, attached in chains mode
        self.nodes: List[HBNode] = []
        self.node_of_op: List[int] = [0] * len(trace)
        self._build_nodes()
        n = len(self.nodes)
        if backend == BACKEND_BITMASK:
            self.st: List[int] = [0] * n  # thread-local successors
            self.mt: List[int] = [0] * n  # inter-thread successors
        else:
            # O(n²) rows never exist in chains mode; any stray bitmask
            # access fails loudly instead of silently diverging.
            self.st = self.mt = None  # type: ignore[assignment]
        #: All node bits set — the universe every per-thread mask complements
        #: against (hot in the closure inner loop, so computed exactly once).
        self.all_mask: int = (1 << n) - 1
        self._same_thread_mask: Dict[str, int] = {}
        self._diff_thread_mask: Dict[str, int] = {}
        self._build_masks()

    def attach_index(self, index) -> None:
        """Install the chains-backend reachability index (see
        :mod:`repro.core.reachability`)."""
        self.reach = index

    # -- node construction -----------------------------------------------

    def _build_nodes(self) -> None:
        # Coalescing is per-thread: a run of accesses by one thread merges
        # into one node until that thread performs a non-access operation
        # (or switches task).  Accesses interleaved from *other* threads do
        # not break a run — no happens-before edge can exist between two
        # runs that overlap in trace order (any ordering would need a
        # synchronization operation of one thread between its own accesses),
        # so per-thread coalescing is precision-preserving.
        trace = self.trace
        current: Dict[str, Optional[HBNode]] = {}
        for op in trace:
            in_task = trace.task_name_of(op.index)
            if self.coalesce and op.is_memory_access:
                node = current.get(op.thread)
                if node is not None and node.task == in_task:
                    node.ops.append(op)
                    self.node_of_op[op.index] = node.node_id
                    continue
                node = HBNode(len(self.nodes), [op], op.thread, in_task)
                self.nodes.append(node)
                self.node_of_op[op.index] = node.node_id
                current[op.thread] = node
                continue
            node = HBNode(len(self.nodes), [op], op.thread, in_task)
            self.nodes.append(node)
            self.node_of_op[op.index] = node.node_id
            current[op.thread] = None

    def _build_masks(self) -> None:
        per_thread: Dict[str, int] = {}
        for node in self.nodes:
            per_thread[node.thread] = per_thread.get(node.thread, 0) | (
                1 << node.node_id
            )
        self._same_thread_mask = per_thread
        all_mask = self.all_mask
        self._diff_thread_mask = {
            thread: all_mask & ~mask for thread, mask in per_thread.items()
        }

    # -- structure queries --------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> HBNode:
        return self.nodes[node_id]

    def node_for(self, op_index: int) -> HBNode:
        return self.nodes[self.node_of_op[op_index]]

    def same_thread_mask(self, thread: str) -> int:
        return self._same_thread_mask.get(thread, 0)

    def diff_thread_mask(self, thread: str) -> int:
        return self._diff_thread_mask.get(thread, self.all_mask)

    @property
    def reduction_ratio(self) -> float:
        """Node count as a fraction of the trace length (the paper's
        1.4%–24.8% statistic)."""
        if not len(self.trace):
            return 1.0
        return len(self.nodes) / float(len(self.trace))

    # -- edge insertion -------------------------------------------------------

    def add_st(self, i: int, j: int) -> bool:
        """Add a thread-local edge ``i ≺st j``; returns True if new."""
        if self.reach is not None:
            return self.reach.add_st(i, j)
        if i == j:
            return False
        bit = 1 << j
        if self.st[i] & bit:
            return False
        self.st[i] |= bit
        return True

    def add_mt(self, i: int, j: int) -> bool:
        """Add an inter-thread edge ``i ≺mt j``; returns True if new."""
        if self.reach is not None:
            return self.reach.add_mt(i, j)
        if i == j:
            return False
        bit = 1 << j
        if self.mt[i] & bit:
            return False
        self.mt[i] |= bit
        return True

    def hb_row(self, i: int) -> int:
        if self.reach is not None:
            return self.reach.row_mask(i)
        return self.st[i] | self.mt[i]

    def ordered(self, i: int, j: int) -> bool:
        """Node-level ``i ≺ j`` (only meaningful after closure)."""
        if i == j:
            return True  # the paper's relation is reflexive
        if i > j:
            return False  # all edges point forward
        if self.reach is not None:
            return self.reach.ordered(i, j)
        return bool(self.hb_row(i) & (1 << j))

    def ordered_ops(self, op_i: int, op_j: int) -> bool:
        """Operation-level happens-before query ``α_i ≺ α_j``."""
        a, b = self.node_of_op[op_i], self.node_of_op[op_j]
        if a == b:
            return op_i <= op_j
        if op_i > op_j:
            return False
        return self.ordered(a, b)

    def edge_count(self) -> Tuple[int, int]:
        if self.reach is not None:
            return self.reach.edge_count()
        st_edges = sum(row.bit_count() for row in self.st)
        mt_edges = sum(row.bit_count() for row in self.mt)
        return st_edges, mt_edges

    def successors(self, i: int) -> List[int]:
        if self.reach is not None:
            return list(self.reach.successors(i))
        return _bits(self.hb_row(i))

    def memory_bytes(self) -> int:
        """Bytes held by the closure representation (the quantity the
        backend switch trades: dense rows are O(n²) bits, the chain index
        O(n·C) ints)."""
        if self.reach is not None:
            return self.reach.memory_bytes()
        total = sys.getsizeof(self.st) + sys.getsizeof(self.mt)
        for row in self.st:
            total += sys.getsizeof(row)
        for row in self.mt:
            total += sys.getsizeof(row)
        return total

    def to_dot(self, max_nodes: int = 200) -> str:
        """Graphviz rendering (for debugging small traces)."""
        lines = ["digraph hb {", "  rankdir=TB;"]
        for node in self.nodes[:max_nodes]:
            label = (
                node.ops[0].render()
                if len(node.ops) == 1
                else "%d accesses" % len(node.ops)
            )
            lines.append('  n%d [label="%d: %s"];' % (node.node_id, node.node_id, label))
        limit = min(len(self.nodes), max_nodes)
        for i in range(limit):
            if self.reach is not None:
                thread = self.nodes[i].thread
                for j in self.successors(i):
                    if j < limit:
                        style = (
                            " [style=dashed]"
                            if self.nodes[j].thread == thread
                            else ""
                        )
                        lines.append("  n%d -> n%d%s;" % (i, j, style))
                continue
            for j in _bits(self.st[i]):
                if j < limit:
                    lines.append("  n%d -> n%d [style=dashed];" % (i, j))
            for j in _bits(self.mt[i]):
                if j < limit:
                    lines.append("  n%d -> n%d;" % (i, j))
        lines.append("}")
        return "\n".join(lines)


def _bits(mask: int) -> List[int]:
    """Indices of set bits, ascending."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def bits(mask: int) -> List[int]:
    """Public alias of :func:`_bits` for the closure engine and tests."""
    return _bits(mask)


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of set bits, ascending, as a generator — the hot-loop
    variant of :func:`bits` (no list is materialized; the closure sweeps
    and race enumeration iterate rows orders of magnitude more often than
    anything keeps the indices around)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
