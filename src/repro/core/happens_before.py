"""The happens-before relation for Android traces (paper, Figures 6 and 7).

The relation ``≺`` is the union of two mutually recursive relations:

* ``≺st`` — *thread-local* happens-before, relating operations on the same
  thread (rules NO-Q-PO, ASYNC-PO, ENABLE-ST, POST-ST, FIFO, NOPRE,
  TRANS-ST);
* ``≺mt`` — *inter-thread* happens-before, relating operations on different
  threads (rules ATTACH-Q-MT, ENABLE-MT, POST-MT, FORK, JOIN, LOCK,
  TRANS-MT).

The decomposition is the paper's key precision device: TRANS-ST composes
only thread-local facts, and TRANS-MT only ever *emits* different-thread
pairs, so two asynchronous tasks on the same looper thread can never be
ordered through a lock-induced detour via another thread — locks record
*observed* order, not *necessary* order.  Cross-thread knowledge flows back
into the thread-local relation only through the FIFO and NOPRE rules, whose
premises quantify over the full ``≺``.

All rule instances point forward in trace order, so the graph is a DAG
compatible with the trace; we saturate the two transitivity rules in a
single high-to-low sweep over node rows (each row depends only on higher
rows) and re-run FIFO/NOPRE in an outer fixpoint until no new edges
appear.  Worst case matches the paper's cubic bound; bitmask rows make the
constant small.

:class:`HBConfig` exposes every rule as a switch; the presets in
:mod:`repro.core.baselines` turn the same engine into the classic
multithreaded detector, the single-threaded event-driven detector, and the
naive combination the paper argues against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from .graph import HBGraph, HBNode, bits
from .operations import OpKind, Operation
from .trace import ExecutionTrace, TaskInfo

#: ``program_order`` settings.
PO_ANDROID = "android"  # NO-Q-PO + ASYNC-PO (the paper's rules)
PO_FULL = "full"  # classic per-thread total program order
PO_NONE = "none"

#: ``lock_edges`` settings.
LOCKS_CROSS_THREAD = "cross_thread"  # the paper's LOCK rule (t ≠ t')
LOCKS_ALL = "all"  # naive: also order same-thread critical sections
LOCKS_NONE = "none"

#: ``transitivity`` settings.
TRANS_DECOMPOSED = "decomposed"  # TRANS-ST / TRANS-MT as in the paper
TRANS_PLAIN = "plain"  # plain closure of the edge union


@dataclass(frozen=True)
class HBConfig:
    """Rule switches for the happens-before engine.

    The default value of every field reproduces the paper's relation.
    """

    program_order: str = PO_ANDROID
    enable_edges: bool = True  # ENABLE-ST + ENABLE-MT
    post_edges: bool = True  # POST-ST + POST-MT
    attach_q_edge: bool = True  # ATTACH-Q-MT
    fifo: bool = True  # FIFO
    delayed_fifo: bool = True  # §4.2 delayed-post refinement of FIFO
    nopre: bool = True  # NOPRE
    fork_join: bool = True  # FORK + JOIN
    lock_edges: str = LOCKS_CROSS_THREAD
    transitivity: str = TRANS_DECOMPOSED
    #: EXTENSION (off by default — the paper defers post-to-the-front to
    #: future work): when a task K running on thread t posts p_o normally
    #: and later posts p_f at the front of t's own queue, p_f is ahead of
    #: the still-pending p_o in every schedule (t is busy running K while
    #: both are enqueued), so end(p_f) ≺st begin(p_o) is sound.
    front_post_rule: bool = False

    def __post_init__(self) -> None:
        if self.program_order not in (PO_ANDROID, PO_FULL, PO_NONE):
            raise ValueError("bad program_order %r" % self.program_order)
        if self.lock_edges not in (LOCKS_CROSS_THREAD, LOCKS_ALL, LOCKS_NONE):
            raise ValueError("bad lock_edges %r" % self.lock_edges)
        if self.transitivity not in (TRANS_DECOMPOSED, TRANS_PLAIN):
            raise ValueError("bad transitivity %r" % self.transitivity)


#: The paper's relation.
ANDROID_HB = HBConfig()


@dataclass
class HBStats:
    """Bookkeeping the benchmarks report (§6 'Performance')."""

    trace_length: int = 0
    node_count: int = 0
    reduction_ratio: float = 1.0
    st_edges: int = 0
    mt_edges: int = 0
    fifo_edges: int = 0
    nopre_edges: int = 0
    outer_iterations: int = 0


class HappensBefore:
    """Computes ``≺ = ≺st ∪ ≺mt`` over a trace and answers ordering queries.

    Parameters
    ----------
    trace:
        The execution trace to analyse.
    config:
        Rule switches; defaults to the paper's relation.
    coalesce:
        Apply the node-coalescing optimization (§6).  Disable to measure its
        effect (benchmark E3) — results are identical either way.
    """

    def __init__(
        self,
        trace: ExecutionTrace,
        config: HBConfig = ANDROID_HB,
        coalesce: bool = True,
    ):
        self.trace = trace
        self.config = config
        self.graph = HBGraph(trace, coalesce=coalesce)
        self.stats = HBStats(
            trace_length=len(trace),
            node_count=len(self.graph),
            reduction_ratio=self.graph.reduction_ratio,
        )
        self._task_ops = _index_task_ops(trace, self.graph)
        self._compute()

    # -- public queries -------------------------------------------------------

    def ordered(self, i: int, j: int) -> bool:
        """``α_i ≺ α_j`` for trace positions ``i``, ``j``."""
        return self.graph.ordered_ops(i, j)

    def unordered(self, i: int, j: int) -> bool:
        """Neither ``α_i ≺ α_j`` nor ``α_j ≺ α_i`` (the race condition)."""
        return not self.ordered(i, j) and not self.ordered(j, i)

    def ordered_nodes(self, a: int, b: int) -> bool:
        return self.graph.ordered(a, b)

    # -- rule application -------------------------------------------------------

    def _compute(self) -> None:
        self._add_static_edges()
        self._saturate()
        # FIFO and NOPRE premises consult the full ≺, so they are applied in
        # an outer fixpoint: each round may enable further rounds.
        for iteration in itertools.count(1):
            self.stats.outer_iterations = iteration
            changed = False
            if self.config.fifo:
                changed |= self._apply_fifo()
            if self.config.nopre:
                changed |= self._apply_nopre()
            if self.config.front_post_rule:
                changed |= self._apply_front_posts()
            if not changed:
                break
            self._saturate()
        self.stats.st_edges, self.stats.mt_edges = self.graph.edge_count()

    def _add_static_edges(self) -> None:
        cfg = self.config
        graph = self.graph
        trace = self.trace

        self._add_program_order()

        enables: Dict[str, List[int]] = {}  # enable name -> enable nodes
        forks: Dict[str, int] = {}
        exits: Dict[str, int] = {}
        releases: Dict[str, List[int]] = {}  # lock -> release nodes

        for node in graph.nodes:
            kind = node.kind
            if kind is None:
                continue
            op = node.op
            nid = node.node_id
            if kind is OpKind.ENABLE and cfg.enable_edges:
                enables.setdefault(op.task, []).append(nid)
            elif kind is OpKind.POST:
                if cfg.enable_edges:
                    # ENABLE-ST / ENABLE-MT: every prior enable of this
                    # task — matched by task-instance name, or by the
                    # ``event`` tag naming the enabling operation.
                    keys = {op.task}
                    if op.event:
                        keys.add(op.event)
                    for key in keys:
                        for src in enables.get(key, ()):
                            self._add_edge(src, nid)
                info = trace.tasks.get(op.task)
                if cfg.post_edges and info and info.begin_index is not None:
                    self._add_edge(nid, graph.node_of_op[info.begin_index])
                if cfg.attach_q_edge:
                    attach = trace.attach_index.get(op.target)
                    if attach is not None and attach < op.index:
                        src = graph.node_of_op[attach]
                        if graph.node(src).thread != node.thread:
                            self._add_edge(src, nid)
            elif kind is OpKind.FORK and cfg.fork_join:
                forks[op.target] = nid
            elif kind is OpKind.THREAD_INIT and cfg.fork_join:
                src = forks.get(op.thread)
                if src is not None:
                    self._add_edge(src, nid)
            elif kind is OpKind.THREAD_EXIT and cfg.fork_join:
                exits[op.thread] = nid
            elif kind is OpKind.JOIN and cfg.fork_join:
                src = exits.get(op.target)
                if src is not None:
                    self._add_edge(src, nid)
            elif kind is OpKind.RELEASE and cfg.lock_edges != LOCKS_NONE:
                releases.setdefault(op.lock, []).append(nid)
            elif kind is OpKind.ACQUIRE and cfg.lock_edges != LOCKS_NONE:
                for rel in releases.get(op.lock, ()):  # all earlier releases
                    rel_thread = graph.node(rel).thread
                    if cfg.lock_edges == LOCKS_ALL or rel_thread != node.thread:
                        self._add_edge(rel, nid)

    def _add_program_order(self) -> None:
        """NO-Q-PO and ASYNC-PO (or classic total program order).

        Only *adjacent* edges are inserted; transitivity supplies the rest.
        NO-Q-PO relates a pre-``loopOnQ`` operation to **every** later
        operation of its thread, so the last pre-loop node gets an edge to
        each subsequent task's begin (adjacency within a task then covers
        the task bodies via TRANS-ST).
        """
        mode = self.config.program_order
        if mode == PO_NONE:
            return
        graph = self.graph
        trace = self.trace
        last_on_thread: Dict[str, int] = {}
        last_preloop: Dict[str, int] = {}
        last_in_task: Dict[Tuple[str, str], int] = {}
        for node in graph.nodes:
            nid = node.node_id
            thread = node.thread
            if mode == PO_FULL:
                prev = last_on_thread.get(thread)
                if prev is not None:
                    self._add_edge(prev, nid, force_st=True)
                last_on_thread[thread] = nid
                continue
            # PO_ANDROID
            looped = trace.looped_before(thread, node.first_index)
            if not looped:
                prev = last_preloop.get(thread)
                if prev is not None:
                    self._add_edge(prev, nid, force_st=True)
                last_preloop[thread] = nid
            else:
                pre = last_preloop.get(thread)
                if pre is not None:
                    # NO-Q-PO: every pre-loop op precedes every later op on
                    # the thread.  Adjacency: edge from the last pre-loop
                    # node to each task entry suffices via transitivity.
                    self._add_edge(pre, nid, force_st=True)
                if node.task is not None:
                    key = (thread, node.task)
                    prev = last_in_task.get(key)
                    if prev is not None:
                        self._add_edge(prev, nid, force_st=True)
                    last_in_task[key] = nid

    def _apply_fifo(self) -> bool:
        """FIFO (Figure 6) with the §4.2 delayed-post refinement."""
        changed = False
        for end_node, begin_node, t1, t2 in self._task_pairs():
            if self.graph.ordered(end_node, begin_node):
                continue
            if not self._fifo_applicable(t1, t2):
                continue
            p1, p2 = self.graph.node_of_op[t1.post_index], self.graph.node_of_op[
                t2.post_index
            ]
            if p1 == p2 or self.graph.ordered(p1, p2):
                if self._add_edge_checked_st(end_node, begin_node):
                    self.stats.fifo_edges += 1
                    changed = True
        return changed

    def _fifo_applicable(self, t1: TaskInfo, t2: TaskInfo) -> bool:
        if t1.post_index is None or t2.post_index is None:
            return False
        if t1.at_front or t2.at_front:
            # Post-to-the-front overrides FIFO; the paper defers its
            # treatment to future work, so we conservatively derive nothing.
            return False
        if not self.config.delayed_fifo:
            return not t1.is_delayed and not t2.is_delayed
        if not t1.is_delayed:
            return True  # (base FIFO) or (a): β_j may or may not be delayed
        return t2.is_delayed and (t1.delay or 0) <= (t2.delay or 0)  # (b)

    def _apply_nopre(self) -> bool:
        """NOPRE (Figure 6): ``end(t,p1) ≺st begin(t,p2)`` if some operation
        of task ``p1`` happens-before ``post(_,p2,t)``."""
        changed = False
        graph = self.graph
        for end_node, begin_node, t1, t2 in self._task_pairs():
            if graph.ordered(end_node, begin_node):
                continue
            if t2.post_index is None:
                continue
            post_node = graph.node_of_op[t2.post_index]
            for k in self._task_ops.get(t1.name, ()):  # nodes of task p1
                # ``≺`` is reflexive, so the post op itself (when executed
                # inside p1) witnesses the rule.
                if k == post_node or graph.ordered(k, post_node):
                    if self._add_edge_checked_st(end_node, begin_node):
                        self.stats.nopre_edges += 1
                        changed = True
                    break
        return changed

    def _apply_front_posts(self) -> bool:
        """AT-FRONT (extension, see :class:`HBConfig.front_post_rule`).

        Premises for ``end(t, p_f) ≺st begin(t, p_o)``:

        * ``p_f`` posted at the front, ``p_o`` posted normally,
        * both posts executed *inside the same task K running on t* with
          ``post(p_o)`` before ``post(p_f)`` (program order) — so while
          both are pending, ``t`` is busy running K, and the barged
          ``p_f`` is dequeued first in every schedule.
        """
        changed = False
        graph = self.graph
        trace = self.trace
        for end_node, begin_node, t1, t2 in self._task_pairs():
            # t1 = the earlier-ending task (p_f), t2 = the later one (p_o).
            if not t1.at_front or t2.at_front:
                continue
            if t1.post_index is None or t2.post_index is None:
                continue
            if t2.post_index > t1.post_index:
                continue  # p_o must already be pending when p_f barges
            poster_task = trace.task_name_of(t1.post_index)
            if poster_task is None or trace.task_name_of(t2.post_index) != poster_task:
                continue
            if trace[t1.post_index].thread != t1.thread:
                continue  # the posting task must run on the target thread
            if graph.ordered(end_node, begin_node):
                continue
            if self._add_edge_checked_st(end_node, begin_node):
                changed = True
        return changed

    def _task_pairs(self):
        """Yield ``(end-node(p1), begin-node(p2), info1, info2)`` for ordered
        pairs of distinct tasks on the same looper thread with
        ``index(end(p1)) < index(begin(p2))``."""
        per_thread: Dict[str, List[TaskInfo]] = {}
        for info in self.trace.tasks.values():
            if info.begin_index is not None and info.thread is not None:
                per_thread.setdefault(info.thread, []).append(info)
        for infos in per_thread.values():
            infos.sort(key=lambda info: info.begin_index)
            for a, b in itertools.combinations(infos, 2):
                if a.end_index is None or a.end_index > b.begin_index:
                    continue
                yield (
                    self.graph.node_of_op[a.end_index],
                    self.graph.node_of_op[b.begin_index],
                    a,
                    b,
                )

    # -- edge insertion and closure --------------------------------------------

    def _add_edge(self, i: int, j: int, force_st: bool = False) -> bool:
        """Insert a base edge, classifying it as st or mt by thread equality
        (plain mode stores everything in one relation via st)."""
        if i == j:
            return False
        if i > j:
            raise AssertionError(
                "HB rule produced a backward edge %d -> %d; every rule "
                "requires i < j" % (i, j)
            )
        same = self.graph.node(i).thread == self.graph.node(j).thread
        if self.config.transitivity == TRANS_PLAIN:
            return self.graph.add_st(i, j)
        if force_st or same:
            return self.graph.add_st(i, j)
        return self.graph.add_mt(i, j)

    def _add_edge_checked_st(self, i: int, j: int) -> bool:
        if self.graph.node(i).thread != self.graph.node(j).thread:
            raise AssertionError("FIFO/NOPRE edges are thread-local by rule")
        return self.graph.add_st(i, j)

    def _saturate(self) -> None:
        if self.config.transitivity == TRANS_PLAIN:
            self._saturate_plain()
        else:
            self._saturate_decomposed()

    def _saturate_plain(self) -> None:
        """Plain reachability closure of the edge union (naive baseline)."""
        st = self.graph.st
        for i in range(len(st) - 1, -1, -1):
            row = st[i]
            closure = row
            for k in bits(row):
                closure |= st[k]
            st[i] = closure

    def _saturate_decomposed(self) -> None:
        """Saturate TRANS-ST and TRANS-MT.

        Because every edge points forward, row ``i`` depends only on rows
        ``k > i``; one high-to-low sweep with a small per-row fixpoint
        yields the least closure:

        * TRANS-ST: ``st[i] |= ⋃ st[k] for k ∈ st[i]``;
        * TRANS-MT: ``mt[i] |= (⋃ hb[k] for k ∈ hb[i]) ∩ diff-thread(i)``.
        """
        graph = self.graph
        st, mt = graph.st, graph.mt
        n = len(graph)
        for i in range(n - 1, -1, -1):
            diff = graph.diff_thread_mask(graph.node(i).thread)
            while True:
                st_row, mt_row = st[i], mt[i]
                st_new = st_row
                for k in bits(st_row):
                    st_new |= st[k]
                hb_row = st_new | mt_row
                comp = 0
                for k in bits(hb_row):
                    comp |= st[k] | mt[k]
                mt_new = mt_row | (comp & diff)
                if st_new == st_row and mt_new == mt_row:
                    break
                st[i], mt[i] = st_new, mt_new


def _index_task_ops(trace: ExecutionTrace, graph: HBGraph) -> Dict[str, List[int]]:
    """Map each task instance to the (deduplicated, ordered) node ids of the
    operations executed inside it — NOPRE quantifies over these."""
    out: Dict[str, List[int]] = {}
    for op in trace:
        name = trace.task_name_of(op.index)
        if name is None:
            continue
        nodes = out.setdefault(name, [])
        nid = graph.node_of_op[op.index]
        if not nodes or nodes[-1] != nid:
            nodes.append(nid)
    return out
