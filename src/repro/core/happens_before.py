"""The happens-before relation for Android traces (paper, Figures 6 and 7).

The relation ``≺`` is the union of two mutually recursive relations:

* ``≺st`` — *thread-local* happens-before, relating operations on the same
  thread (rules NO-Q-PO, ASYNC-PO, ENABLE-ST, POST-ST, FIFO, NOPRE,
  TRANS-ST);
* ``≺mt`` — *inter-thread* happens-before, relating operations on different
  threads (rules ATTACH-Q-MT, ENABLE-MT, POST-MT, FORK, JOIN, LOCK,
  TRANS-MT).

The decomposition is the paper's key precision device: TRANS-ST composes
only thread-local facts, and TRANS-MT only ever *emits* different-thread
pairs, so two asynchronous tasks on the same looper thread can never be
ordered through a lock-induced detour via another thread — locks record
*observed* order, not *necessary* order.  Cross-thread knowledge flows back
into the thread-local relation only through the FIFO and NOPRE rules, whose
premises quantify over the full ``≺``.

All rule instances point forward in trace order, so the graph is a DAG
compatible with the trace; we saturate the two transitivity rules in a
single high-to-low sweep over node rows (each row depends only on higher
rows) and re-run FIFO/NOPRE in an outer fixpoint until no new edges
appear.  Worst case matches the paper's cubic bound; bitmask rows make the
constant small.

The re-saturation after each outer round comes in two flavours,
selected by the ``saturation`` argument:

* ``"full"`` — re-sweep all ``n`` rows high-to-low (the original
  engine, kept as the differential-testing and ablation baseline);
* ``"incremental"`` (default) — after the one initial sweep, maintain a
  *closure predecessor index* (``pred[j]`` = bitmask of rows whose
  closure contains ``j``).  When FIFO/NOPRE/AT-FRONT insert an edge
  ``i → j``, only ``j``'s already-closed reachability is folded into
  row ``i`` and the resulting delta walks the dirty frontier backward
  through predecessors, touching exactly the rows whose closure
  actually changes.  Both flavours compute the same least fixpoint, so
  the ``st``/``mt`` rows are bit-for-bit identical.

:class:`HBConfig` exposes every rule as a switch; the presets in
:mod:`repro.core.baselines` turn the same engine into the classic
multithreaded detector, the single-threaded event-driven detector, and the
naive combination the paper argues against.
"""

from __future__ import annotations

import heapq
import itertools
import sys
from array import array
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from .graph import HBGraph, HBNode, iter_bits
from .operations import OpKind, Operation
from .reachability import (
    BACKEND_BITMASK,
    BACKEND_CHAINS,
    KERNEL_AUTO,
    KERNEL_PYTHON,
    KERNEL_WORDS,
    KERNELS,
    ChainIndex,
    fork_available,
    map_shards,
    resolve_kernel,
    shard_ranges,
    words_saturate_decomposed,
    words_saturate_plain,
)
from repro.obs import Tracer, current_tracer, use_tracer
from .trace import ExecutionTrace, TaskInfo

#: ``program_order`` settings.
PO_ANDROID = "android"  # NO-Q-PO + ASYNC-PO (the paper's rules)
PO_FULL = "full"  # classic per-thread total program order
PO_NONE = "none"

#: ``lock_edges`` settings.
LOCKS_CROSS_THREAD = "cross_thread"  # the paper's LOCK rule (t ≠ t')
LOCKS_ALL = "all"  # naive: also order same-thread critical sections
LOCKS_NONE = "none"

#: ``transitivity`` settings.
TRANS_DECOMPOSED = "decomposed"  # TRANS-ST / TRANS-MT as in the paper
TRANS_PLAIN = "plain"  # plain closure of the edge union

#: ``saturation`` settings (a performance knob — results are identical).
SAT_INCREMENTAL = "incremental"  # delta propagation via the predecessor index
SAT_FULL = "full"  # re-sweep every row after each outer round

#: ``backend`` settings (a memory/performance knob — results are identical;
#: re-exported from :mod:`repro.core.reachability`).
#: ``"bitmask"`` stores the closure as dense per-node successor bitmasks,
#: O(n²) bits; ``"chains"`` stores a per-node earliest-reachable-member
#: vector over the chain decomposition, O(n·C) ints.
BACKENDS = (BACKEND_BITMASK, BACKEND_CHAINS)


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process in bytes (0 where the
    ``resource`` module is unavailable).  Surfaced in :class:`ClosureStats`
    and the report ``closure`` block so the memory claims stay auditable
    at 100k-node scale — note it is a *process* high-water mark, so batch
    workers report the largest closure they ever held, not the current
    one."""
    try:
        import resource
    except ImportError:  # pragma: no cover — non-POSIX platforms
        return 0
    rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


@dataclass(frozen=True)
class HBConfig:
    """Rule switches for the happens-before engine.

    The default value of every field reproduces the paper's relation.
    """

    program_order: str = PO_ANDROID
    enable_edges: bool = True  # ENABLE-ST + ENABLE-MT
    post_edges: bool = True  # POST-ST + POST-MT
    attach_q_edge: bool = True  # ATTACH-Q-MT
    fifo: bool = True  # FIFO
    delayed_fifo: bool = True  # §4.2 delayed-post refinement of FIFO
    nopre: bool = True  # NOPRE
    fork_join: bool = True  # FORK + JOIN
    lock_edges: str = LOCKS_CROSS_THREAD
    transitivity: str = TRANS_DECOMPOSED
    #: EXTENSION (off by default — the paper defers post-to-the-front to
    #: future work): when a task K running on thread t posts p_o normally
    #: and later posts p_f at the front of t's own queue, p_f is ahead of
    #: the still-pending p_o in every schedule (t is busy running K while
    #: both are enqueued), so end(p_f) ≺st begin(p_o) is sound.
    front_post_rule: bool = False

    def __post_init__(self) -> None:
        if self.program_order not in (PO_ANDROID, PO_FULL, PO_NONE):
            raise ValueError("bad program_order %r" % self.program_order)
        if self.lock_edges not in (LOCKS_CROSS_THREAD, LOCKS_ALL, LOCKS_NONE):
            raise ValueError("bad lock_edges %r" % self.lock_edges)
        if self.transitivity not in (TRANS_DECOMPOSED, TRANS_PLAIN):
            raise ValueError("bad transitivity %r" % self.transitivity)


#: The paper's relation.
ANDROID_HB = HBConfig()


@dataclass
class HBStats:
    """Bookkeeping the benchmarks report (§6 'Performance')."""

    trace_length: int = 0
    node_count: int = 0
    reduction_ratio: float = 1.0
    st_edges: int = 0
    mt_edges: int = 0
    fifo_edges: int = 0
    nopre_edges: int = 0
    outer_iterations: int = 0
    #: Reachability-backend observability (satellite of the chains backend):
    #: which representation computed the closure, how many chains the
    #: decomposition produced (0 for bitmask), and how many bytes the final
    #: closure representation holds.
    backend: str = BACKEND_BITMASK
    chain_count: int = 0
    closure_memory_bytes: int = 0
    #: Chains coalesced away by the merge pass (0 for bitmask or with
    #: ``merge_chains=False``); ``chain_count`` is the post-merge count.
    chains_merged: int = 0
    #: Process peak RSS in bytes when the closure finished (0 where the
    #: ``resource`` module is unavailable).  Nondeterministic — excluded
    #: from report digests, like ``memory_bytes``.
    peak_rss_bytes: int = 0


#: The closure-statistics record under the name the detector/CLI layers
#: use for it ("closure stats" — :class:`HBStats` is the engine-internal
#: name kept for backward compatibility).
ClosureStats = HBStats


class HappensBefore:
    """Computes ``≺ = ≺st ∪ ≺mt`` over a trace and answers ordering queries.

    Parameters
    ----------
    trace:
        The execution trace to analyse.
    config:
        Rule switches; defaults to the paper's relation.
    coalesce:
        Apply the node-coalescing optimization (§6).  Disable to measure its
        effect (benchmark E3) — results are identical either way.
    saturation:
        ``"incremental"`` (default) re-closes only the dirty frontier after
        each FIFO/NOPRE round; ``"full"`` re-sweeps every row.  Both produce
        bit-for-bit identical ``st``/``mt`` rows — the switch exists so
        differential tests and ablation benchmarks can compare the paths.
    backend:
        ``"bitmask"`` (default) stores the closure as dense per-node
        successor bitmasks; ``"chains"`` stores the O(n·C) chain
        reachability index of :mod:`repro.core.reachability`.  Both answer
        every ordering query identically and derive the same rule edges in
        the same rounds — the switch trades closure memory (O(n²) bits vs
        O(n·C) ints) against per-query constants.
    kernel:
        Row-kernel selection for the full saturation sweeps: ``"python"``
        runs the original big-int / ``array('i')`` reference loops;
        ``"words"`` runs the word-batched kernels of
        :mod:`repro.core.reachability` (numpy fast path when importable,
        portable word arrays otherwise); ``"auto"`` (default) picks
        ``"words"`` exactly when numpy is available.  A pure performance
        knob — rows and reports are bit-identical either way.
    merge_chains:
        Run the pre-saturation chain-merging pass (chains backend only;
        default on).  Coalesces chains that remain totally ordered forever
        — see :meth:`ChainIndex.merge_compatible_chains` — shrinking the C
        in the O(n·C) bound.  Results are identical with it off; the knob
        exists for differential tests and ablation benchmarks.
    workers:
        Saturate full sweeps across this many forked worker processes
        (default 1 = serial).  Any worker count computes the same least
        fixpoint — rows and reports are byte-identical — and platforms
        without ``fork`` silently run serially.  Incremental round deltas
        stay serial (they touch few rows by design).
    """

    def __init__(
        self,
        trace: ExecutionTrace,
        config: HBConfig = ANDROID_HB,
        coalesce: bool = True,
        saturation: str = SAT_INCREMENTAL,
        backend: str = BACKEND_BITMASK,
        kernel: str = KERNEL_AUTO,
        merge_chains: bool = True,
        workers: int = 1,
    ):
        if saturation not in (SAT_INCREMENTAL, SAT_FULL):
            raise ValueError("bad saturation %r" % saturation)
        if backend not in BACKENDS:
            raise ValueError("bad backend %r" % backend)
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        self.trace = trace
        self.config = config
        self.saturation = saturation
        self.backend = backend
        self.kernel = resolve_kernel(kernel)
        self.merge_chains = merge_chains
        self.workers = workers
        tracer = current_tracer()
        with tracer.span("closure.graph", coalesce=coalesce, backend=backend) as sp:
            self.graph = HBGraph(trace, coalesce=coalesce, backend=backend)
            self._index: Optional[ChainIndex] = None
            if backend == BACKEND_CHAINS:
                self._index = ChainIndex(
                    self.graph,
                    config.program_order,
                    plain=config.transitivity == TRANS_PLAIN,
                    kernel=self.kernel,
                )
                self.graph.attach_index(self._index)
            sp.set(nodes=len(self.graph), ops=len(trace))
        self.stats = HBStats(
            trace_length=len(trace),
            node_count=len(self.graph),
            reduction_ratio=self.graph.reduction_ratio,
            backend=backend,
            chain_count=self._index.chain_count if self._index else 0,
        )
        with tracer.span("closure.premises"):
            self._task_ops = _index_task_ops(trace, self.graph)
            self._task_pair_list = self._build_task_pairs()
            self._round_edges: List[Tuple[int, int]] = []
            self._round_new: Set[Tuple[int, int]] = set()  # chains round edges
            # Every FIFO/NOPRE/AT-FRONT edge, as (src_node, dst_node).  The
            # counts already live in stats; the endpoints feed the near-miss
            # post-pass in explorer/suspicion.py (pairs ordered by exactly
            # one derived edge).  Rule-edge populations are tiny relative to
            # the closure, so keeping the list costs nothing measurable.
            self.rule_edges: List[Tuple[int, int]] = []
            self._pred_st: List[int] = []
            self._pred_mt: List[int] = []
            self._diff_by_node: List[int] = []
            self._build_rule_pendings()
        self._compute()

    # -- public queries -------------------------------------------------------

    def ordered(self, i: int, j: int) -> bool:
        """``α_i ≺ α_j`` for trace positions ``i``, ``j``."""
        return self.graph.ordered_ops(i, j)

    def unordered(self, i: int, j: int) -> bool:
        """Neither ``α_i ≺ α_j`` nor ``α_j ≺ α_i`` (the race condition)."""
        return not self.ordered(i, j) and not self.ordered(j, i)

    def ordered_nodes(self, a: int, b: int) -> bool:
        return self.graph.ordered(a, b)

    # -- rule application -------------------------------------------------------

    def _compute(self) -> None:
        tracer = current_tracer()
        with tracer.span("closure.static_edges"):
            self._add_static_edges()
        if self._index is not None and self.merge_chains:
            # Merging needs the static st edges (they are the bridge
            # criterion) and must precede the first saturation (the pass
            # reallocates the reach rows; ``saturate`` re-seeds them from
            # the retained adjacency).
            with tracer.span("closure.merge_chains") as merge_span:
                merged = self._index.merge_compatible_chains()
                merge_span.set(merged=merged, chains=self._index.chain_count)
            self.stats.chain_count = self._index.chain_count
            self.stats.chains_merged = merged
        with tracer.span(
            "closure.saturate",
            backend=self.backend,
            saturation=self.saturation,
            kernel=self.kernel,
            workers=self.workers,
        ):
            self._saturate()
        incremental = self.saturation == SAT_INCREMENTAL
        index = self._index
        if incremental and index is None:
            with tracer.span("closure.pred_index"):
                self._build_pred_index()
        # FIFO and NOPRE premises consult the full ≺, so they are applied in
        # an outer fixpoint: each round may enable further rounds.
        for iteration in itertools.count(1):
            self.stats.outer_iterations = iteration
            self._round_edges.clear()
            self._round_new.clear()
            changed = False
            with tracer.span("closure.round", iteration=iteration) as round_span:
                if self.config.fifo:
                    changed |= self._apply_fifo()
                if self.config.nopre:
                    changed |= self._apply_nopre()
                if self.config.front_post_rule:
                    changed |= self._apply_front_posts()
                round_span.set(edges=len(self._round_edges))
                if not changed:
                    break
                with tracer.span("closure.resaturate", iteration=iteration):
                    if index is not None:
                        # Rule applications deferred their index writes
                        # (premise queries must read the start-of-round
                        # closure); seed the round's edges now and re-close.
                        if incremental:
                            index.saturate_delta(
                                self._round_edges, workers=self.workers
                            )
                        else:
                            index.apply_edges(self._round_edges)
                            index.saturate(workers=self.workers)
                    elif incremental:
                        self._saturate_delta(self._round_edges)
                    else:
                        self._saturate()
        self.stats.st_edges, self.stats.mt_edges = self.graph.edge_count()
        self.stats.closure_memory_bytes = self._closure_memory_bytes()
        self.stats.peak_rss_bytes = peak_rss_bytes()
        tracer.count("closure.builds")
        tracer.count("closure.rounds", self.stats.outer_iterations)
        tracer.count("closure.fifo_edges", self.stats.fifo_edges)
        tracer.count("closure.nopre_edges", self.stats.nopre_edges)
        # Gauges merge as max across worker processes: these read as the
        # largest closure a run (or batch) built.
        tracer.gauge("closure.nodes", self.stats.node_count)
        tracer.gauge("closure.memory_bytes", self.stats.closure_memory_bytes)
        tracer.gauge("closure.peak_rss_bytes", self.stats.peak_rss_bytes)

    def _closure_memory_bytes(self) -> int:
        """Resident bytes of the closure representation *and* the indexes
        kept alive to maintain it: the bitmask-incremental engine retains
        the closure predecessor rows (another O(n²) bits) alongside the
        ``st``/``mt`` rows; the chain index's total is its reach table
        plus adjacency/chain bookkeeping."""
        total = self.graph.memory_bytes()
        if self._pred_st:
            total += sys.getsizeof(self._pred_st) + sys.getsizeof(self._pred_mt)
            for row in self._pred_st:
                total += sys.getsizeof(row)
            for row in self._pred_mt:
                total += sys.getsizeof(row)
        return total

    def _add_static_edges(self) -> None:
        cfg = self.config
        graph = self.graph
        trace = self.trace

        self._add_program_order()

        enables: Dict[str, List[int]] = {}  # enable name -> enable nodes
        forks: Dict[str, int] = {}
        exits: Dict[str, int] = {}
        releases: Dict[str, List[int]] = {}  # lock -> release nodes

        for node in graph.nodes:
            kind = node.kind
            if kind is None:
                continue
            op = node.op
            nid = node.node_id
            if kind is OpKind.ENABLE and cfg.enable_edges:
                enables.setdefault(op.task, []).append(nid)
            elif kind is OpKind.POST:
                if cfg.enable_edges:
                    # ENABLE-ST / ENABLE-MT: every prior enable of this
                    # task — matched by task-instance name, or by the
                    # ``event`` tag naming the enabling operation.
                    keys = {op.task}
                    if op.event:
                        keys.add(op.event)
                    for key in keys:
                        for src in enables.get(key, ()):
                            self._add_edge(src, nid)
                info = trace.tasks.get(op.task)
                if cfg.post_edges and info and info.begin_index is not None:
                    self._add_edge(nid, graph.node_of_op[info.begin_index])
                if cfg.attach_q_edge:
                    attach = trace.attach_index.get(op.target)
                    if attach is not None and attach < op.index:
                        src = graph.node_of_op[attach]
                        if graph.node(src).thread != node.thread:
                            self._add_edge(src, nid)
            elif kind is OpKind.FORK and cfg.fork_join:
                forks[op.target] = nid
            elif kind is OpKind.THREAD_INIT and cfg.fork_join:
                src = forks.get(op.thread)
                if src is not None:
                    self._add_edge(src, nid)
            elif kind is OpKind.THREAD_EXIT and cfg.fork_join:
                exits[op.thread] = nid
            elif kind is OpKind.JOIN and cfg.fork_join:
                src = exits.get(op.target)
                if src is not None:
                    self._add_edge(src, nid)
            elif kind is OpKind.RELEASE and cfg.lock_edges != LOCKS_NONE:
                releases.setdefault(op.lock, []).append(nid)
            elif kind is OpKind.ACQUIRE and cfg.lock_edges != LOCKS_NONE:
                for rel in releases.get(op.lock, ()):  # all earlier releases
                    rel_thread = graph.node(rel).thread
                    if cfg.lock_edges == LOCKS_ALL or rel_thread != node.thread:
                        self._add_edge(rel, nid)

    def _add_program_order(self) -> None:
        """NO-Q-PO and ASYNC-PO (or classic total program order).

        Only *adjacent* edges are inserted; transitivity supplies the rest.
        NO-Q-PO relates a pre-``loopOnQ`` operation to **every** later
        operation of its thread, so the last pre-loop node gets an edge to
        each subsequent task's begin (adjacency within a task then covers
        the task bodies via TRANS-ST).
        """
        mode = self.config.program_order
        if mode == PO_NONE:
            return
        graph = self.graph
        trace = self.trace
        last_on_thread: Dict[str, int] = {}
        last_preloop: Dict[str, int] = {}
        last_in_task: Dict[Tuple[str, str], int] = {}
        for node in graph.nodes:
            nid = node.node_id
            thread = node.thread
            if mode == PO_FULL:
                prev = last_on_thread.get(thread)
                if prev is not None:
                    self._add_edge(prev, nid, force_st=True)
                last_on_thread[thread] = nid
                continue
            # PO_ANDROID
            looped = trace.looped_before(thread, node.first_index)
            if not looped:
                prev = last_preloop.get(thread)
                if prev is not None:
                    self._add_edge(prev, nid, force_st=True)
                last_preloop[thread] = nid
            else:
                pre = last_preloop.get(thread)
                if pre is not None:
                    # NO-Q-PO: every pre-loop op precedes every later op on
                    # the thread.  Adjacency: edge from the last pre-loop
                    # node to each task entry suffices via transitivity.
                    self._add_edge(pre, nid, force_st=True)
                if node.task is not None:
                    key = (thread, node.task)
                    prev = last_in_task.get(key)
                    if prev is not None:
                        self._add_edge(prev, nid, force_st=True)
                    last_in_task[key] = nid

    def _build_rule_pendings(self) -> None:
        """Hoist every trace-static rule premise out of the outer loop.

        FIFO applicability (delay/at-front compatibility), NOPRE's post
        node and task-operation list, and all of AT-FRONT's structural
        premises depend only on the trace, so each rule gets a precomputed
        work list.  The lists shrink as the fixpoint runs: once a pair is
        happens-before ordered it stays ordered (the relation only grows),
        so satisfied entries are dropped instead of being re-checked every
        round."""
        cfg = self.config
        trace = self.trace
        node_of_op = self.graph.node_of_op
        fifo: List[Tuple[int, int, int, int]] = []
        nopre: List[Tuple[int, int, int, Tuple[int, ...], int]] = []
        front: List[Tuple[int, int]] = []
        ops_masks: Dict[str, int] = {}
        for end_node, begin_node, t1, t2 in self._task_pair_list:
            if cfg.fifo and self._fifo_applicable(t1, t2):
                p1 = node_of_op[t1.post_index]
                p2 = node_of_op[t2.post_index]
                # Edges only ever point forward, so ``post(p1) ≺ post(p2)``
                # is unsatisfiable when ``p1 > p2`` — drop such pairs now.
                if p1 <= p2:
                    fifo.append((end_node, begin_node, p1, p2))
            if cfg.nopre and t2.post_index is not None:
                task_ops = tuple(self._task_ops.get(t1.name, ()))
                mask = ops_masks.get(t1.name)
                if mask is None:
                    mask = 0
                    for k in task_ops:
                        mask |= 1 << k
                    ops_masks[t1.name] = mask
                nopre.append(
                    (end_node, begin_node, node_of_op[t2.post_index], task_ops, mask)
                )
            if cfg.front_post_rule and self._front_post_applicable(t1, t2):
                front.append((end_node, begin_node))
        self._fifo_pending = fifo
        self._nopre_pending = nopre
        self._front_pending = front

    def _apply_fifo(self) -> bool:
        """FIFO (Figure 6) with the §4.2 delayed-post refinement."""
        if self._index is not None:
            return self._apply_fifo_chains(self._index)
        changed = False
        st, mt = self.graph.st, self.graph.mt
        still: List[Tuple[int, int, int, int]] = []
        last_end = -1
        end_row = 0
        for pair in self._fifo_pending:
            end_node, begin_node, p1, p2 = pair
            # ``end < begin`` and ``p1 <= p2`` by construction, so the
            # ``ordered`` queries reduce to inlined row-bit tests (hot loop).
            # Pairs sharing an end node are adjacent, so its row is fetched
            # once per run — but refetched after every insertion, which may
            # extend the very row under test.
            if end_node != last_end:
                last_end = end_node
                end_row = st[end_node] | mt[end_node]
            if end_row >> begin_node & 1:
                continue  # already ordered — and orderings never retract
            if p1 == p2 or (st[p1] | mt[p1]) >> p2 & 1:
                if self._add_edge_checked_st(end_node, begin_node):
                    self.stats.fifo_edges += 1
                    changed = True
                    last_end = -1
                continue
            still.append(pair)
        self._fifo_pending = still
        return changed

    def _apply_fifo_chains(self, index: ChainIndex) -> bool:
        """FIFO over the chain index.  Premise queries read the
        start-of-round closure (``index.ordered`` — round edges are not
        seeded until the round ends); the skip check additionally consults
        ``_round_new``, which plays the role the raw in-round row bits play
        in the bitmask loop.  The two loops derive identical edges: an
        in-round raw bit always targets a *begin* node, and premise pairs
        always target *post* nodes, so only the skip check can ever observe
        the current round."""
        changed = False
        round_new = self._round_new
        still: List[Tuple[int, int, int, int]] = []
        for pair in self._fifo_pending:
            end_node, begin_node, p1, p2 = pair
            if (
                index.ordered(end_node, begin_node)
                or (end_node, begin_node) in round_new
            ):
                continue  # already ordered — and orderings never retract
            if p1 == p2 or index.ordered(p1, p2):
                if self._add_edge_checked_st(end_node, begin_node):
                    self.stats.fifo_edges += 1
                    changed = True
                continue
            still.append(pair)
        self._fifo_pending = still
        return changed

    def _fifo_applicable(self, t1: TaskInfo, t2: TaskInfo) -> bool:
        if t1.post_index is None or t2.post_index is None:
            return False
        if t1.at_front or t2.at_front:
            # Post-to-the-front overrides FIFO; the paper defers its
            # treatment to future work, so we conservatively derive nothing.
            return False
        if not self.config.delayed_fifo:
            return not t1.is_delayed and not t2.is_delayed
        if not t1.is_delayed:
            return True  # (base FIFO) or (a): β_j may or may not be delayed
        return t2.is_delayed and (t1.delay or 0) <= (t2.delay or 0)  # (b)

    def _apply_nopre(self) -> bool:
        """NOPRE (Figure 6): ``end(t,p1) ≺st begin(t,p2)`` if some operation
        of task ``p1`` happens-before ``post(_,p2,t)``.

        With the predecessor index available (incremental saturation), the
        existential premise collapses to one bitmask intersection:
        ``ops(p1) ∩ pred(post)`` plus the reflexive ``post ∈ ops(p1)`` case.
        Both tests read the closure as of the start of the round — edges
        inserted earlier in the same round always target *begin* nodes, so
        they can never satisfy a premise about a *post* node, and the two
        code paths agree bit for bit.
        """
        if self._index is not None:
            return self._apply_nopre_chains(self._index)
        changed = False
        st, mt = self.graph.st, self.graph.mt
        use_pred = self.saturation == SAT_INCREMENTAL and bool(self._pred_st)
        pred_st, pred_mt = self._pred_st, self._pred_mt
        pred_union: Dict[int, int] = {}  # post node -> pred_st | pred_mt
        still: List[Tuple[int, int, int, Tuple[int, ...], int]] = []
        last_end = -1
        end_row = 0
        for entry in self._nopre_pending:
            end_node, begin_node, post_node, task_ops, ops_mask = entry
            if end_node != last_end:
                last_end = end_node
                end_row = st[end_node] | mt[end_node]
            if end_row >> begin_node & 1:
                continue  # already ordered — and orderings never retract
            if use_pred:
                preds = pred_union.get(post_node)
                if preds is None:
                    preds = pred_st[post_node] | pred_mt[post_node]
                    pred_union[post_node] = preds
                derived = bool(ops_mask >> post_node & 1 or ops_mask & preds)
            else:
                derived = False
                for k in task_ops:  # nodes of task p1
                    # ``≺`` is reflexive, so the post op itself (when
                    # executed inside p1) witnesses the rule.
                    if k == post_node or (
                        k < post_node and (st[k] | mt[k]) >> post_node & 1
                    ):
                        derived = True
                        break
            if derived:
                if self._add_edge_checked_st(end_node, begin_node):
                    self.stats.nopre_edges += 1
                    changed = True
                    last_end = -1
                continue
            still.append(entry)
        self._nopre_pending = still
        return changed

    def _apply_nopre_chains(self, index: ChainIndex) -> bool:
        """NOPRE over the chain index: the existential premise is one O(1)
        ``index.ordered`` query per task operation (no predecessor index is
        needed — or maintained — in chains mode).  Same round discipline as
        :meth:`_apply_fifo_chains`."""
        changed = False
        round_new = self._round_new
        still: List[Tuple[int, int, int, Tuple[int, ...], int]] = []
        for entry in self._nopre_pending:
            end_node, begin_node, post_node, task_ops, _ops_mask = entry
            if (
                index.ordered(end_node, begin_node)
                or (end_node, begin_node) in round_new
            ):
                continue  # already ordered — and orderings never retract
            derived = False
            for k in task_ops:  # nodes of task p1
                # ``≺`` is reflexive, so the post op itself (when executed
                # inside p1) witnesses the rule.
                if k == post_node or (k < post_node and index.ordered(k, post_node)):
                    derived = True
                    break
            if derived:
                if self._add_edge_checked_st(end_node, begin_node):
                    self.stats.nopre_edges += 1
                    changed = True
                continue
            still.append(entry)
        self._nopre_pending = still
        return changed

    def _apply_front_posts(self) -> bool:
        """AT-FRONT (extension, see :class:`HBConfig.front_post_rule`)."""
        changed = False
        graph = self.graph
        round_new = self._round_new
        for end_node, begin_node in self._front_pending:
            if self._index is not None:
                if (
                    self._index.ordered(end_node, begin_node)
                    or (end_node, begin_node) in round_new
                ):
                    continue
            elif graph.ordered(end_node, begin_node):
                continue
            if self._add_edge_checked_st(end_node, begin_node):
                changed = True
        # All premises are static, so every edge is derived on the first
        # application; nothing is ever worth retrying.
        self._front_pending = []
        return changed

    def _front_post_applicable(self, t1: TaskInfo, t2: TaskInfo) -> bool:
        """Premises for ``end(t, p_f) ≺st begin(t, p_o)``:

        * ``p_f`` posted at the front, ``p_o`` posted normally,
        * both posts executed *inside the same task K running on t* with
          ``post(p_o)`` before ``post(p_f)`` (program order) — so while
          both are pending, ``t`` is busy running K, and the barged
          ``p_f`` is dequeued first in every schedule.
        """
        trace = self.trace
        # t1 = the earlier-ending task (p_f), t2 = the later one (p_o).
        if not t1.at_front or t2.at_front:
            return False
        if t1.post_index is None or t2.post_index is None:
            return False
        if t2.post_index > t1.post_index:
            return False  # p_o must already be pending when p_f barges
        poster_task = trace.task_name_of(t1.post_index)
        if poster_task is None or trace.task_name_of(t2.post_index) != poster_task:
            return False
        if trace[t1.post_index].thread != t1.thread:
            return False  # the posting task must run on the target thread
        return True

    def _build_task_pairs(self) -> List[Tuple[int, int, TaskInfo, TaskInfo]]:
        """``(end-node(p1), begin-node(p2), info1, info2)`` for ordered pairs
        of distinct tasks on the same looper thread with
        ``index(end(p1)) < index(begin(p2))``.

        The list depends only on the trace and the node map, so it is built
        once here — FIFO, NOPRE, and AT-FRONT previously re-derived and
        re-sorted it on every application in every outer iteration."""
        per_thread: Dict[str, List[TaskInfo]] = {}
        for info in self.trace.tasks.values():
            if info.begin_index is not None and info.thread is not None:
                per_thread.setdefault(info.thread, []).append(info)
        pairs: List[Tuple[int, int, TaskInfo, TaskInfo]] = []
        node_of_op = self.graph.node_of_op
        for infos in per_thread.values():
            infos.sort(key=lambda info: info.begin_index)
            for a, b in itertools.combinations(infos, 2):
                if a.end_index is None or a.end_index > b.begin_index:
                    continue
                pairs.append(
                    (node_of_op[a.end_index], node_of_op[b.begin_index], a, b)
                )
        return pairs

    # -- edge insertion and closure --------------------------------------------

    def _add_edge(self, i: int, j: int, force_st: bool = False) -> bool:
        """Insert a base edge, classifying it as st or mt by thread equality
        (plain mode stores everything in one relation via st)."""
        if i == j:
            return False
        if i > j:
            raise AssertionError(
                "HB rule produced a backward edge %d -> %d; every rule "
                "requires i < j" % (i, j)
            )
        same = self.graph.node(i).thread == self.graph.node(j).thread
        if self.config.transitivity == TRANS_PLAIN:
            return self.graph.add_st(i, j)
        if force_st or same:
            return self.graph.add_st(i, j)
        return self.graph.add_mt(i, j)

    def _add_edge_checked_st(self, i: int, j: int) -> bool:
        if self.graph.node(i).thread != self.graph.node(j).thread:
            raise AssertionError("FIFO/NOPRE edges are thread-local by rule")
        if self._index is not None:
            # Defer the index write to the end of the round (premise
            # queries must read the start-of-round closure); the rule
            # loops' skip checks already guarantee the edge is new.
            key = (i, j)
            if self._index.ordered(i, j) or key in self._round_new:
                return False
            self._round_new.add(key)
            self._round_edges.append(key)
            self.rule_edges.append(key)
            return True
        if self.graph.add_st(i, j):
            self._round_edges.append((i, j))
            self.rule_edges.append((i, j))
            return True
        return False

    def _saturate(self) -> None:
        if self._index is not None:
            self._index.saturate(workers=self.workers)
        elif self.config.transitivity == TRANS_PLAIN:
            self._saturate_plain()
        else:
            self._saturate_decomposed()

    def _saturate_plain(self) -> None:
        """Plain reachability closure of the edge union (naive baseline).

        With ``workers > 1`` the sweep shards across forked processes;
        under the ``"words"`` kernel it runs word-batched — both compute
        the identical least fixpoint (see :mod:`repro.core.reachability`).
        """
        if self.workers > 1 and self._saturate_bitmask_sharded(plain=True):
            return
        if self.kernel == KERNEL_WORDS:
            words_saturate_plain(self.graph)
            return
        st = self.graph.st
        for i in range(len(st) - 1, -1, -1):
            row = st[i]
            closure = row
            for k in iter_bits(row):
                closure |= st[k]
            st[i] = closure

    def _saturate_decomposed(self) -> None:
        """Saturate TRANS-ST and TRANS-MT.

        Because every edge points forward, row ``i`` depends only on rows
        ``k > i``; one high-to-low sweep with a small per-row fixpoint
        yields the least closure:

        * TRANS-ST: ``st[i] |= ⋃ st[k] for k ∈ st[i]``;
        * TRANS-MT: ``mt[i] |= (⋃ hb[k] for k ∈ hb[i]) ∩ diff-thread(i)``.

        With ``workers > 1`` the sweep shards across forked processes;
        under the ``"words"`` kernel it runs word-batched — both compute
        the identical least fixpoint (see :mod:`repro.core.reachability`).
        """
        if self.workers > 1 and self._saturate_bitmask_sharded(plain=False):
            return
        if self.kernel == KERNEL_WORDS:
            words_saturate_decomposed(self.graph)
            return
        graph = self.graph
        st, mt = graph.st, graph.mt
        n = len(graph)
        for i in range(n - 1, -1, -1):
            diff = graph.diff_thread_mask(graph.node(i).thread)
            while True:
                st_row, mt_row = st[i], mt[i]
                st_new = st_row
                for k in iter_bits(st_row):
                    st_new |= st[k]
                hb_row = st_new | mt_row
                comp = 0
                for k in iter_bits(hb_row):
                    comp |= st[k] | mt[k]
                mt_new = mt_row | (comp & diff)
                if st_new == st_row and mt_new == mt_row:
                    break
                st[i], mt[i] = st_new, mt_new

    # -- process-sharded full sweeps (bitmask backend) -------------------------

    def _close_bitmask_row(self, i: int, plain: bool) -> bool:
        """Re-close one bitmask row against the current global rows; returns
        True if the row changed.  A re-close recomputes the full fold from
        the row's member rows, so unlike the chain index no ``gained``
        bookkeeping is needed: the result changes only if a member row
        changed since the last visit."""
        graph = self.graph
        st = graph.st
        if plain:
            row = st[i]
            closure = row
            for k in iter_bits(row):
                closure |= st[k]
            if closure == row:
                return False
            st[i] = closure
            return True
        mt = graph.mt
        diff = graph.diff_thread_mask(graph.node(i).thread)
        changed = False
        while True:
            st_row, mt_row = st[i], mt[i]
            st_new = st_row
            for k in iter_bits(st_row):
                st_new |= st[k]
            hb_row = st_new | mt_row
            comp = 0
            for k in iter_bits(hb_row):
                comp |= st[k] | mt[k]
            mt_new = mt_row | (comp & diff)
            if st_new == st_row and mt_new == mt_row:
                return changed
            st[i], mt[i] = st_new, mt_new
            changed = True

    def _close_bitmask_shard(
        self,
        lo: int,
        hi: int,
        dirty: Optional[List[int]],
        plain: bool,
        collect_obs: bool,
    ):
        """Worker body for one shard of a sharded full sweep: close this
        range's (dirty) rows high-to-low against the forked row snapshot
        and ship the changed rows home as fixed-width little-endian bytes
        (+ an optional tracer snapshot, merged into the parent's pass
        span — the corpus ``BatchAnalyzer`` worker discipline)."""
        if dirty is None:
            rows: object = range(hi - 1, lo - 1, -1)
            count = hi - lo
        else:
            rows = [i for i in reversed(dirty) if lo <= i < hi]
            count = len(rows)
        tracer = Tracer() if collect_obs else current_tracer()
        changed = array("i")
        with use_tracer(tracer):
            with tracer.span("closure.shard", lo=lo, hi=hi, rows=count):
                for i in rows:
                    if self._close_bitmask_row(i, plain):
                        changed.append(i)
        graph = self.graph
        width = (len(graph) + 7) // 8 or 1
        st, mt = graph.st, graph.mt
        parts: List[bytes] = []
        for i in changed:
            parts.append(st[i].to_bytes(width, "little"))
            if not plain:
                parts.append(mt[i].to_bytes(width, "little"))
        obs = tracer.snapshot() if collect_obs else None
        return changed.tobytes(), b"".join(parts), obs

    def _bitmask_dirty_rows(self, changed: List[int], plain: bool) -> List[int]:
        """Rows whose next re-close could gain facts: anything whose closure
        already reaches a row that changed in the last pass."""
        graph = self.graph
        st, mt = graph.st, graph.mt
        changed_mask = 0
        for i in changed:
            changed_mask |= 1 << i
        if plain:
            return [i for i in range(len(graph)) if st[i] & changed_mask]
        return [i for i in range(len(graph)) if (st[i] | mt[i]) & changed_mask]

    def _saturate_bitmask_sharded(self, plain: bool) -> bool:
        """Shard a full bitmask sweep by contiguous row range; returns True
        when the sharded path ran to the fixpoint (False → caller runs the
        serial sweep).

        Pass 1 closes every shard against the pre-sweep rows (forked
        copy-on-write snapshots — nothing is shipped into a worker); each
        later pass re-closes only the rows whose closure reaches a row the
        previous pass changed.  Rows move monotonically toward the unique
        least fixpoint, so any worker count — and a mid-run pool failure
        finished serially — yields byte-identical rows."""
        graph = self.graph
        n = len(graph)
        ranges = shard_ranges(n, self.workers)
        if len(ranges) < 2 or not fork_available():
            return False
        tracer = current_tracer()
        st, mt = graph.st, graph.mt
        width = (n + 7) // 8 or 1
        stride = width if plain else 2 * width
        dirty: Optional[List[int]] = None  # None: pass 1 closes every row
        pass_no = 0
        while True:
            pass_no += 1
            with tracer.span(
                "closure.shard_pass",
                index=pass_no,
                shards=len(ranges),
                rows=n if dirty is None else len(dirty),
            ) as span:
                collect = tracer.enabled
                results = map_shards(
                    lambda lo, hi: self._close_bitmask_shard(
                        lo, hi, dirty, plain, collect
                    ),
                    ranges,
                )
                if results is None:
                    span.set(fallback=True)
                    if pass_no == 1:
                        return False  # nothing ran; caller sweeps serially
                    self._finish_bitmask_serial(dirty, plain)
                    return True
                changed: List[int] = []
                for ids_bytes, payload, obs in results:
                    if obs is not None:
                        tracer.merge(obs, parent=span)
                    ids = array("i")
                    ids.frombytes(ids_bytes)
                    for k, i in enumerate(ids):
                        off = k * stride
                        st[i] = int.from_bytes(payload[off : off + width], "little")
                        if not plain:
                            mt[i] = int.from_bytes(
                                payload[off + width : off + stride], "little"
                            )
                    changed.extend(ids)
                span.set(changed=len(changed))
            if not changed:
                return True
            dirty = self._bitmask_dirty_rows(changed, plain)
            if not dirty:
                return True

    def _finish_bitmask_serial(self, dirty: List[int], plain: bool) -> None:
        """Complete the sharded fixpoint in-process after a pool failure
        (sound: partial rows sit on the monotone path to the unique least
        fixpoint, and this delta loop closes the remaining gap)."""
        while dirty:
            changed = [i for i in reversed(dirty) if self._close_bitmask_row(i, plain)]
            if not changed:
                return
            dirty = self._bitmask_dirty_rows(changed, plain)

    # -- incremental delta saturation ------------------------------------------

    def _build_pred_index(self) -> None:
        """Invert the closed rows: ``pred_st[j]``/``pred_mt[j]`` hold the
        rows whose st/mt closure contains ``j``.  Built once after the
        initial sweep; kept up to date by :meth:`_saturate_delta`."""
        graph = self.graph
        st, mt = graph.st, graph.mt
        n = len(graph)
        pred_st = [0] * n
        pred_mt = [0] * n
        for i in range(n):
            ibit = 1 << i
            row = st[i]
            while row:
                low = row & -row
                pred_st[low.bit_length() - 1] |= ibit
                row ^= low
            row = mt[i]
            while row:
                low = row & -row
                pred_mt[low.bit_length() - 1] |= ibit
                row ^= low
        self._pred_st = pred_st
        self._pred_mt = pred_mt
        self._diff_by_node = [
            graph.diff_thread_mask(node.thread) for node in graph.nodes
        ]

    def _saturate_delta(self, edges: List[Tuple[int, int]]) -> None:
        """Re-close the relation after the outer round inserted ``edges``.

        Rather than re-sweeping all ``n`` rows, the new facts are propagated
        backward through the closure predecessor index:

        * *seed* — each new edge ``u → v`` marks bit ``v`` as an unexpanded
          ("fresh") member of row ``u`` (the rule application already set the
          raw bit);
        * *expand* — a dirty row folds in the reachability of its fresh
          members.  Members reached through ``st`` are on the row's own
          thread, so their rows contribute wholesale (``st[m]`` to st,
          ``mt[m]`` to mt); members reached through ``mt`` contribute
          ``(st[m] | mt[m]) & diff-thread`` and may surface further members
          that need expanding — the same inner fixpoint the full sweep runs,
          restricted to the frontier;
        * *propagate* — the row's accumulated delta is pushed into every
          closure predecessor that lacks any of it, which dirties those rows
          in turn.

        Rows are processed highest-first: all edges point forward, so a
        row's members are final by the time it expands, and each row is
        processed at most once per round.  The result is the same least
        fixpoint the full sweep computes — bit-for-bit identical rows.
        """
        graph = self.graph
        st, mt = graph.st, graph.mt
        pred_st, pred_mt = self._pred_st, self._pred_mt
        diff_by_node = self._diff_by_node
        n = len(graph.nodes)
        fresh = [0] * n  # row -> member bits not yet expanded
        delta_st = [0] * n  # row -> st bits gained this round
        delta_mt = [0] * n
        heap: List[int] = []
        queued = bytearray(n)

        def touch(w: int, st_gain: int, mt_gain: int) -> None:
            # ``w``'s rows already contain the gains; register them for
            # expansion/propagation and keep the predecessor index current.
            wbit = 1 << w
            if st_gain:
                delta_st[w] |= st_gain
                row = st_gain
                while row:
                    low = row & -row
                    pred_st[low.bit_length() - 1] |= wbit
                    row ^= low
            if mt_gain:
                delta_mt[w] |= mt_gain
                row = mt_gain
                while row:
                    low = row & -row
                    pred_mt[low.bit_length() - 1] |= wbit
                    row ^= low
            fresh[w] |= st_gain | mt_gain
            if not queued[w]:
                queued[w] = 1
                heapq.heappush(heap, -w)

        for u, v in edges:
            touch(u, 1 << v, 0)

        while heap:
            x = -heapq.heappop(heap)
            if not queued[x]:
                continue  # stale duplicate entry
            queued[x] = 0

            # Expand: close row x over its fresh members.  Only additions to
            # the mt row can surface members whose own reachability is not
            # already covered (an st member's rows are folded in wholesale,
            # and everything an st member reaches through st is inside its
            # already-closed row), hence only mt gains re-enter ``pending``.
            pending = fresh[x]
            fresh[x] = 0
            st_row, mt_row = st[x], mt[x]
            diff = diff_by_node[x]
            st_gain_total = 0
            mt_gain_total = 0
            expanded = 0
            while pending:
                comp_st = 0
                comp_hb = 0
                members = pending
                while members:
                    low = members & -members
                    members ^= low
                    m = low.bit_length() - 1
                    if st_row & low:
                        comp_st |= st[m]
                        comp_hb |= mt[m]
                    else:
                        comp_hb |= st[m] | mt[m]
                expanded |= pending
                st_new = comp_st & ~st_row
                mt_new = comp_hb & diff & ~mt_row
                st_row |= st_new
                mt_row |= mt_new
                st_gain_total |= st_new
                mt_gain_total |= mt_new
                pending = mt_new & ~expanded
            if st_gain_total or mt_gain_total:
                st[x], mt[x] = st_row, mt_row
                xbit = 1 << x
                row = st_gain_total
                while row:
                    low = row & -row
                    pred_st[low.bit_length() - 1] |= xbit
                    row ^= low
                row = mt_gain_total
                while row:
                    low = row & -row
                    pred_mt[low.bit_length() - 1] |= xbit
                    row ^= low

            dst = delta_st[x] | st_gain_total
            dmt = delta_mt[x] | mt_gain_total
            delta_st[x] = delta_mt[x] = 0
            dhb = dst | dmt
            if not dhb:
                continue

            # Propagate: fold x's delta into every closure predecessor.  An
            # st predecessor shares x's thread, so ``dmt`` is already inside
            # its diff-thread mask; an mt predecessor takes the whole delta
            # through its own mask.
            preds = pred_st[x]
            while preds:
                low = preds & -preds
                preds ^= low
                w = low.bit_length() - 1
                st_gain = dst & ~st[w]
                mt_gain = dmt & ~mt[w]
                if st_gain or mt_gain:
                    st[w] |= st_gain
                    mt[w] |= mt_gain
                    touch(w, st_gain, mt_gain)
            preds = pred_mt[x]
            while preds:
                low = preds & -preds
                preds ^= low
                w = low.bit_length() - 1
                gain = dhb & diff_by_node[w] & ~mt[w]
                if gain:
                    mt[w] |= gain
                    touch(w, 0, gain)


def _index_task_ops(trace: ExecutionTrace, graph: HBGraph) -> Dict[str, List[int]]:
    """Map each task instance to the (deduplicated, ordered) node ids of the
    operations executed inside it — NOPRE quantifies over these."""
    out: Dict[str, List[int]] = {}
    for op in trace:
        name = trace.task_name_of(op.index)
        if name is None:
            continue
        nodes = out.setdefault(name, [])
        nid = graph.node_of_op[op.index]
        if not nodes or nodes[-1] != nid:
            nodes.append(nid)
    return out
