"""Component lifecycle state machines (paper, Figure 8 and §4.2).

The Android runtime invokes lifecycle callbacks of application components
in a specific order; the paper models this with a state machine per
component type (Figure 8 shows the Activity machine) and exploits it to
place ``enable`` operations: if callback ``C2`` may happen after ``C1``,
the trace of ``C1`` contains ``enable(_, C2)``.

``MUST`` edges are taken in every execution that leaves the source state;
``MAY`` edges are taken in some executions — and there is no execution in
which the target occurs before the source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple


class EdgeKind(enum.Enum):
    MUST = "must"
    MAY = "may"


@dataclass(frozen=True)
class LifecycleEdge:
    source: str
    target: str
    kind: EdgeKind


class LifecycleError(RuntimeError):
    """An attempted callback violates the component's lifecycle machine."""


class LifecycleMachine:
    """A lifecycle state machine instance.

    States and callbacks share one namespace (as in Figure 8, where the
    gray nodes are states and the rest are callbacks); the machine tracks
    the current node and validates each advance.
    """

    def __init__(self, name: str, initial: str, edges: Iterable[LifecycleEdge]):
        self.name = name
        self.initial = initial
        self.current = initial
        self.history: List[str] = [initial]
        self._edges: Dict[str, List[LifecycleEdge]] = {}
        for edge in edges:
            self._edges.setdefault(edge.source, []).append(edge)

    def successors(self, node: Optional[str] = None) -> List[str]:
        """Nodes reachable in one step from ``node`` (default: current)."""
        source = self.current if node is None else node
        return [edge.target for edge in self._edges.get(source, ())]

    def enabled_callbacks(self) -> List[str]:
        """Callbacks the environment may now schedule — exactly the set for
        which ``enable`` operations are emitted (§4.2), skipping over
        non-callback states."""
        out: List[str] = []
        stack = [self.current]
        seen = set(stack)
        while stack:
            node = stack.pop()
            for target in self.successors(node):
                if target in seen:
                    continue
                seen.add(target)
                if target in self.states:
                    stack.append(target)  # look through pure states
                else:
                    out.append(target)
        return out

    def can_advance(self, node: str) -> bool:
        return node in self.successors()

    def advance(self, node: str) -> None:
        if not self.can_advance(node):
            raise LifecycleError(
                "%s: %s cannot follow %s (allowed: %s)"
                % (self.name, node, self.current, ", ".join(self.successors()))
            )
        self.current = node
        self.history.append(node)

    def advance_through(self, *nodes: str) -> None:
        for node in nodes:
            self.advance(node)

    @property
    def states(self) -> FrozenSet[str]:
        raise NotImplementedError

    @property
    def is_terminal(self) -> bool:
        return not self.successors()


class ActivityLifecycle(LifecycleMachine):
    """The Activity machine of Figure 8 (partial lifecycle)."""

    LAUNCHED = "Launched"
    RUNNING = "Running"
    DESTROYED = "Destroyed"
    ON_CREATE = "onCreate"
    ON_START = "onStart"
    ON_RESTART = "onRestart"
    ON_RESUME = "onResume"
    ON_PAUSE = "onPause"
    ON_STOP = "onStop"
    ON_DESTROY = "onDestroy"

    _STATES = frozenset({LAUNCHED, RUNNING, DESTROYED})

    EDGES = (
        LifecycleEdge(LAUNCHED, ON_CREATE, EdgeKind.MUST),
        LifecycleEdge(ON_CREATE, ON_START, EdgeKind.MUST),
        LifecycleEdge(ON_START, ON_RESUME, EdgeKind.MAY),
        LifecycleEdge(ON_START, ON_STOP, EdgeKind.MAY),
        LifecycleEdge(ON_RESUME, RUNNING, EdgeKind.MUST),
        LifecycleEdge(RUNNING, ON_PAUSE, EdgeKind.MUST),
        LifecycleEdge(ON_PAUSE, ON_RESUME, EdgeKind.MAY),
        LifecycleEdge(ON_PAUSE, ON_STOP, EdgeKind.MAY),
        LifecycleEdge(ON_STOP, ON_RESTART, EdgeKind.MAY),
        LifecycleEdge(ON_STOP, ON_DESTROY, EdgeKind.MAY),
        LifecycleEdge(ON_RESTART, ON_START, EdgeKind.MUST),
        LifecycleEdge(ON_DESTROY, DESTROYED, EdgeKind.MUST),
    )

    #: Callback order for a full foreground launch.
    LAUNCH_SEQUENCE = (ON_CREATE, ON_START, ON_RESUME)
    #: Callback order for leaving the screen for good (BACK button).
    FINISH_SEQUENCE = (ON_PAUSE, ON_STOP, ON_DESTROY)

    def __init__(self, name: str = "activity"):
        super().__init__(name, self.LAUNCHED, self.EDGES)

    @property
    def states(self) -> FrozenSet[str]:
        return self._STATES


class ServiceLifecycle(LifecycleMachine):
    """Started-Service lifecycle (simplified, §4.2 mentions Services)."""

    CREATED = "Created"
    STARTED = "Started"
    DESTROYED = "Destroyed"
    ON_CREATE = "onCreate"
    ON_START_COMMAND = "onStartCommand"
    ON_DESTROY = "onDestroy"

    _STATES = frozenset({CREATED, STARTED, DESTROYED})

    EDGES = (
        LifecycleEdge(CREATED, ON_CREATE, EdgeKind.MUST),
        LifecycleEdge(ON_CREATE, ON_START_COMMAND, EdgeKind.MUST),
        LifecycleEdge(ON_START_COMMAND, STARTED, EdgeKind.MUST),
        LifecycleEdge(STARTED, ON_START_COMMAND, EdgeKind.MAY),  # re-delivery
        LifecycleEdge(STARTED, ON_DESTROY, EdgeKind.MAY),
        LifecycleEdge(ON_DESTROY, DESTROYED, EdgeKind.MUST),
    )

    def __init__(self, name: str = "service"):
        super().__init__(name, self.CREATED, self.EDGES)

    @property
    def states(self) -> FrozenSet[str]:
        return self._STATES


class ReceiverLifecycle(LifecycleMachine):
    """BroadcastReceiver: registration enables onReceive (§5)."""

    UNREGISTERED = "Unregistered"
    REGISTERED = "Registered"
    ON_RECEIVE = "onReceive"

    _STATES = frozenset({UNREGISTERED, REGISTERED})

    EDGES = (
        LifecycleEdge(UNREGISTERED, REGISTERED, EdgeKind.MUST),
        LifecycleEdge(REGISTERED, ON_RECEIVE, EdgeKind.MAY),
        LifecycleEdge(ON_RECEIVE, REGISTERED, EdgeKind.MUST),  # stays registered
    )

    def __init__(self, name: str = "receiver"):
        super().__init__(name, self.UNREGISTERED, self.EDGES)
        # Registration is an application action, not a callback; model it
        # as an immediate advance once register() is called.

    @property
    def states(self) -> FrozenSet[str]:
        return self._STATES


def may_happen_after(
    machine_cls, earlier: str, later: str, max_depth: int = 32
) -> bool:
    """Whether ``later`` is reachable from ``earlier`` in the machine —
    the dashed/solid reachability of Figure 8 used to place enables."""
    machine = machine_cls()
    edges: Dict[str, List[str]] = {}
    for edge in machine_cls.EDGES:
        edges.setdefault(edge.source, []).append(edge.target)
    stack, seen = [earlier], {earlier}
    while stack:
        node = stack.pop()
        for target in edges.get(node, ()):
            if target == later:
                return True
            if target not in seen and len(seen) < max_depth:
                seen.add(target)
                stack.append(target)
    return False
