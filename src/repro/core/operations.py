"""Core trace language of the paper (Table 1).

An execution of an Android application is abstracted as a sequence of
*operations* drawn from a small core language.  Every operation names the
thread executing it; the remaining fields depend on the op-code:

==============  =====================================================
op-code         meaning
==============  =====================================================
threadinit      start executing the current thread
threadexit      complete executing the current thread
fork            create a new thread (``target``)
join            consume a completed thread (``target``)
attachQ         attach a task queue to the current thread
loopOnQ         begin executing tasks from the current thread's queue
post            post task ``task`` asynchronously to thread ``target``
begin           start executing the posted task ``task``
end             finish executing the posted task ``task``
acquire         acquire lock ``lock``
release         release lock ``lock``
read            read memory location ``location``
write           write memory location ``location``
enable          enable posting of task ``task``
==============  =====================================================

Posts additionally carry a ``delay`` (for ``postDelayed``, §4.2 of the
paper), an ``at_front`` flag (post-to-the-front, which the paper defers to
future work) and an ``event`` tag marking posts that inject *environmental
events* (UI events, lifecycle callbacks) — the tag is consumed by race
classification (§4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class OpKind(enum.Enum):
    """Op-codes of the core language (paper, Table 1)."""

    THREAD_INIT = "threadinit"
    THREAD_EXIT = "threadexit"
    FORK = "fork"
    JOIN = "join"
    ATTACH_Q = "attachQ"
    LOOP_ON_Q = "loopOnQ"
    POST = "post"
    BEGIN = "begin"
    END = "end"
    ACQUIRE = "acquire"
    RELEASE = "release"
    READ = "read"
    WRITE = "write"
    ENABLE = "enable"

    def __str__(self) -> str:
        return self.value


#: Op kinds that access memory.  Only these participate in data races.
MEMORY_OPS = frozenset({OpKind.READ, OpKind.WRITE})

#: Op kinds that carry a task name (asynchronous-call machinery).
TASK_OPS = frozenset({OpKind.POST, OpKind.BEGIN, OpKind.END, OpKind.ENABLE})

#: Op kinds that carry a lock.
LOCK_OPS = frozenset({OpKind.ACQUIRE, OpKind.RELEASE})

#: Op kinds that carry a target thread.
THREAD_TARGET_OPS = frozenset({OpKind.FORK, OpKind.JOIN, OpKind.POST})


@dataclass(frozen=True)
class Operation:
    """One operation of an execution trace.

    ``index`` is the position in the trace (assigned by
    :class:`repro.core.trace.ExecutionTrace`); ``task`` is the unique task
    instance this operation *refers to* (for post/begin/end/enable), while
    ``in_task`` is the task instance whose handler *executed* the operation
    (``None`` for operations outside any asynchronous task, e.g. before
    ``loopOnQ`` or on a thread without a queue).
    """

    kind: OpKind
    thread: str
    index: int = -1
    task: Optional[str] = None
    target: Optional[str] = None
    lock: Optional[str] = None
    location: Optional[str] = None
    in_task: Optional[str] = None
    delay: Optional[int] = None
    at_front: bool = False
    event: Optional[str] = None
    source: Optional[str] = None  # free-form provenance (file:line, callback)
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        _validate(self)

    # -- convenience predicates -------------------------------------------

    @property
    def is_memory_access(self) -> bool:
        return self.kind in MEMORY_OPS

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_delayed_post(self) -> bool:
        return self.kind is OpKind.POST and bool(self.delay)

    def conflicts_with(self, other: "Operation") -> bool:
        """Two operations *conflict* if they access the same memory location
        and at least one is a write (paper, §2.4)."""
        return (
            self.is_memory_access
            and other.is_memory_access
            and self.location == other.location
            and (self.is_write or other.is_write)
        )

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Render in the paper's concrete syntax, e.g. ``post(t0,p,t1)``."""
        args = [self.thread]
        if self.kind in (OpKind.FORK, OpKind.JOIN):
            args.append(self.target or "?")
        elif self.kind is OpKind.POST:
            args.append(self.task or "?")
            args.append(self.target or "?")
            if self.delay:
                args.append("delay=%d" % self.delay)
            if self.at_front:
                args.append("at_front")
        elif self.kind in (OpKind.BEGIN, OpKind.END, OpKind.ENABLE):
            args.append(self.task or "?")
        elif self.kind in LOCK_OPS:
            args.append(self.lock or "?")
        elif self.kind in MEMORY_OPS:
            args.append(self.location or "?")
        return "%s(%s)" % (self.kind.value, ",".join(args))

    def __str__(self) -> str:
        return self.render()


class MalformedOperationError(ValueError):
    """Raised when an :class:`Operation` is constructed with missing or
    contradictory fields for its op-code."""


def _validate(op: Operation) -> None:
    kind = op.kind
    if not op.thread:
        raise MalformedOperationError("operation %s has no thread" % kind)
    if kind in TASK_OPS and not op.task:
        raise MalformedOperationError("%s requires a task" % kind)
    if kind in THREAD_TARGET_OPS and not op.target:
        raise MalformedOperationError("%s requires a target thread" % kind)
    if kind in LOCK_OPS and not op.lock:
        raise MalformedOperationError("%s requires a lock" % kind)
    if kind in MEMORY_OPS and not op.location:
        raise MalformedOperationError("%s requires a memory location" % kind)
    if op.delay is not None and kind is not OpKind.POST:
        raise MalformedOperationError("delay is only meaningful on post")
    if op.at_front and kind is not OpKind.POST:
        raise MalformedOperationError("at_front is only meaningful on post")
    if op.delay is not None and op.delay < 0:
        raise MalformedOperationError("negative post delay")


# -- constructors ------------------------------------------------------------
#
# Thin factories mirroring the paper's notation.  They keep call sites in the
# runtime and in hand-written traces close to the paper's syntax:
# ``post(t0, "LAUNCH_ACTIVITY", t1)``.


def threadinit(thread: str, **kw) -> Operation:
    return Operation(OpKind.THREAD_INIT, thread, **kw)


def threadexit(thread: str, **kw) -> Operation:
    return Operation(OpKind.THREAD_EXIT, thread, **kw)


def fork(thread: str, child: str, **kw) -> Operation:
    return Operation(OpKind.FORK, thread, target=child, **kw)


def join(thread: str, child: str, **kw) -> Operation:
    return Operation(OpKind.JOIN, thread, target=child, **kw)


def attachq(thread: str, **kw) -> Operation:
    return Operation(OpKind.ATTACH_Q, thread, **kw)


def looponq(thread: str, **kw) -> Operation:
    return Operation(OpKind.LOOP_ON_Q, thread, **kw)


def post(thread: str, task: str, target: str, **kw) -> Operation:
    return Operation(OpKind.POST, thread, task=task, target=target, **kw)


def begin(thread: str, task: str, **kw) -> Operation:
    return Operation(OpKind.BEGIN, thread, task=task, **kw)


def end(thread: str, task: str, **kw) -> Operation:
    return Operation(OpKind.END, thread, task=task, **kw)


def acquire(thread: str, lock: str, **kw) -> Operation:
    return Operation(OpKind.ACQUIRE, thread, lock=lock, **kw)


def release(thread: str, lock: str, **kw) -> Operation:
    return Operation(OpKind.RELEASE, thread, lock=lock, **kw)


def read(thread: str, location: str, **kw) -> Operation:
    return Operation(OpKind.READ, thread, location=location, **kw)


def write(thread: str, location: str, **kw) -> Operation:
    return Operation(OpKind.WRITE, thread, location=location, **kw)


def enable(thread: str, task: str, **kw) -> Operation:
    return Operation(OpKind.ENABLE, thread, task=task, **kw)
