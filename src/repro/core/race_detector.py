"""The offline race detection algorithm (paper, §4.3).

A *data race* exists between trace operations ``α_i`` and ``α_j`` (``i<j``)
iff they conflict (same memory location, at least one write) and
``α_i ⊀ α_j`` with respect to the trace's happens-before relation.

The detector builds the happens-before graph (with node coalescing),
enumerates conflicting node pairs per memory location, reports unordered
pairs, and classifies each report (:mod:`repro.core.classification`).
As in the paper, when several races of the same category hit the same
memory location only one representative is reported (races on different
objects of the same class count separately — locations are per-object).

Because every closure edge points forward in node order, two accessors
``a < b`` race exactly when ``b``'s bit is **absent** from ``hb_row(a)``.
The default ``"batched"`` enumeration exploits this: per location it
precomputes an accessor mask, a writer mask, and per-``(thread, task)``
scope masks, so each accessor answers *all* of its racy partners with a
couple of big-integer operations (``candidates & ~hb_row(a)``) and only
surviving bits materialize :class:`Race` objects.  The original
one-query-per-pair loop remains available as ``enumeration="pairwise"``
for differential tests and benchmarks; both produce identical reports.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, bisect_right
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .classification import RaceCategory, classify_race
from .graph import HBNode, iter_bits
from .happens_before import (
    ANDROID_HB,
    BACKEND_BITMASK,
    BACKEND_CHAINS,
    BACKENDS,
    KERNEL_AUTO,
    SAT_FULL,
    SAT_INCREMENTAL,
    HappensBefore,
    HBConfig,
)
from .reachability import resolve_kernel
from .operations import Operation
from .vc_triage import TRIAGE_OFF, TRIAGES
from repro.obs import current_tracer
from .trace import (
    ExecutionTrace,
    field_of_location,
    operation_from_record,
    operation_to_record,
)

#: ``enumeration`` settings (a performance knob — reports are identical).
ENUM_BATCHED = "batched"  # per-location bitmask candidate filtering
ENUM_PAIRWISE = "pairwise"  # one ordering query per conflicting pair


@dataclass(frozen=True)
class DetectorConfig:
    """Everything that determines a detection run besides the trace itself.

    A plain (picklable) value object: worker processes of the corpus
    batch pipeline receive one, and the result cache keys on its
    :meth:`digest` — any rule switch, the coalescing toggle, or the
    cancelled-task set changing invalidates cached reports.
    """

    hb: HBConfig = ANDROID_HB
    coalesce: bool = True
    cancelled_tasks: Tuple[str, ...] = ()
    backend: str = BACKEND_BITMASK
    #: Closure performance knobs (kernel / chain merging / sharded
    #: saturation — see :class:`~repro.core.happens_before.HappensBefore`).
    #: Deliberately EXCLUDED from :meth:`canonical_dict`: they never change
    #: a report, so cache/history keys stay stable across knob settings
    #: (and across deployments with and without numpy).
    kernel: str = KERNEL_AUTO
    merge_chains: bool = True
    closure_workers: int = 1
    #: Streaming vector-clock triage tier (``"vc"`` | ``"off"``): a sound
    #: under-approximation of the relation that lets race-free traces skip
    #: the closure entirely (:mod:`repro.core.vc_triage`).  Also EXCLUDED
    #: from :meth:`canonical_dict`: escalated traces run the exact same
    #: closure, so reports — and with them cache and history keys — are
    #: byte-identical with triage on or off.
    triage: str = TRIAGE_OFF

    def __post_init__(self) -> None:
        if self.triage not in TRIAGES:
            raise ValueError("bad triage %r" % (self.triage,))

    def canonical_dict(self) -> dict:
        return {
            "hb": asdict(self.hb),
            "coalesce": self.coalesce,
            "cancelled_tasks": sorted(self.cancelled_tasks),
            "backend": self.backend,
        }

    def digest(self) -> str:
        blob = json.dumps(self.canonical_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def build_detector(self, trace: ExecutionTrace) -> "RaceDetector":
        return RaceDetector(
            trace,
            config=self.hb,
            coalesce=self.coalesce,
            cancelled_tasks=self.cancelled_tasks,
            backend=self.backend,
            kernel=self.kernel,
            merge_chains=self.merge_chains,
            closure_workers=self.closure_workers,
        )


@dataclass(frozen=True)
class Race:
    """One reported data race."""

    location: str
    field_name: str
    op_i: Operation
    op_j: Operation
    category: RaceCategory

    @property
    def threads(self) -> Tuple[str, str]:
        return (self.op_i.thread, self.op_j.thread)

    @property
    def is_single_threaded(self) -> bool:
        return self.op_i.thread == self.op_j.thread

    def describe(self) -> str:
        return "%s race on %s: op %d %s  <->  op %d %s" % (
            self.category,
            self.location,
            self.op_i.index,
            self.op_i.render(),
            self.op_j.index,
            self.op_j.render(),
        )

    def __str__(self) -> str:
        return self.describe()

    def to_dict(self) -> dict:
        return {
            "location": self.location,
            "field": self.field_name,
            "category": self.category.value,
            "op_i": dict(operation_to_record(self.op_i), index=self.op_i.index),
            "op_j": dict(operation_to_record(self.op_j), index=self.op_j.index),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Race":
        return cls(
            location=data["location"],
            field_name=data["field"],
            op_i=operation_from_record(data["op_i"]),
            op_j=operation_from_record(data["op_j"]),
            category=RaceCategory(data["category"]),
        )


@dataclass
class RaceReport:
    """Everything a detection run produces."""

    trace_name: str
    races: List[Race] = field(default_factory=list)  # deduplicated reports
    racy_pair_count: int = 0  # all unordered conflicting pairs pre-dedup
    analysis_seconds: float = 0.0
    node_count: int = 0
    trace_length: int = 0
    reduction_ratio: float = 1.0
    #: Closure-engine observability (backend name, chain count, memory,
    #: rule-edge statistics) — absent in reports cached before the field
    #: existed, hence Optional.
    closure: Optional[dict] = None

    def by_category(self) -> Dict[RaceCategory, List[Race]]:
        out: Dict[RaceCategory, List[Race]] = {cat: [] for cat in RaceCategory}
        for race in self.races:
            out[race.category].append(race)
        return out

    def count(self, category: RaceCategory) -> int:
        return sum(1 for race in self.races if race.category is category)

    def racy_fields(self) -> List[str]:
        seen: Dict[str, None] = {}
        for race in self.races:
            seen.setdefault(race.field_name, None)
        return list(seen)

    def summary(self) -> str:
        counts = ", ".join(
            "%s: %d" % (cat.value, len(races))
            for cat, races in self.by_category().items()
            if races
        )
        return "%s: %d race reports (%s)" % (
            self.trace_name,
            len(self.races),
            counts or "none",
        )

    def to_dict(self) -> dict:
        return {
            "trace_name": self.trace_name,
            "races": [race.to_dict() for race in self.races],
            "racy_pair_count": self.racy_pair_count,
            "analysis_seconds": self.analysis_seconds,
            "node_count": self.node_count,
            "trace_length": self.trace_length,
            "reduction_ratio": self.reduction_ratio,
            "closure": self.closure,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RaceReport":
        return cls(
            trace_name=data["trace_name"],
            races=[Race.from_dict(rec) for rec in data["races"]],
            racy_pair_count=data["racy_pair_count"],
            analysis_seconds=data["analysis_seconds"],
            node_count=data["node_count"],
            trace_length=data["trace_length"],
            reduction_ratio=data["reduction_ratio"],
            closure=data.get("closure"),
        )


class RaceDetector:
    """Graph-based happens-before race detector.

    Parameters mirror :class:`~repro.core.happens_before.HappensBefore`;
    ``config`` lets the baselines of :mod:`repro.core.baselines` reuse the
    detection pipeline unchanged.  ``saturation`` and ``enumeration`` pick
    the closure and enumeration strategies — performance knobs whose
    settings never change the report.
    """

    def __init__(
        self,
        trace: ExecutionTrace,
        config: HBConfig = ANDROID_HB,
        coalesce: bool = True,
        cancelled_tasks: Iterable[str] = (),
        saturation: str = SAT_INCREMENTAL,
        enumeration: str = ENUM_BATCHED,
        backend: str = BACKEND_BITMASK,
        kernel: str = KERNEL_AUTO,
        merge_chains: bool = True,
        closure_workers: int = 1,
    ):
        if enumeration not in (ENUM_BATCHED, ENUM_PAIRWISE):
            raise ValueError("bad enumeration %r" % enumeration)
        if saturation not in (SAT_INCREMENTAL, SAT_FULL):
            raise ValueError("bad saturation %r" % saturation)
        if backend not in BACKENDS:
            raise ValueError("bad backend %r" % backend)
        if closure_workers < 1:
            raise ValueError(
                "closure_workers must be >= 1, got %r" % (closure_workers,)
            )
        kernel = resolve_kernel(kernel)
        cancelled = list(cancelled_tasks)
        if cancelled:
            # §4.2: cancellation is handled by removing the corresponding
            # post operations from the trace.
            trace = trace.without_cancelled_posts(cancelled)
        self.trace = trace
        self.config = config
        self.coalesce = coalesce
        self.saturation = saturation
        self.enumeration = enumeration
        self.backend = backend
        self.kernel = kernel
        self.merge_chains = merge_chains
        self.closure_workers = closure_workers
        self.hb: Optional[HappensBefore] = None

    def detect(self) -> RaceReport:
        # Timing flows through the tracer (a single source of truth for
        # ``analysis_seconds``); under the default NULL_TRACER the spans
        # still measure wall time but record nothing.
        tracer = current_tracer()
        with tracer.span(
            "detect", trace=self.trace.name, backend=self.backend
        ) as detect_span:
            with tracer.span("detect.closure"):
                hb = HappensBefore(
                    self.trace,
                    config=self.config,
                    coalesce=self.coalesce,
                    saturation=self.saturation,
                    backend=self.backend,
                    kernel=self.kernel,
                    merge_chains=self.merge_chains,
                    workers=self.closure_workers,
                )
            self.hb = hb
            report = RaceReport(
                trace_name=self.trace.name,
                trace_length=len(self.trace),
                node_count=len(hb.graph),
                reduction_ratio=hb.graph.reduction_ratio,
            )
            seen: set = set()  # (location, category) dedup keys
            with tracer.span("detect.enumerate", strategy=self.enumeration):
                if self.enumeration == ENUM_BATCHED:
                    if self.backend == BACKEND_CHAINS:
                        self._enumerate_chains(hb, report, seen)
                    else:
                        self._enumerate_batched(hb, report, seen)
                else:
                    self._enumerate_pairwise(hb, report, seen)
                report.races.sort(key=lambda race: (race.op_i.index, race.op_j.index))
            report.closure = {
                "backend": hb.stats.backend,
                "chain_count": hb.stats.chain_count,
                "chains_merged": hb.stats.chains_merged,
                "memory_bytes": hb.stats.closure_memory_bytes,
                "peak_rss_bytes": hb.stats.peak_rss_bytes,
                "st_edges": hb.stats.st_edges,
                "mt_edges": hb.stats.mt_edges,
                "fifo_edges": hb.stats.fifo_edges,
                "nopre_edges": hb.stats.nopre_edges,
                "outer_iterations": hb.stats.outer_iterations,
            }
            tracer.count("detect.races", len(report.races))
            tracer.count("detect.racy_pairs", report.racy_pair_count)
        report.analysis_seconds = detect_span.wall_seconds
        return report

    def _enumerate_batched(
        self, hb: HappensBefore, report: RaceReport, seen: set
    ) -> None:
        """Answer each accessor's racy partners with mask arithmetic.

        Node ids ascend in trace order and all closure edges point forward,
        so for accessors ``a < b`` the pair is racy iff ``b``'s bit is
        absent from ``hb_row(a)`` — later accessors of the location that
        conflict, run in a different (thread, task) scope, and survive
        ``& ~hb_row(a)`` are exactly the racy partners.
        """
        graph = hb.graph
        st, mt = graph.st, graph.mt
        nodes = graph.nodes
        for location, entry in self._location_index(hb).items():
            accessors, access_mask, write_mask, scope_masks = entry
            rest = access_mask  # accessors strictly after the current one
            for a, a_writes in accessors:
                rest &= ~(1 << a.node_id)
                if not rest:
                    break
                candidates = rest if a_writes else rest & write_mask
                candidates &= ~scope_masks[(a.thread, a.task)]
                racy = candidates & ~(st[a.node_id] | mt[a.node_id])
                for b_id in iter_bits(racy):
                    self._record(hb, report, seen, location, a, nodes[b_id])

    def _enumerate_chains(
        self, hb: HappensBefore, report: RaceReport, seen: set
    ) -> None:
        """Chains-backend enumeration: each accessor's racy partners fall
        out of the reach vector directly.

        Per location the accessors are grouped by chain; for accessor ``a``
        and chain ``c``, the unordered later accessors on ``c`` are exactly
        the ids in the open interval ``(a.node_id, reach[a][c])`` — two
        bisects per (accessor, chain) replace the bitmask arithmetic, and
        only conflict/scope checks run per candidate.  Partners are emitted
        in ascending node order, so reports match the batched path
        pair-for-pair.
        """
        index = hb.graph.reach
        reach = index.reach
        chain_of = index.chain_of
        for location, entry in self._location_index(hb).items():
            accessors = entry[0]
            by_chain: Dict[int, Tuple[List[int], List[Tuple[HBNode, bool]]]] = {}
            for node, writes in accessors:
                ids, infos = by_chain.setdefault(chain_of[node.node_id], ([], []))
                ids.append(node.node_id)  # accessors ascend, so ids ascend
                infos.append((node, writes))
            chain_groups = list(by_chain.values())
            for a, a_writes in accessors:
                a_id = a.node_id
                scope = (a.thread, a.task)
                row = reach[a_id]
                partners: List[HBNode] = []
                for ids, infos in chain_groups:
                    start = bisect_right(ids, a_id)
                    if start == len(ids):
                        continue
                    stop = bisect_left(ids, row[chain_of[ids[start]]], start)
                    for pos in range(start, stop):
                        b, b_writes = infos[pos]
                        if not a_writes and not b_writes:
                            continue
                        if (b.thread, b.task) == scope:
                            continue
                        partners.append(b)
                partners.sort(key=lambda node: node.node_id)
                for b in partners:
                    self._record(hb, report, seen, location, a, b)

    def _enumerate_pairwise(
        self, hb: HappensBefore, report: RaceReport, seen: set
    ) -> None:
        """The original per-pair loop (one ordering query per candidate)."""
        for location, entry in self._location_index(hb).items():
            accessors = entry[0]
            for a_pos, (a, a_writes) in enumerate(accessors):
                for b, b_writes in accessors[a_pos + 1 :]:
                    if a.thread == b.thread and a.task == b.task:
                        continue  # program order within a task (or pre-loop)
                    if not a_writes and not b_writes:
                        continue
                    if hb.ordered_nodes(a.node_id, b.node_id):
                        continue
                    self._record(hb, report, seen, location, a, b)

    def _record(
        self,
        hb: HappensBefore,
        report: RaceReport,
        seen: set,
        location: str,
        a: HBNode,
        b: HBNode,
    ) -> None:
        report.racy_pair_count += 1
        op_i, op_j = _representative_pair(a, b, location)
        category = classify_race(self.trace, hb, op_i.index, op_j.index)
        key = (location, category)
        if key in seen:
            return
        seen.add(key)
        report.races.append(
            Race(
                location=location,
                field_name=field_of_location(location),
                op_i=op_i,
                op_j=op_j,
                category=category,
            )
        )

    def _location_index(
        self, hb: HappensBefore
    ) -> Dict[str, Tuple[List[Tuple[HBNode, bool]], int, int, Dict]]:
        """Per location: ``(accessors, access_mask, write_mask, scope_masks)``.

        ``accessors`` lists ``(node, writes_here)`` in ascending node order;
        the masks carry the same information as node-id bitmasks, with
        ``scope_masks`` grouping accessors by ``(thread, task)`` — pairs
        inside one scope are ordered by program order and never race.
        """
        index: Dict[str, list] = {}
        for node in hb.graph.nodes:
            if not node.is_access_block:
                continue
            bit = 1 << node.node_id
            scope = (node.thread, node.task)
            for location in node.locations():
                entry = index.get(location)
                if entry is None:
                    entry = index[location] = [[], 0, 0, {}]
                writes = node.writes_to(location)
                entry[0].append((node, writes))
                entry[1] |= bit
                if writes:
                    entry[2] |= bit
                scopes = entry[3]
                scopes[scope] = scopes.get(scope, 0) | bit
        return {
            location: (entry[0], entry[1], entry[2], entry[3])
            for location, entry in index.items()
        }


def _representative_pair(
    a: HBNode, b: HBNode, location: str
) -> Tuple[Operation, Operation]:
    """Pick one conflicting (op_i, op_j) pair from two racy nodes, ensuring
    at least one side is a write."""
    a_ops = a.accesses_to(location)
    b_ops = b.accesses_to(location)
    a_write = next((op for op in a_ops if op.is_write), None)
    b_write = next((op for op in b_ops if op.is_write), None)
    if a_write is not None:
        return a_write, (b_write or b_ops[0])
    return a_ops[0], b_write  # b must write if a does not


def detect_races(
    trace: ExecutionTrace,
    config: HBConfig = ANDROID_HB,
    coalesce: bool = True,
    cancelled_tasks: Iterable[str] = (),
    saturation: str = SAT_INCREMENTAL,
    enumeration: str = ENUM_BATCHED,
    backend: str = BACKEND_BITMASK,
    kernel: str = KERNEL_AUTO,
    merge_chains: bool = True,
    closure_workers: int = 1,
) -> RaceReport:
    """One-call convenience wrapper: build, run, and return the report."""
    return RaceDetector(
        trace,
        config=config,
        coalesce=coalesce,
        cancelled_tasks=cancelled_tasks,
        saturation=saturation,
        enumeration=enumeration,
        backend=backend,
        kernel=kernel,
        merge_chains=merge_chains,
        closure_workers=closure_workers,
    ).detect()
