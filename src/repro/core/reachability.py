"""Chain-decomposition reachability index: O(n·C) happens-before storage.

The default closure engine stores the happens-before relation as dense
per-node successor bitmasks — O(n²) bits — which caps the trace sizes the
corpus pipeline can handle regardless of how fast the incremental
saturation runs.  This module provides the alternative ``"chains"``
backend: it exploits the fact that every graph node lives on exactly one
*chain* — a set of nodes that is totally ordered by the thread-local
relation at all times — so reachability into a chain is fully described
by the **lowest chain member reached**.

Chain construction (:func:`_build_chains`) follows the program-order
mode of the active :class:`~repro.core.happens_before.HBConfig`:

* ``android`` — per thread, the pre-``loopOnQ`` segment is one chain
  (NO-Q-PO totally orders it) and every asynchronous task is its own
  chain (ASYNC-PO totally orders a task's operations).  Tasks are *not*
  merged per looper thread: two tasks on one looper may be unordered —
  that is the paper's precision device — so posts must not collapse
  unordered tasks into one chain;
* ``full`` — classic per-thread program order: one chain per thread;
* ``none`` — no program order, so no two nodes are guaranteed ordered:
  every node is its own chain (the index degenerates to O(n²) — only
  the ablation baselines use this mode).

The index keeps one vector per node, ``reach[i][c]`` = lowest node id on
chain ``c`` reachable from ``i`` (``n`` as the +∞ sentinel), stored as
``array('i')`` rows — O(n·C) machine ints instead of O(n²) bits.
``ordered(i, j)`` is then one comparison: ``reach[i][chain(j)] <= j``.

The subtlety is that the paper's relation is *not* plain reachability:
``≺st`` composes only thread-local facts and ``≺mt`` only ever emits
different-thread pairs (TRANS-ST / TRANS-MT).  The index mirrors the
decomposition through its *fold filter*: because chains are per-thread,
``reach[i][c]`` for a chain on ``i``'s own thread is exactly the ≺st
reachability and for any other thread's chain exactly ≺mt, and when row
``i`` absorbs the row of a reached member ``m``:

* ``m`` on ``i``'s own thread (``m ∈ st[i]``): every entry of ``m``'s
  row is taken — same-thread chains by TRANS-ST, different-thread
  chains by TRANS-MT (the endpoints differ);
* ``m`` on another thread (``m ∈ mt[i]``): only entries for chains on
  threads other than ``i``'s are taken — TRANS-MT's different-thread
  side condition, the exact analogue of the bitmask engine's
  ``comp & diff_thread_mask`` step.

Saturation sweeps rows high-to-low (every rule instance points forward
in trace order, so row ``i`` depends only on rows ``k > i``): each row
seeds from its direct edges, absorbs the closed rows of its direct
successors, and then runs a small *expansion* fixpoint folding the rows
of newly reached different-thread chain minima — the vector analogue of
the bitmask sweep's inner ``mt`` loop, needed because the mt relation is
left-recursive (a member reached through another thread can contribute
facts no single direct successor knows).  Incremental re-closure after a
FIFO/NOPRE round reuses PR 2's dirty-frontier discipline, iterated to a
fixpoint: the first pass re-closes the closure predecessors of the
round's edge sources (one O(1) index query per row), highest-first on
top of their existing entries, and every row that actually changed
becomes a source for the next pass — necessary because TRANS-MT's
different-thread side condition lets a row gain facts through an
intermediate changed row without reaching any edge source (see
:meth:`ChainIndex.saturate_delta`).

Invariants this module guarantees (and the tests that pin them):

* **Bit-identity with the bitmask backend** — for every trace, rule
  preset, coalescing mode, and saturation strategy, the chain index
  answers every ``ordered(i, j)`` query identically to the dense rows,
  derives the same FIFO/NOPRE edges in the same outer rounds (identical
  :class:`~repro.core.happens_before.ClosureStats`), and yields
  byte-identical race reports in identical order.  Property-tested in
  ``tests/test_reachability_backend.py``; CI's ``--reachability-smoke``
  gate re-checks it on every push, including the fork/lock hand-off
  counterexample topology.
* **O(n·C) memory** — the reach table is ``4·n·C`` bytes of machine
  ints plus O(n) bookkeeping; ``memory_bytes()`` reports the resident
  total, surfaced as ``closure.memory_bytes`` in report JSON, and the
  CI gate fails if it ever exceeds twice the budget.
* **Forward edges only** — like the bitmask engine, every inserted edge
  satisfies ``i < j``, so high-to-low sweeps see final rows.

Backend selection guidance lives in "Reachability backends" in
``docs/architecture.md``; the spans the closure engine emits while
saturating (either backend) are documented in ``docs/observability.md``.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

#: ``backend`` settings for the closure engine (performance/memory knob —
#: results are identical; see :class:`repro.core.happens_before.HappensBefore`).
BACKEND_BITMASK = "bitmask"
BACKEND_CHAINS = "chains"


def _build_chains(graph, program_order: str) -> Tuple[array, List[List[int]], List[str]]:
    """Assign every node to a chain; returns ``(chain_of, chains, chain_threads)``.

    A chain must be totally ordered by the thread-local relation from the
    moment program-order edges are inserted, which is what makes the
    lowest-reached-member representation exact: reaching a member implies
    reaching every later member of the same chain.
    """
    trace = graph.trace
    chain_of = array("i", bytes(4 * len(graph.nodes)))
    chains: List[List[int]] = []
    chain_threads: List[str] = []
    keys: Dict[object, int] = {}
    for node in graph.nodes:
        nid = node.node_id
        if program_order == "none":
            key = ("node", nid)  # no PO edges: nothing is totally ordered
        elif program_order == "full":
            key = ("thread", node.thread)
        elif not trace.looped_before(node.thread, node.first_index):
            key = ("pre", node.thread)  # NO-Q-PO orders the pre-loop segment
        elif node.task is not None:
            key = ("task", node.thread, node.task)  # ASYNC-PO orders the task
        else:
            key = ("node", nid)  # post-loop, outside any task: unordered
        c = keys.get(key)
        if c is None:
            c = keys[key] = len(chains)
            chains.append([])
            chain_threads.append(node.thread)
        chain_of[nid] = c
        chains[c].append(nid)  # nodes visited in id order: lists ascend
    return chain_of, chains, chain_threads


class ChainIndex:
    """Earliest-reachable-member-per-chain happens-before index.

    Drop-in reachability backend for :class:`~repro.core.graph.HBGraph`:
    the graph delegates ``add_st``/``add_mt``/``ordered``/``hb_row`` here
    when built with ``backend="chains"``.
    """

    def __init__(self, graph, program_order: str, plain: bool):
        self.graph = graph
        self.plain = plain  # TRANS_PLAIN: single relation, no fold filter
        n = len(graph.nodes)
        self.n = n
        self.INF = n  # sentinel: larger than any node id
        self.chain_of, self.chains, self.chain_threads = _build_chains(
            graph, program_order
        )
        self.chain_count = len(self.chains)
        # Thread identity as small ints so the fold filter compares ints.
        tids: Dict[str, int] = {}
        for node in graph.nodes:
            tids.setdefault(node.thread, len(tids))
        self._chain_tid = array("i", (tids[t] for t in self.chain_threads))
        self._node_tid = array("i", (tids[node.thread] for node in graph.nodes))
        inf_row = array("i", [n]) * self.chain_count if self.chain_count else array("i")
        self.reach: List[array] = [array("i", inf_row) for _ in range(n)]
        self.succ_st: List[List[int]] = [[] for _ in range(n)]
        self.succ_mt: List[List[int]] = [[] for _ in range(n)]

    # -- edge insertion ------------------------------------------------------

    def add_st(self, i: int, j: int) -> bool:
        """Record a thread-local base edge; returns True if it was not
        already implied (mirrors the bitmask ``add_st`` bit test — in the
        closed state the row entry covers ``j`` exactly when the closure
        bit would be set)."""
        if i == j:
            return False
        c = self.chain_of[j]
        row = self.reach[i]
        if row[c] <= j:
            return False
        row[c] = j
        self.succ_st[i].append(j)
        return True

    def add_mt(self, i: int, j: int) -> bool:
        """Record an inter-thread base edge; returns True if new."""
        if i == j:
            return False
        c = self.chain_of[j]
        row = self.reach[i]
        if row[c] <= j:
            return False
        row[c] = j
        self.succ_mt[i].append(j)
        return True

    # -- queries -------------------------------------------------------------

    def ordered(self, i: int, j: int) -> bool:
        """Node-level ``i ≺ j`` in O(1) (meaningful after closure)."""
        if i == j:
            return True
        if i > j:
            return False
        return self.reach[i][self.chain_of[j]] <= j

    def successors(self, i: int) -> Iterator[int]:
        """All nodes reachable from ``i``, ascending."""
        out: List[int] = []
        row = self.reach[i]
        chains = self.chains
        for c in range(self.chain_count):
            v = row[c]
            if v < self.INF:
                members = chains[c]
                out.extend(members[bisect_left(members, v) :])
        out.sort()
        return iter(out)

    def row_mask(self, i: int) -> int:
        """The bitmask-row equivalent of row ``i`` (materialized on demand
        for the explanation/debug paths that walk successor masks)."""
        mask = 0
        for j in self.successors(i):
            mask |= 1 << j
        return mask

    def edge_count(self) -> Tuple[int, int]:
        """Closure sizes ``(st, mt)`` — the numbers the bitmask backend's
        popcounts report.  Same-thread chains hold ≺st facts, other-thread
        chains ≺mt facts; in plain mode everything counts as st."""
        st_edges = 0
        mt_edges = 0
        chains = self.chains
        chain_tid = self._chain_tid
        node_tid = self._node_tid
        INF = self.INF
        for i in range(self.n):
            row = self.reach[i]
            ti = node_tid[i]
            for c in range(self.chain_count):
                v = row[c]
                if v >= INF:
                    continue
                members = chains[c]
                count = len(members) - bisect_left(members, v)
                if self.plain or chain_tid[c] == ti:
                    st_edges += count
                else:
                    mt_edges += count
        return st_edges, mt_edges

    def memory_bytes(self) -> int:
        """Bytes held by the index: the reach table plus adjacency and
        chain bookkeeping (the backend's answer to the bitmask rows'
        ``memory_bytes``)."""
        total = sys.getsizeof(self.reach)
        for row in self.reach:
            total += sys.getsizeof(row)
        for adj in (self.succ_st, self.succ_mt):
            total += sys.getsizeof(adj)
            for lst in adj:
                total += sys.getsizeof(lst) + 8 * len(lst)
        total += sys.getsizeof(self.chain_of)
        total += sys.getsizeof(self.chains)
        for members in self.chains:
            total += sys.getsizeof(members) + 8 * len(members)
        total += sys.getsizeof(self._chain_tid) + sys.getsizeof(self._node_tid)
        return total

    # -- saturation ----------------------------------------------------------

    def _fold(self, row: array, mrow: array, allow_all: bool, ti: int) -> List[int]:
        """Take the min of ``row`` and ``mrow`` per chain; returns the
        chains lowered.  ``allow_all`` folds every chain (st member or
        plain mode); otherwise only chains on threads other than ``ti``
        (mt member — TRANS-MT's different-thread side condition)."""
        lowered: List[int] = []
        chain_tid = self._chain_tid
        for c in range(self.chain_count):
            v = mrow[c]
            if v < row[c] and (allow_all or chain_tid[c] != ti):
                row[c] = v
                lowered.append(c)
        return lowered

    def _close_row(self, i: int, gained: Optional[bytearray]) -> bool:
        """(Re-)close row ``i`` against the already-closed higher rows.

        Returns True if any entry lowered.  ``gained`` (delta mode) marks
        rows whose vectors changed this round: existing different-thread
        chain minima pointing at such rows are re-expanded, because their
        new facts need not be visible through any direct successor (the
        mt relation is left-recursive).
        """
        row = self.reach[i]
        ti = self._node_tid[i]
        plain = self.plain
        reach = self.reach
        chain_of = self.chain_of
        chain_tid = self._chain_tid
        changed = False
        pending: List[int] = []

        for j in self.succ_st[i]:
            c = chain_of[j]
            if j < row[c]:
                row[c] = j
                changed = True
        for j in self.succ_mt[i]:
            c = chain_of[j]
            if j < row[c]:
                row[c] = j
                changed = True
        # Absorb closed rows of direct successors.  An st successor shares
        # the thread, so its whole row folds (and chains it lowers carry
        # already-expanded facts — same filter — so they need no re-fold);
        # an mt successor folds through the different-thread filter, and
        # chains it lowers were closed relative to *its* thread, so they
        # join the expansion frontier.
        for j in self.succ_st[i]:
            if self._fold(row, reach[j], True, ti):
                changed = True
        for j in self.succ_mt[i]:
            lowered = self._fold(row, reach[j], plain, ti)
            if lowered:
                changed = True
                if not plain:
                    pending.extend(lowered)
        if gained is not None and not plain:
            INF = self.INF
            for c in range(self.chain_count):
                v = row[c]
                if v < INF and chain_tid[c] != ti and gained[v]:
                    pending.append(c)
        # Expansion fixpoint over different-thread chain minima (plain
        # reachability is right-recursive and never needs it).
        expanded: Dict[int, int] = {}
        while pending:
            nxt: List[int] = []
            for c in pending:
                m = row[c]
                if expanded.get(c) == m:
                    continue
                expanded[c] = m
                lowered = self._fold(row, reach[m], False, ti)
                if lowered:
                    changed = True
                    nxt.extend(lowered)
            pending = nxt
        return changed

    def saturate(self) -> None:
        """Full sweep: reset every row to its direct-edge seeds and close
        high-to-low (the analogue of the bitmask full re-sweep)."""
        n = self.n
        if not n:
            return
        inf_row = array("i", [self.INF]) * self.chain_count
        reach = self.reach
        for i in range(n):
            reach[i] = array("i", inf_row)
        for i in range(n - 1, -1, -1):
            self._close_row(i, None)

    def apply_edges(self, edges: List[Tuple[int, int]]) -> None:
        """Record a round's new base edges (rule applications defer index
        writes until the round ends so premise queries read the closure
        as of the start of the round, exactly like the bitmask engine)."""
        for u, v in edges:
            self.add_st(u, v)

    def saturate_delta(self, edges: List[Tuple[int, int]]) -> None:
        """Re-close after a FIFO/NOPRE round inserted ``edges``.

        A row whose closure changes need *not* reach an edge source: the
        TRANS-MT side condition can block the composition ``i ≺ k ≺ u``
        (when ``thread(i) == thread(u)``) while ``i`` still gains the
        facts ``k`` itself gained from ``u`` (``i ≺ k ≺ w`` with
        ``thread(w) ≠ thread(i)``).  So the dirty frontier is computed to
        a fixpoint: the first pass dirties the closure predecessors of
        the edge sources (one O(1) query per row per source chain) plus
        the sources themselves; every pass re-closes its dirty rows
        highest-first, and each row that actually changed becomes a
        source for the next pass, until a pass changes nothing.

        Within one pass, highest-first order keeps every row current with
        respect to that pass's gains (gains only flow from higher rows to
        lower ones): by the time row ``i`` re-closes, every changed row
        above it carries a ``gained`` mark, which makes ``_close_row``
        re-expand stale chain minima.  Rows outside the pass's dirty set
        that reach a changed row are exactly what the next pass picks up.
        A pass's dirty scan skips rows the previous pass re-closed — they
        already absorbed the very gains that seed the new frontier.
        """
        if not edges:
            return
        self.apply_edges(edges)
        chain_of = self.chain_of
        reach = self.reach
        n = self.n
        gained = bytearray(self.n)
        for u, _v in edges:
            gained[u] = 1
        # Per frontier chain, the highest frontier row: reaching any
        # member at or below it marks the row dirty (conservative for
        # lower frontier rows — extra dirty rows re-close to no effect).
        frontier: Dict[int, int] = {}
        for u, _v in edges:
            c = chain_of[u]
            if u > frontier.get(c, -1):
                frontier[c] = u
        first = True
        closed = bytearray(n)  # re-closed in the pass that built frontier
        while frontier:
            bounds = sorted(frontier.items())
            dirty: List[int] = []
            for i in range(n):
                if closed[i]:
                    continue
                if first and gained[i]:
                    dirty.append(i)
                    continue
                row = reach[i]
                for c, bound in bounds:
                    if row[c] <= bound:
                        dirty.append(i)
                        break
            first = False
            frontier = {}
            closed = bytearray(n)
            for i in reversed(dirty):
                closed[i] = 1
                if self._close_row(i, gained):
                    gained[i] = 1
                    c = chain_of[i]
                    if i > frontier.get(c, -1):
                        frontier[c] = i
