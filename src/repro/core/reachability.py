"""Chain-decomposition reachability index: O(n·C) happens-before storage.

The default closure engine stores the happens-before relation as dense
per-node successor bitmasks — O(n²) bits — which caps the trace sizes the
corpus pipeline can handle regardless of how fast the incremental
saturation runs.  This module provides the alternative ``"chains"``
backend: it exploits the fact that every graph node lives on exactly one
*chain* — a set of nodes that is totally ordered by the thread-local
relation at all times — so reachability into a chain is fully described
by the **lowest chain member reached**.

Chain construction (:func:`_build_chains`) follows the program-order
mode of the active :class:`~repro.core.happens_before.HBConfig`:

* ``android`` — per thread, the pre-``loopOnQ`` segment is one chain
  (NO-Q-PO totally orders it) and every asynchronous task is its own
  chain (ASYNC-PO totally orders a task's operations).  Tasks are *not*
  merged per looper thread: two tasks on one looper may be unordered —
  that is the paper's precision device — so posts must not collapse
  unordered tasks into one chain;
* ``full`` — classic per-thread program order: one chain per thread;
* ``none`` — no program order, so no two nodes are guaranteed ordered:
  every node is its own chain (the index degenerates to O(n²) — only
  the ablation baselines use this mode).

The index keeps one vector per node, ``reach[i][c]`` = lowest node id on
chain ``c`` reachable from ``i`` (``n`` as the +∞ sentinel), stored as
``array('i')`` rows — O(n·C) machine ints instead of O(n²) bits.
``ordered(i, j)`` is then one comparison: ``reach[i][chain(j)] <= j``.

The subtlety is that the paper's relation is *not* plain reachability:
``≺st`` composes only thread-local facts and ``≺mt`` only ever emits
different-thread pairs (TRANS-ST / TRANS-MT).  The index mirrors the
decomposition through its *fold filter*: because chains are per-thread,
``reach[i][c]`` for a chain on ``i``'s own thread is exactly the ≺st
reachability and for any other thread's chain exactly ≺mt, and when row
``i`` absorbs the row of a reached member ``m``:

* ``m`` on ``i``'s own thread (``m ∈ st[i]``): every entry of ``m``'s
  row is taken — same-thread chains by TRANS-ST, different-thread
  chains by TRANS-MT (the endpoints differ);
* ``m`` on another thread (``m ∈ mt[i]``): only entries for chains on
  threads other than ``i``'s are taken — TRANS-MT's different-thread
  side condition, the exact analogue of the bitmask engine's
  ``comp & diff_thread_mask`` step.

Saturation sweeps rows high-to-low (every rule instance points forward
in trace order, so row ``i`` depends only on rows ``k > i``): each row
seeds from its direct edges, absorbs the closed rows of its direct
successors, and then runs a small *expansion* fixpoint folding the rows
of newly reached different-thread chain minima — the vector analogue of
the bitmask sweep's inner ``mt`` loop, needed because the mt relation is
left-recursive (a member reached through another thread can contribute
facts no single direct successor knows).  Incremental re-closure after a
FIFO/NOPRE round reuses PR 2's dirty-frontier discipline, iterated to a
fixpoint: the first pass re-closes the closure predecessors of the
round's edge sources (one O(1) index query per row), highest-first on
top of their existing entries, and every row that actually changed
becomes a source for the next pass — necessary because TRANS-MT's
different-thread side condition lets a row gain facts through an
intermediate changed row without reaching any edge source (see
:meth:`ChainIndex.saturate_delta`).

Three scale levers sit behind this abstraction (all performance knobs —
results are bit-identical to the reference paths):

* **Word-batched kernels** (``kernel="words"``, the default under
  ``"auto"`` when numpy is importable): the bitmask backend's full
  sweeps run over fixed-width word matrices instead of unbounded Python
  ints (:func:`words_saturate_decomposed` / :func:`words_saturate_plain`
  — numpy ``uint64`` rows with C-speed gather/reduce when available,
  ``array('Q')`` words with ``int.bit_count`` popcount change detection
  otherwise), and the chain index stores its reach table as one
  ``int32`` matrix with vectorized fold/scan steps.  numpy is strictly
  optional: every path has a pure-python fallback and ``"auto"``
  resolves to ``"python"`` when numpy is absent.
* **Chain merging** (:meth:`ChainIndex.merge_compatible_chains`): a
  pre-saturation pass that coalesces chains which stay totally ordered
  forever — same thread, node ranges strictly disjoint, and a *static*
  thread-local edge from the earlier chain's last member to the later
  chain's first member (e.g. NO-Q-PO's pre-loop → first-task edge).
  Merging never touches interleaved chains (two tasks on one looper may
  be unordered — the paper's precision device) and only shrinks the C
  in the O(n·C) bound.
* **Process-sharded saturation** (``HappensBefore(workers=N)``):
  contiguous row ranges saturate in forked worker processes (the same
  fork/merge machinery the corpus ``BatchAnalyzer`` uses, including
  worker tracer snapshots merged into the parent timeline), with a
  parent-side fixpoint over the cross-shard dirty frontier.  The least
  fixpoint is unique, so any worker count yields byte-identical rows;
  on platforms without ``fork`` (or inside daemonized pool workers) the
  engine silently falls back to the serial sweep.

Invariants this module guarantees (and the tests that pin them):

* **Bit-identity with the bitmask backend** — for every trace, rule
  preset, coalescing mode, saturation strategy, kernel, merge setting,
  and worker count, the chain index answers every ``ordered(i, j)``
  query identically to the dense rows, derives the same FIFO/NOPRE
  edges in the same outer rounds (identical
  :class:`~repro.core.happens_before.ClosureStats`), and yields
  byte-identical race reports in identical order.  Property-tested in
  ``tests/test_reachability_backend.py``; CI's ``--reachability-smoke``
  gate re-checks it on every push, including the fork/lock hand-off
  counterexample topology and a workers=1-vs-2 report comparison.
* **O(n·C) memory** — the reach table is ``4·n·C`` bytes of machine
  ints plus O(n) bookkeeping; ``memory_bytes()`` reports the resident
  total *including* the auxiliary structures (adjacency, chain arrays,
  merge bookkeeping, dirty-frontier scratch), surfaced as
  ``closure.memory_bytes`` in report JSON, and the CI gate fails if it
  ever exceeds twice the budget.
* **Forward edges only** — like the bitmask engine, every inserted edge
  satisfies ``i < j``, so high-to-low sweeps see final rows.

Backend selection guidance lives in "Reachability backends" in
``docs/architecture.md``; the spans the closure engine emits while
saturating (either backend) are documented in ``docs/observability.md``.
"""

from __future__ import annotations

import multiprocessing
import sys
from array import array
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import Tracer, current_tracer, use_tracer

try:  # optional fast path for the word-batched kernels — never required
    import numpy as _np
except Exception:  # pragma: no cover — exercised via the kernel knob
    _np = None

#: ``backend`` settings for the closure engine (performance/memory knob —
#: results are identical; see :class:`repro.core.happens_before.HappensBefore`).
BACKEND_BITMASK = "bitmask"
BACKEND_CHAINS = "chains"

#: ``kernel`` settings (performance knob — results are identical).
#: ``"python"`` is the original big-int / ``array('i')``-row reference
#: path; ``"words"`` runs the word-batched kernels (numpy fast path when
#: importable, portable ``array('Q')`` words otherwise); ``"auto"``
#: resolves to ``"words"`` exactly when numpy is available — the pure-
#: python word loops are a portability/testing path, not a speedup.
KERNEL_AUTO = "auto"
KERNEL_PYTHON = "python"
KERNEL_WORDS = "words"
KERNELS = (KERNEL_AUTO, KERNEL_PYTHON, KERNEL_WORDS)


def have_numpy() -> bool:
    """True when the optional numpy fast path is importable."""
    return _np is not None


def resolve_kernel(kernel: str) -> str:
    """Validate ``kernel`` and resolve ``"auto"`` against the environment."""
    if kernel not in KERNELS:
        raise ValueError("bad kernel %r" % (kernel,))
    if kernel == KERNEL_AUTO:
        return KERNEL_WORDS if _np is not None else KERNEL_PYTHON
    return kernel


# -- process-sharded sweeps ---------------------------------------------------
#
# The same worker/merge discipline the corpus BatchAnalyzer uses: fork a
# pool, map one contiguous row range per worker, and merge the workers'
# results (changed rows + an optional tracer snapshot) in the parent.
# Workers are forked fresh for every pass so they inherit the parent's
# current row state by copy-on-write — nothing is shipped *into* a worker,
# only changed rows ride home.

#: The per-pass shard callable, published module-globally immediately
#: before the fork so :func:`_shard_entry` can reach it from the child
#: (the callable itself is never pickled).
_SHARD_CALL: Optional[Callable[[int, int], object]] = None


def _shard_entry(rng: Tuple[int, int]):
    lo, hi = rng
    return _SHARD_CALL(lo, hi)


def shard_ranges(n: int, shards: int) -> List[Tuple[int, int]]:
    """Partition ``range(n)`` into at most ``shards`` contiguous ranges."""
    shards = max(1, min(shards, n))
    step = (n + shards - 1) // shards
    return [(lo, min(lo + step, n)) for lo in range(0, n, step)]


def fork_available() -> bool:
    """Whether sharded saturation can run here: the ``fork`` start method
    must exist (COW state inheritance is what makes per-pass worker spawns
    cheap) and the current process must not itself be a daemonized pool
    worker (those may not create pools of their own)."""
    try:
        if multiprocessing.current_process().daemon:
            return False
        multiprocessing.get_context("fork")
    except (ValueError, ImportError):  # pragma: no cover — platform-specific
        return False
    return True


def map_shards(fn: Callable[[int, int], object], ranges: Sequence[Tuple[int, int]]):
    """Run ``fn(lo, hi)`` in one forked worker per range; returns the list
    of results in range order, or ``None`` when no pool could be created
    (the caller falls back to the serial path — partial progress, if any,
    is sound: rows only ever move toward the unique least fixpoint)."""
    global _SHARD_CALL
    try:
        ctx = multiprocessing.get_context("fork")
    except (ValueError, ImportError):  # pragma: no cover — platform-specific
        return None
    _SHARD_CALL = fn
    try:
        with ctx.Pool(processes=len(ranges)) as pool:
            return pool.map(_shard_entry, list(ranges))
    except (OSError, ValueError, ImportError, MemoryError):
        return None
    finally:
        _SHARD_CALL = None


# -- word-batched bitmask kernels ---------------------------------------------

#: Bits per word of the fixed-width row layout (both storage variants).
_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1

#: numpy bit-level kernels assume little-endian word packing; on the (rare)
#: big-endian platform the ``array('Q')`` fallback runs instead.
_NP_BITS = _np is not None and sys.byteorder == "little"


def _word_count(n: int) -> int:
    return (n + _WORD_BITS - 1) // _WORD_BITS or 1


def _pack_rows_np(rows: Sequence[int], words: int):
    """Big-int rows → a ``(len(rows), words)`` uint64 matrix."""
    nbytes = words * 8
    buf = b"".join(r.to_bytes(nbytes, "little") for r in rows)
    return _np.frombuffer(buf, dtype="<u8").reshape(len(rows), words).copy()


def _unpack_rows_np(matrix) -> List[int]:
    nbytes = matrix.shape[1] * 8
    data = matrix.tobytes()
    return [
        int.from_bytes(data[i * nbytes : (i + 1) * nbytes], "little")
        for i in range(matrix.shape[0])
    ]


def _np_row_bits(row):
    """Set-bit indices of one packed row, ascending."""
    return _np.nonzero(_np.unpackbits(row.view(_np.uint8), bitorder="little"))[0]


def _pack_row_q(value: int, words: int) -> array:
    return array(
        "Q", ((value >> (_WORD_BITS * w)) & _WORD_MASK for w in range(words))
    )


def _unpack_row_q(row: array) -> int:
    return int.from_bytes(row.tobytes(), "little")


def _q_row_bits(row: array) -> List[int]:
    out: List[int] = []
    base = 0
    for w in row:
        while w:
            low = w & -w
            out.append(base + low.bit_length() - 1)
            w ^= low
        base += _WORD_BITS
    return out


def _q_popcount(row: array) -> int:
    """Word-batched popcount (``int.bit_count`` per word) — rows only ever
    gain bits, so popcount equality doubles as change detection."""
    return sum(w.bit_count() for w in row)


def _q_or_into(dst: array, src: array) -> None:
    for w in range(len(dst)):
        v = src[w]
        if v:
            dst[w] |= v


def words_saturate_decomposed(graph) -> None:
    """Word-batched TRANS-ST/TRANS-MT full sweep over the bitmask rows.

    Bit-identical to ``HappensBefore._saturate_decomposed``: the same
    high-to-low sweep with the same per-row fixpoint against already-final
    higher rows, so both converge to the same least closure — only the row
    representation changes (fixed-width words instead of unbounded ints,
    eliminating the O(n²/64) big-int reallocation per ``|=`` fold).
    """
    n = len(graph.nodes)
    if not n:
        return
    if _NP_BITS:
        _np_saturate_decomposed(graph, n)
    else:
        _q_saturate_decomposed(graph, n)


def words_saturate_plain(graph) -> None:
    """Word-batched plain-reachability full sweep (naive baseline).

    Mirrors ``HappensBefore._saturate_plain`` exactly: one fold per row
    over the row's pre-fold members (higher rows are final, so plain —
    right-recursive — reachability needs no inner fixpoint).
    """
    n = len(graph.nodes)
    if not n:
        return
    words = _word_count(n)
    st = graph.st
    if _NP_BITS:
        ST = _pack_rows_np(st, words)
        for i in range(n - 1, -1, -1):
            members = _np_row_bits(ST[i])
            if members.size:
                ST[i] |= _np.bitwise_or.reduce(ST[members], axis=0)
        st[:] = _unpack_rows_np(ST)
        return
    rows = [_pack_row_q(r, words) for r in st]
    for i in range(n - 1, -1, -1):
        row = rows[i]
        for k in _q_row_bits(row):
            _q_or_into(row, rows[k])
    st[:] = [_unpack_row_q(row) for row in rows]


def _np_saturate_decomposed(graph, n: int) -> None:
    words = _word_count(n)
    ST = _pack_rows_np(graph.st, words)
    MT = _pack_rows_np(graph.mt, words)
    threads = [node.thread for node in graph.nodes]
    diffs = {
        t: _pack_rows_np([graph.diff_thread_mask(t)], words)[0]
        for t in set(threads)
    }
    for i in range(n - 1, -1, -1):
        diff = diffs[threads[i]]
        while True:
            st_row = ST[i]
            mt_row = MT[i]
            members = _np_row_bits(st_row)
            if members.size:
                st_new = st_row | _np.bitwise_or.reduce(ST[members], axis=0)
            else:
                st_new = st_row.copy()
            hb_members = _np_row_bits(st_new | mt_row)
            if hb_members.size:
                comp = _np.bitwise_or.reduce(ST[hb_members], axis=0)
                comp |= _np.bitwise_or.reduce(MT[hb_members], axis=0)
                mt_new = mt_row | (comp & diff)
            else:
                mt_new = mt_row.copy()
            if _np.array_equal(st_new, st_row) and _np.array_equal(mt_new, mt_row):
                break
            ST[i] = st_new
            MT[i] = mt_new
    graph.st[:] = _unpack_rows_np(ST)
    graph.mt[:] = _unpack_rows_np(MT)


def _q_saturate_decomposed(graph, n: int) -> None:
    words = _word_count(n)
    ST = [_pack_row_q(r, words) for r in graph.st]
    MT = [_pack_row_q(r, words) for r in graph.mt]
    threads = [node.thread for node in graph.nodes]
    diffs = {
        t: _pack_row_q(graph.diff_thread_mask(t), words) for t in set(threads)
    }
    for i in range(n - 1, -1, -1):
        diff = diffs[threads[i]]
        st_row = ST[i]
        mt_row = MT[i]
        while True:
            before = _q_popcount(st_row) + _q_popcount(mt_row)
            for k in _q_row_bits(st_row):
                _q_or_into(st_row, ST[k])
            comp = array("Q", bytes(8 * words))
            hb = array("Q", (st_row[w] | mt_row[w] for w in range(words)))
            for k in _q_row_bits(hb):
                _q_or_into(comp, ST[k])
                _q_or_into(comp, MT[k])
            for w in range(words):
                mt_row[w] |= comp[w] & diff[w]
            if _q_popcount(st_row) + _q_popcount(mt_row) == before:
                break
    graph.st[:] = [_unpack_row_q(row) for row in ST]
    graph.mt[:] = [_unpack_row_q(row) for row in MT]


def _build_chains(graph, program_order: str) -> Tuple[array, List[List[int]], List[str]]:
    """Assign every node to a chain; returns ``(chain_of, chains, chain_threads)``.

    A chain must be totally ordered by the thread-local relation from the
    moment program-order edges are inserted, which is what makes the
    lowest-reached-member representation exact: reaching a member implies
    reaching every later member of the same chain.
    """
    trace = graph.trace
    chain_of = array("i", bytes(4 * len(graph.nodes)))
    chains: List[List[int]] = []
    chain_threads: List[str] = []
    keys: Dict[object, int] = {}
    for node in graph.nodes:
        nid = node.node_id
        if program_order == "none":
            key = ("node", nid)  # no PO edges: nothing is totally ordered
        elif program_order == "full":
            key = ("thread", node.thread)
        elif not trace.looped_before(node.thread, node.first_index):
            key = ("pre", node.thread)  # NO-Q-PO orders the pre-loop segment
        elif node.task is not None:
            key = ("task", node.thread, node.task)  # ASYNC-PO orders the task
        else:
            key = ("node", nid)  # post-loop, outside any task: unordered
        c = keys.get(key)
        if c is None:
            c = keys[key] = len(chains)
            chains.append([])
            chain_threads.append(node.thread)
        chain_of[nid] = c
        chains[c].append(nid)  # nodes visited in id order: lists ascend
    return chain_of, chains, chain_threads


class ChainIndex:
    """Earliest-reachable-member-per-chain happens-before index.

    Drop-in reachability backend for :class:`~repro.core.graph.HBGraph`:
    the graph delegates ``add_st``/``add_mt``/``ordered``/``hb_row`` here
    when built with ``backend="chains"``.

    ``kernel="words"`` (with numpy importable) stores the reach table as
    one contiguous ``int32`` matrix whose rows are views, so the fold and
    frontier-scan steps vectorize; without numpy — or under
    ``kernel="python"`` — the original ``array('i')`` rows are used (an
    ``array('i')`` row already *is* a fixed-width word vector, so the two
    storages are byte-interchangeable and sharded workers can mix them).
    """

    def __init__(
        self,
        graph,
        program_order: str,
        plain: bool,
        kernel: str = KERNEL_PYTHON,
    ):
        self.graph = graph
        self.plain = plain  # TRANS_PLAIN: single relation, no fold filter
        self.kernel = kernel
        n = len(graph.nodes)
        self.n = n
        self.INF = n  # sentinel: larger than any node id
        self.chain_of, self.chains, self.chain_threads = _build_chains(
            graph, program_order
        )
        self.chain_count = len(self.chains)
        #: Chains coalesced away by :meth:`merge_compatible_chains` (0
        #: until — and unless — the merge pass runs).
        self.merged_chains = 0
        # Thread identity as small ints so the fold filter compares ints.
        tids: Dict[str, int] = {}
        for node in graph.nodes:
            tids.setdefault(node.thread, len(tids))
        self._tids = tids
        self._node_tid = array("i", (tids[node.thread] for node in graph.nodes))
        self._chain_tid = array("i", (tids[t] for t in self.chain_threads))
        self._chain_tid_np = None
        self._matrix = None  # numpy int32 (n, C) storage under kernel="words"
        self.succ_st: List[List[int]] = [[] for _ in range(n)]
        self.succ_mt: List[List[int]] = [[] for _ in range(n)]
        self._delta_scratch_bytes = 0
        self._gained_cache: Optional[Tuple[bytearray, object]] = None
        self._diff_masks: Dict[int, object] = {}
        self._alloc_rows()

    def _alloc_rows(self) -> None:
        """(Re-)allocate the reach storage at the current chain count,
        every entry +∞.  Also called after a merge pass changes the row
        width — callers must saturate afterwards."""
        n, C = self.n, self.chain_count
        self._diff_masks = {}
        if self.kernel == KERNEL_WORDS and _np is not None and n and C:
            self._matrix = _np.full((n, C), self.INF, dtype=_np.intc)
            self.reach: List = [self._matrix[i] for i in range(n)]
            self._chain_tid_np = _np.asarray(self._chain_tid, dtype=_np.intc)
        else:
            self._matrix = None
            self._chain_tid_np = None
            inf_row = array("i", [self.INF]) * C if C else array("i")
            self.reach = [array("i", inf_row) for _ in range(n)]

    # -- edge insertion ------------------------------------------------------

    def add_st(self, i: int, j: int) -> bool:
        """Record a thread-local base edge; returns True if it was not
        already implied (mirrors the bitmask ``add_st`` bit test — in the
        closed state the row entry covers ``j`` exactly when the closure
        bit would be set)."""
        if i == j:
            return False
        c = self.chain_of[j]
        row = self.reach[i]
        if row[c] <= j:
            return False
        row[c] = j
        self.succ_st[i].append(j)
        return True

    def add_mt(self, i: int, j: int) -> bool:
        """Record an inter-thread base edge; returns True if new."""
        if i == j:
            return False
        c = self.chain_of[j]
        row = self.reach[i]
        if row[c] <= j:
            return False
        row[c] = j
        self.succ_mt[i].append(j)
        return True

    # -- queries -------------------------------------------------------------

    def ordered(self, i: int, j: int) -> bool:
        """Node-level ``i ≺ j`` in O(1) (meaningful after closure)."""
        if i == j:
            return True
        if i > j:
            return False
        return self.reach[i][self.chain_of[j]] <= j

    def successors(self, i: int) -> Iterator[int]:
        """All nodes reachable from ``i``, ascending."""
        out: List[int] = []
        row = self.reach[i]
        chains = self.chains
        for c in range(self.chain_count):
            v = row[c]
            if v < self.INF:
                members = chains[c]
                out.extend(members[bisect_left(members, v) :])
        out.sort()
        return iter(out)

    def row_mask(self, i: int) -> int:
        """The bitmask-row equivalent of row ``i`` (materialized on demand
        for the explanation/debug paths that walk successor masks)."""
        mask = 0
        for j in self.successors(i):
            mask |= 1 << j
        return mask

    def edge_count(self) -> Tuple[int, int]:
        """Closure sizes ``(st, mt)`` — the numbers the bitmask backend's
        popcounts report.  Same-thread chains hold ≺st facts, other-thread
        chains ≺mt facts; in plain mode everything counts as st."""
        if self._matrix is not None:
            return self._edge_count_np()
        st_edges = 0
        mt_edges = 0
        chains = self.chains
        chain_tid = self._chain_tid
        node_tid = self._node_tid
        INF = self.INF
        for i in range(self.n):
            row = self.reach[i]
            ti = node_tid[i]
            for c in range(self.chain_count):
                v = row[c]
                if v >= INF:
                    continue
                members = chains[c]
                count = len(members) - bisect_left(members, v)
                if self.plain or chain_tid[c] == ti:
                    st_edges += count
                else:
                    mt_edges += count
        return st_edges, mt_edges

    def _edge_count_np(self) -> Tuple[int, int]:
        """Column-vectorized :meth:`edge_count` for the matrix storage —
        one searchsorted per chain instead of an n×C python loop."""
        st_edges = 0
        mt_edges = 0
        node_tid = _np.asarray(self._node_tid, dtype=_np.intc)
        for c in range(self.chain_count):
            col = self._matrix[:, c]
            rows = _np.flatnonzero(col < self.INF)
            if not rows.size:
                continue
            members = _np.asarray(self.chains[c], dtype=_np.intc)
            counts = members.size - _np.searchsorted(members, col[rows])
            if self.plain:
                st_edges += int(counts.sum())
                continue
            same = node_tid[rows] == self._chain_tid[c]
            st_edges += int(counts[same].sum())
            mt_edges += int(counts[~same].sum())
        return st_edges, mt_edges

    def memory_bytes(self) -> int:
        """Bytes held by the index: the reach table plus *every* auxiliary
        structure kept alive to maintain it — successor adjacency, chain
        membership arrays, the merge/thread bookkeeping, and the
        dirty-frontier scratch of the last delta re-closure (high-water
        size).  The backend's answer to the bitmask rows'
        ``memory_bytes``, and the number the 6.3x memory claim is audited
        against."""
        if self._matrix is not None:
            total = int(self._matrix.nbytes)
            total += sys.getsizeof(self.reach)
            if self.reach:
                total += len(self.reach) * sys.getsizeof(self.reach[0])
            total += int(self._chain_tid_np.nbytes)
        else:
            total = sys.getsizeof(self.reach)
            for row in self.reach:
                total += sys.getsizeof(row)
        for adj in (self.succ_st, self.succ_mt):
            total += sys.getsizeof(adj)
            for lst in adj:
                total += sys.getsizeof(lst) + 8 * len(lst)
        total += sys.getsizeof(self.chain_of)
        total += sys.getsizeof(self.chains)
        for members in self.chains:
            total += sys.getsizeof(members) + 8 * len(members)
        total += sys.getsizeof(self.chain_threads)
        total += sys.getsizeof(self._chain_tid) + sys.getsizeof(self._node_tid)
        total += self._delta_scratch_bytes
        return total

    # -- chain merging -------------------------------------------------------

    def merge_compatible_chains(self) -> int:
        """Coalesce chains that stay totally ordered forever; returns the
        number of chains merged away.

        Two chains ``c1 < c2`` may merge only when the union remains
        totally ordered by the thread-local relation *at all times* — the
        invariant the lowest-reached-member representation rests on.  The
        static criterion used here guarantees exactly that:

        * same thread (so the fold filter keeps classifying the merged
          chain's facts correctly),
        * ``max(c1) < min(c2)`` — the node ranges are strictly disjoint,
          never interleaved (two tasks on one looper interleave *in
          eligibility*, not in ids, but they fail the next clause), and
        * a **static** thread-local edge ``last(c1) → first(c2)`` exists
          (e.g. NO-Q-PO's pre-loop → first-task edge): the relation only
          grows, so once transitivity composes the chain-internal orders
          across that bridge, every earlier member precedes every later
          member — in the decomposed engine via TRANS-ST, in plain mode
          via plain reachability.

        Greedy deterministic matching: chains are walked in ascending id
        order; each group extends from its tail along the smallest-target
        eligible static edge, and every chain joins at most one group.
        Must run after static edges are inserted and before the first
        :meth:`saturate` — the pass rebuilds the chain structures and
        reallocates the (unsaturated) reach rows.
        """
        if self.chain_count < 2:
            return 0
        chains = self.chains
        chain_threads = self.chain_threads
        first_of = {members[0]: c for c, members in enumerate(chains)}
        absorbed = bytearray(self.chain_count)
        groups: List[List[int]] = []
        merged = 0
        for c in range(self.chain_count):
            if absorbed[c]:
                continue
            group = [c]
            tail = c
            while True:
                u = chains[tail][-1]
                best: Optional[Tuple[int, int]] = None
                for v in self.succ_st[u]:
                    nc = first_of.get(v)
                    if (
                        nc is None
                        or absorbed[nc]
                        or nc == c
                        or chain_threads[nc] != chain_threads[c]
                    ):
                        continue
                    if best is None or v < best[0]:
                        best = (v, nc)
                if best is None:
                    break
                nc = best[1]
                absorbed[nc] = 1
                group.append(nc)
                tail = nc
                merged += 1
            groups.append(group)
        if not merged:
            return 0
        new_chains: List[List[int]] = []
        new_threads: List[str] = []
        for group in groups:
            members: List[int] = []
            for oc in group:
                members.extend(chains[oc])
            new_chains.append(members)  # parts are disjoint ascending ranges
            new_threads.append(chain_threads[group[0]])
        self.chains = new_chains
        self.chain_threads = new_threads
        self.chain_count = len(new_chains)
        chain_of = self.chain_of
        for c, members in enumerate(new_chains):
            for nid in members:
                chain_of[nid] = c
        self._chain_tid = array(
            "i", (self._node_tid[members[0]] for members in new_chains)
        )
        self.merged_chains += merged
        self._alloc_rows()
        return merged

    # -- saturation ----------------------------------------------------------

    def _fold(self, row, mrow, allow_all: bool, ti: int) -> List[int]:
        """Take the min of ``row`` and ``mrow`` per chain; returns the
        chains lowered.  ``allow_all`` folds every chain (st member or
        plain mode); otherwise only chains on threads other than ``ti``
        (mt member — TRANS-MT's different-thread side condition)."""
        out: List[int] = []
        chain_tid = self._chain_tid
        for c in range(self.chain_count):
            v = mrow[c]
            if v < row[c] and (allow_all or chain_tid[c] != ti):
                row[c] = v
                out.append(c)
        return out

    def _gained_marks(self, gained: bytearray):
        """A (cached) live uint8 view over the round's ``gained`` marks —
        created once per buffer instead of once per re-closed row."""
        cache = self._gained_cache
        if cache is not None and cache[0] is gained:
            return cache[1]
        marks = _np.frombuffer(gained, dtype=_np.uint8)
        self._gained_cache = (gained, marks)
        return marks

    def _diff_mask_np(self, ti: int):
        """Cached boolean mask of chains on threads other than ``ti``."""
        mask = self._diff_masks.get(ti)
        if mask is None:
            mask = self._diff_masks[ti] = self._chain_tid_np != ti
        return mask

    def _close_row(self, i: int, gained: Optional[bytearray]) -> bool:
        """(Re-)close row ``i`` against the already-closed higher rows.

        Returns True if any entry lowered.  ``gained`` (delta mode) marks
        rows whose vectors changed this round: existing different-thread
        chain minima pointing at such rows are re-expanded, because their
        new facts need not be visible through any direct successor (the
        mt relation is left-recursive).
        """
        if self._matrix is not None:
            return self._close_row_np(i, gained)
        row = self.reach[i]
        ti = self._node_tid[i]
        plain = self.plain
        reach = self.reach
        chain_of = self.chain_of
        chain_tid = self._chain_tid
        changed = False
        pending: List[int] = []

        for j in self.succ_st[i]:
            c = chain_of[j]
            if j < row[c]:
                row[c] = j
                changed = True
        for j in self.succ_mt[i]:
            c = chain_of[j]
            if j < row[c]:
                row[c] = j
                changed = True
        # Absorb closed rows of direct successors.  An st successor shares
        # the thread, so its whole row folds (and chains it lowers carry
        # already-expanded facts — same filter — so they need no re-fold);
        # an mt successor folds through the different-thread filter, and
        # chains it lowers were closed relative to *its* thread, so they
        # join the expansion frontier.
        for j in self.succ_st[i]:
            if self._fold(row, reach[j], True, ti):
                changed = True
        for j in self.succ_mt[i]:
            lowered = self._fold(row, reach[j], plain, ti)
            if lowered:
                changed = True
                if not plain:
                    pending.extend(lowered)
        if gained is not None and not plain:
            INF = self.INF
            for c in range(self.chain_count):
                v = row[c]
                if v < INF and chain_tid[c] != ti and gained[v]:
                    pending.append(c)
        # Expansion fixpoint over different-thread chain minima (plain
        # reachability is right-recursive and never needs it).
        expanded: Dict[int, int] = {}
        while pending:
            nxt: List[int] = []
            for c in pending:
                m = row[c]
                if expanded.get(c) == m:
                    continue
                expanded[c] = m
                lowered = self._fold(row, reach[m], False, ti)
                if lowered:
                    changed = True
                    nxt.extend(lowered)
            pending = nxt
        return changed

    def _close_row_np(self, i: int, gained: Optional[bytearray]) -> bool:
        """Vectorized :meth:`_close_row` for the matrix storage.

        Per-successor folds collapse into one gather + min-reduce per
        relation (min is associative, so batching the folds reaches the
        same per-row fixpoint the sequential reference path does), and
        each expansion round folds all pending chain minima in one batch.
        A handful of C-speed array ops per row replace the O(C) python
        loops — the constant the 100k bench point stands on.
        """
        matrix = self._matrix
        row = matrix[i]
        ti = self._node_tid[i]
        plain = self.plain
        chain_of = self.chain_of
        changed = False
        for j in self.succ_st[i]:
            c = chain_of[j]
            if j < row[c]:
                row[c] = j
                changed = True
        for j in self.succ_mt[i]:
            c = chain_of[j]
            if j < row[c]:
                row[c] = j
                changed = True
        sts = self.succ_st[i]
        if sts:
            mrow = matrix[sts[0]] if len(sts) == 1 else matrix[sts].min(axis=0)
            lower = mrow < row
            if lower.any():
                _np.copyto(row, mrow, where=lower)
                changed = True
        pending: List[int] = []
        mts = self.succ_mt[i]
        if mts:
            mrow = matrix[mts[0]] if len(mts) == 1 else matrix[mts].min(axis=0)
            lower = mrow < row
            if not plain:
                lower &= self._diff_mask_np(ti)
            lowered = _np.flatnonzero(lower)
            if lowered.size:
                row[lowered] = mrow[lowered]
                changed = True
                if not plain:
                    pending = lowered.tolist()
        if gained is not None and not plain:
            idx = _np.flatnonzero((row < self.INF) & self._diff_mask_np(ti))
            if idx.size:
                marks = self._gained_marks(gained)
                stale = idx[marks[row[idx]] != 0]
                if stale.size:
                    pending.extend(stale.tolist())
        expanded: Dict[int, int] = {}
        while pending:
            targets: List[int] = []
            for c in pending:
                m = int(row[c])
                if expanded.get(c) == m:
                    continue
                expanded[c] = m
                targets.append(m)
            pending = []
            if not targets:
                break
            mrow = (
                matrix[targets[0]]
                if len(targets) == 1
                else matrix[targets].min(axis=0)
            )
            lower = (mrow < row) & self._diff_mask_np(ti)
            lowered = _np.flatnonzero(lower)
            if lowered.size:
                row[lowered] = mrow[lowered]
                changed = True
                pending = lowered.tolist()
        return changed

    def _reset_rows(self) -> None:
        if self._matrix is not None:
            self._matrix.fill(self.INF)
            return
        inf_row = array("i", [self.INF]) * self.chain_count
        reach = self.reach
        for i in range(self.n):
            reach[i] = array("i", inf_row)

    def saturate(self, workers: int = 1) -> None:
        """Full sweep: reset every row to its direct-edge seeds and close
        high-to-low (the analogue of the bitmask full re-sweep).  With
        ``workers > 1`` the sweep is sharded across forked processes (see
        :meth:`_saturate_sharded`); any worker count computes the same
        least fixpoint, so the rows are byte-identical."""
        n = self.n
        if not n:
            return
        self._reset_rows()
        if workers > 1 and self._saturate_sharded(workers):
            return
        for i in range(n - 1, -1, -1):
            self._close_row(i, None)

    # -- sharded saturation --------------------------------------------------

    def _row_bytes(self, i: int) -> bytes:
        if self._matrix is not None:
            return self._matrix[i].tobytes()
        return self.reach[i].tobytes()

    def _set_row_bytes(self, i: int, data: bytes) -> None:
        if self._matrix is not None:
            self._matrix[i] = _np.frombuffer(data, dtype=self._matrix.dtype)
            return
        row = array("i")
        row.frombytes(data)
        self.reach[i] = row

    def _close_shard(
        self,
        lo: int,
        hi: int,
        dirty: Optional[List[int]],
        gained: Optional[bytearray],
        collect_obs: bool,
    ):
        """Worker body: close this shard's (dirty) rows high-to-low against
        the forked snapshot; ship home the changed rows (+ an optional
        tracer snapshot, merged into the parent's pass span — the same
        discipline as the corpus BatchAnalyzer workers)."""
        if dirty is None:
            rows: Iterator[int] = range(hi - 1, lo - 1, -1)
            count = hi - lo
        else:
            rows = [i for i in reversed(dirty) if lo <= i < hi]
            count = len(rows)
        tracer = Tracer() if collect_obs else current_tracer()
        changed = array("i")
        with use_tracer(tracer):
            with tracer.span("closure.shard", lo=lo, hi=hi, rows=count):
                for i in rows:
                    if self._close_row(i, gained):
                        if gained is not None:
                            gained[i] = 1
                        changed.append(i)
        payload = b"".join(self._row_bytes(i) for i in changed)
        obs = tracer.snapshot() if collect_obs else None
        return changed.tobytes(), payload, obs

    def _apply_shard_rows(self, ids_bytes: bytes, payload: bytes) -> List[int]:
        ids = array("i")
        ids.frombytes(ids_bytes)
        width = 4 * self.chain_count
        for k, i in enumerate(ids):
            self._set_row_bytes(i, payload[k * width : (k + 1) * width])
        return list(ids)

    def _dirty_rows(self, changed: List[int]) -> List[int]:
        """Rows whose next re-close could gain facts: anything whose reach
        vector already points at or below a changed row on that row's
        chain (the same conservative frontier test
        :meth:`saturate_delta` uses)."""
        frontier: Dict[int, int] = {}
        chain_of = self.chain_of
        for i in changed:
            c = chain_of[i]
            if i > frontier.get(c, -1):
                frontier[c] = i
        bounds = sorted(frontier.items())
        if self._matrix is not None:
            cs = _np.fromiter((c for c, _ in bounds), dtype=_np.intp, count=len(bounds))
            bs = _np.fromiter(
                (b for _, b in bounds), dtype=self._matrix.dtype, count=len(bounds)
            )
            hit = (self._matrix[:, cs] <= bs).any(axis=1)
            return _np.flatnonzero(hit).tolist()
        out: List[int] = []
        for i in range(self.n):
            row = self.reach[i]
            for c, bound in bounds:
                if row[c] <= bound:
                    out.append(i)
                    break
        return out

    def _saturate_sharded(self, workers: int) -> bool:
        """Shard the full sweep by contiguous row range; returns True when
        the sharded path ran to the fixpoint.

        Pass 1 closes every shard against the seed rows; each later pass
        re-closes only the dirty frontier of the previous pass's changed
        rows, with cumulative ``gained`` marks so stale chain minima
        re-expand (the delta discipline of :meth:`saturate_delta`).  Rows
        only move monotonically toward the unique least fixpoint, so the
        pass loop terminates with exactly the serial sweep's rows — and a
        mid-run pool failure can safely finish serially on the partial
        state."""
        ranges = shard_ranges(self.n, workers)
        if len(ranges) < 2 or not fork_available():
            return False
        tracer = current_tracer()
        gained = bytearray(self.n)
        dirty: Optional[List[int]] = None  # None: pass 1 closes every row
        pass_no = 0
        while True:
            pass_no += 1
            with tracer.span(
                "closure.shard_pass",
                index=pass_no,
                shards=len(ranges),
                rows=self.n if dirty is None else len(dirty),
            ) as span:
                pass_gained = gained if pass_no > 1 else None
                collect = tracer.enabled
                results = map_shards(
                    lambda lo, hi: self._close_shard(
                        lo, hi, dirty, pass_gained, collect
                    ),
                    ranges,
                )
                if results is None:
                    span.set(fallback=True)
                    if pass_no == 1:
                        return False  # nothing ran; caller sweeps serially
                    self._finish_serial(dirty, gained)
                    return True
                changed: List[int] = []
                for ids_bytes, payload, obs in results:
                    if obs is not None:
                        tracer.merge(obs, parent=span)
                    changed.extend(self._apply_shard_rows(ids_bytes, payload))
                span.set(changed=len(changed))
            if not changed:
                return True
            for i in changed:
                gained[i] = 1
            dirty = self._dirty_rows(changed)
            if not dirty:
                return True

    def _finish_serial(self, dirty: List[int], gained: bytearray) -> None:
        """Complete the sharded fixpoint in-process after a pool failure
        (sound: the partial rows are on the monotone path to the unique
        least fixpoint, and the delta loop closes the remaining gap)."""
        while dirty:
            changed: List[int] = []
            for i in reversed(dirty):
                if self._close_row(i, gained):
                    gained[i] = 1
                    changed.append(i)
            if not changed:
                return
            dirty = self._dirty_rows(changed)

    # -- incremental delta re-closure -----------------------------------------

    def apply_edges(self, edges: List[Tuple[int, int]]) -> None:
        """Record a round's new base edges (rule applications defer index
        writes until the round ends so premise queries read the closure
        as of the start of the round, exactly like the bitmask engine)."""
        for u, v in edges:
            self.add_st(u, v)

    def saturate_delta(self, edges: List[Tuple[int, int]], workers: int = 1) -> None:
        """Re-close after a FIFO/NOPRE round inserted ``edges``.

        A row whose closure changes need *not* reach an edge source: the
        TRANS-MT side condition can block the composition ``i ≺ k ≺ u``
        (when ``thread(i) == thread(u)``) while ``i`` still gains the
        facts ``k`` itself gained from ``u`` (``i ≺ k ≺ w`` with
        ``thread(w) ≠ thread(i)``).  So the dirty frontier is computed to
        a fixpoint: the first pass dirties the closure predecessors of
        the edge sources (one O(1) query per row per source chain) plus
        the sources themselves; every pass re-closes its dirty rows
        highest-first, and each row that actually changed becomes a
        source for the next pass, until a pass changes nothing.

        Within one pass, highest-first order keeps every row current with
        respect to that pass's gains (gains only flow from higher rows to
        lower ones): by the time row ``i`` re-closes, every changed row
        above it carries a ``gained`` mark, which makes ``_close_row``
        re-expand stale chain minima.  Rows outside the pass's dirty set
        that reach a changed row are exactly what the next pass picks up.
        A pass's dirty scan skips rows the previous pass re-closed — they
        already absorbed the very gains that seed the new frontier.

        Under the matrix storage, a round whose first dirty set already
        covers most of the graph switches to a fresh full sweep instead:
        a delta re-close pays for gained-mark scans and repeated passes
        that the from-scratch sweep avoids, so beyond roughly a third of
        the rows the sweep is strictly cheaper — and, computing the same
        unique least fixpoint, bit-identical.  (The python-kernel path
        never switches; it is the differential reference.)
        """
        if not edges:
            return
        self.apply_edges(edges)
        chain_of = self.chain_of
        reach = self.reach
        n = self.n
        gained = bytearray(self.n)
        for u, _v in edges:
            gained[u] = 1
        # Per frontier chain, the highest frontier row: reaching any
        # member at or below it marks the row dirty (conservative for
        # lower frontier rows — extra dirty rows re-close to no effect).
        frontier: Dict[int, int] = {}
        for u, _v in edges:
            c = chain_of[u]
            if u > frontier.get(c, -1):
                frontier[c] = u
        first = True
        closed = bytearray(n)  # re-closed in the pass that built frontier
        self._delta_scratch_bytes = max(
            self._delta_scratch_bytes,
            sys.getsizeof(gained) + sys.getsizeof(closed),
        )
        matrix = self._matrix
        while frontier:
            bounds = sorted(frontier.items())
            if matrix is not None:
                cs = _np.fromiter(
                    (c for c, _ in bounds), dtype=_np.intp, count=len(bounds)
                )
                bs = _np.fromiter(
                    (b for _, b in bounds), dtype=matrix.dtype, count=len(bounds)
                )
                hit = (matrix[:, cs] <= bs).any(axis=1)
                if first:
                    hit |= _np.frombuffer(gained, dtype=_np.uint8) != 0
                hit &= _np.frombuffer(closed, dtype=_np.uint8) == 0
                dirty = _np.flatnonzero(hit).tolist()
                if first and 3 * len(dirty) > n:
                    self.saturate(workers=workers)
                    return
            else:
                dirty = []
                for i in range(n):
                    if closed[i]:
                        continue
                    if first and gained[i]:
                        dirty.append(i)
                        continue
                    row = reach[i]
                    for c, bound in bounds:
                        if row[c] <= bound:
                            dirty.append(i)
                            break
            first = False
            frontier = {}
            closed = bytearray(n)
            for i in reversed(dirty):
                closed[i] = 1
                if self._close_row(i, gained):
                    gained[i] = 1
                    c = chain_of[i]
                    if i > frontier.get(c, -1):
                        frontier[c] = i
