"""Operational semantics of the core language (paper, Figure 5).

The paper defines a transition system ``S_A = (Σ, →, σ0)`` over application
states ``σ = (C, R, F, B, E, Q, L)``:

* ``C`` — threads created but not yet scheduled,
* ``R`` — running threads,
* ``F`` — finished threads,
* ``B`` — threads that have begun processing their task queues,
* ``E`` — which task each thread is executing (⊥ when idle),
* ``Q`` — task queue of each thread (ε when none attached),
* ``L`` — locks held by each thread.

This module implements the transition system as an executable *validator*:
:func:`validate_trace` replays a trace, checking the antecedents of the rule
for every operation and applying its consequents.  A sequence of operations
is an execution trace of the semantics iff replay succeeds.

The simulated runtime (``repro.android``) generates traces, and the test
suite checks that every generated trace is accepted here — the semantics is
the contract between trace generation and race detection.

Delayed and at-front posts (§4.2) are extensions over Figure 5; in
``strict_fifo`` mode the BEGIN rule insists on exact FIFO order (Figure 5
verbatim), otherwise delivery order must merely be consistent with the
pending set (delays and at-front posts legally reorder the queue).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .operations import OpKind, Operation
from .trace import ExecutionTrace


class SemanticsError(ValueError):
    """A trace violated the transition rules of Figure 5."""

    def __init__(self, op: Operation, reason: str):
        self.op = op
        self.reason = reason
        super().__init__(
            "op %d %s violates the semantics: %s" % (op.index, op.render(), reason)
        )


class ApplicationState:
    """The state ``σ`` of Figure 5 (START rule initialises it)."""

    def __init__(self, initial_threads: Iterable[str] = ()):  # START
        self.created: Set[str] = set(initial_threads)
        self.running: Set[str] = set()
        self.finished: Set[str] = set()
        self.looping: Set[str] = set()
        self.executing: Dict[str, Optional[str]] = {t: None for t in self.created}
        self.queues: Dict[str, Optional[List[str]]] = {t: None for t in self.created}
        self.locks: Dict[str, Dict[str, int]] = {t: {} for t in self.created}

    # -- helpers -------------------------------------------------------------

    def known(self, thread: str) -> bool:
        return (
            thread in self.created
            or thread in self.running
            or thread in self.finished
        )

    def ensure_created(self, thread: str) -> None:
        """Threads appearing without a prior fork are framework-created
        (the paper's ``Threads`` set): admit them lazily into ``C``."""
        if not self.known(thread):
            self.created.add(thread)
            self.executing[thread] = None
            self.queues[thread] = None
            self.locks[thread] = {}

    def lock_holder(self, lock: str) -> Optional[str]:
        for thread, held in self.locks.items():
            if held.get(lock):
                return thread
        return None


def step(state: ApplicationState, op: Operation, strict_fifo: bool = True) -> None:
    """Apply one operation to ``state``, raising :class:`SemanticsError`
    if its rule's antecedents do not hold."""
    kind = op.kind
    t = op.thread

    if kind is OpKind.THREAD_INIT:  # INIT
        state.ensure_created(t)
        if t not in state.created:
            raise SemanticsError(op, "thread %s is not in the created set" % t)
        state.created.discard(t)
        state.running.add(t)
        return

    if kind is OpKind.FORK:  # FORK
        _require_running(state, op)
        child = op.target
        if state.known(child):
            raise SemanticsError(op, "forked thread id %s is not fresh" % child)
        state.created.add(child)
        state.executing[child] = None
        state.queues[child] = None
        state.locks[child] = {}
        return

    if kind is OpKind.THREAD_EXIT:  # EXIT
        _require_running(state, op)
        if state.executing.get(t) is not None:
            raise SemanticsError(
                op, "thread exits while task %s is still running" % state.executing[t]
            )
        state.running.discard(t)
        state.finished.add(t)
        return

    if kind is OpKind.JOIN:  # JOIN
        _require_running(state, op)
        if op.target not in state.finished:
            raise SemanticsError(op, "joined thread %s has not finished" % op.target)
        return

    if kind is OpKind.ACQUIRE:  # ACQUIRE
        _require_running(state, op)
        holder = state.lock_holder(op.lock)
        if holder is not None and holder != t:
            raise SemanticsError(
                op, "lock %s is held by thread %s" % (op.lock, holder)
            )
        held = state.locks[t]
        held[op.lock] = held.get(op.lock, 0) + 1
        return

    if kind is OpKind.RELEASE:  # RELEASE
        _require_running(state, op)
        held = state.locks[t]
        if not held.get(op.lock):
            raise SemanticsError(op, "releasing lock %s not held" % op.lock)
        held[op.lock] -= 1
        if held[op.lock] == 0:
            del held[op.lock]
        return

    if kind is OpKind.ATTACH_Q:  # ATTACHQ
        _require_running(state, op)
        if state.queues.get(t) is not None:
            raise SemanticsError(op, "thread %s already has a task queue" % t)
        state.queues[t] = []
        return

    if kind is OpKind.POST:  # POST
        _require_running(state, op)
        target = op.target
        if target not in state.running and target not in state.created:
            raise SemanticsError(op, "post target %s is not alive" % target)
        queue = state.queues.get(target)
        if queue is None:
            raise SemanticsError(op, "post target %s has no task queue" % target)
        if op.at_front:
            queue.insert(0, op.task)
        else:
            queue.append(op.task)
        return

    if kind is OpKind.LOOP_ON_Q:  # LOOPONQ
        _require_running(state, op)
        if t in state.looping:
            raise SemanticsError(op, "thread %s is already looping" % t)
        if state.queues.get(t) is None:
            raise SemanticsError(op, "thread %s has no task queue" % t)
        state.looping.add(t)
        state.executing[t] = None
        return

    if kind is OpKind.BEGIN:  # BEGIN
        _require_running(state, op)
        if t not in state.looping:
            raise SemanticsError(op, "thread %s has not begun looping" % t)
        if state.executing.get(t) is not None:
            raise SemanticsError(
                op,
                "thread %s is still executing task %s" % (t, state.executing[t]),
            )
        queue = state.queues[t]
        if not queue:
            raise SemanticsError(op, "task queue of %s is empty" % t)
        if strict_fifo:
            front = queue[0]
            if front != op.task:
                raise SemanticsError(
                    op, "task %s is not at the front (front is %s)" % (op.task, front)
                )
            queue.pop(0)
        else:
            if op.task not in queue:
                raise SemanticsError(op, "task %s was never posted to %s" % (op.task, t))
            queue.remove(op.task)
        state.executing[t] = op.task
        return

    if kind is OpKind.END:  # END
        _require_running(state, op)
        if state.executing.get(t) != op.task:
            raise SemanticsError(
                op,
                "end(%s) but thread %s is executing %s"
                % (op.task, t, state.executing.get(t)),
            )
        state.executing[t] = None
        return

    if kind in (OpKind.READ, OpKind.WRITE, OpKind.ENABLE):
        # These do not change the application state (paper, §3), but they
        # must still be executed by a running thread.
        _require_running(state, op)
        return

    raise SemanticsError(op, "unknown op-code %s" % kind)


def _require_running(state: ApplicationState, op: Operation) -> None:
    if op.thread not in state.running:
        raise SemanticsError(op, "thread %s is not running" % op.thread)


def validate_trace(
    trace: ExecutionTrace,
    initial_threads: Iterable[str] = (),
    strict_fifo: bool = False,
) -> ApplicationState:
    """Replay ``trace`` through the transition system; return the final
    state, or raise :class:`SemanticsError` at the first violating step.

    ``strict_fifo=True`` additionally enforces the verbatim FIFO dequeue of
    Figure 5 (appropriate only for traces without delayed/at-front posts).
    """
    state = ApplicationState(initial_threads)
    for op in trace:
        if op.kind is OpKind.THREAD_INIT:
            state.ensure_created(op.thread)
        step(state, op, strict_fifo=strict_fifo)
    return state


def is_valid_trace(trace: ExecutionTrace, strict_fifo: bool = False) -> bool:
    """Boolean wrapper around :func:`validate_trace`."""
    try:
        validate_trace(trace, strict_fifo=strict_fifo)
    except SemanticsError:
        return False
    return True
