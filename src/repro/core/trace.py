"""Execution traces and their derived metadata.

An :class:`ExecutionTrace` is the unit of analysis: an ordered sequence of
:class:`~repro.core.operations.Operation` together with indices that the
happens-before engine (Figures 6 and 7 of the paper) and the race classifier
(§4.3) need:

* per-thread: positions of ``attachQ`` and ``loopOnQ``;
* per-task: the unique ``post``/``begin``/``end`` positions, the executing
  thread, the posting operation, delay, and the *post chain* leading to it;
* the ``task(α)`` helper of the paper — the asynchronous task whose handler
  executed operation ``α`` (``None`` outside any task).

The paper assumes each procedure occurs at most once per trace (distinct
occurrences are renamed apart).  We keep that invariant: task names in a
trace are unique instance names; :class:`TraceBuilder` provides renaming
for convenience when encoding traces by hand.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from typing import Dict, IO, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .operations import MalformedOperationError, OpKind, Operation


class InvalidTraceError(ValueError):
    """Raised when a sequence of operations is not a well-formed trace."""


class TraceFormatError(InvalidTraceError):
    """A JSONL trace record could not be parsed.

    Carries the 1-based ``line_number`` of the offending record and the
    underlying ``reason`` so batch tooling can report *which* line of
    *which* file is broken instead of an opaque ``KeyError``.
    """

    def __init__(self, line_number: int, reason: str, line: str = ""):
        self.line_number = line_number
        self.reason = reason
        self.line = line
        shown = line.strip()
        if len(shown) > 80:
            shown = shown[:77] + "..."
        message = "line %d: %s" % (line_number, reason)
        if shown:
            message += " in %r" % shown
        super().__init__(message)


class TaskInfo:
    """Metadata for one asynchronous task instance appearing in a trace."""

    __slots__ = (
        "name",
        "post_index",
        "begin_index",
        "end_index",
        "thread",
        "poster_thread",
        "delay",
        "at_front",
        "event",
        "posted_in_task",
    )

    def __init__(self, name: str):
        self.name = name
        self.post_index: Optional[int] = None
        self.begin_index: Optional[int] = None
        self.end_index: Optional[int] = None
        self.thread: Optional[str] = None  # thread the task runs on
        self.poster_thread: Optional[str] = None
        self.delay: Optional[int] = None
        self.at_front: bool = False
        self.event: Optional[str] = None
        self.posted_in_task: Optional[str] = None  # task containing the post

    @property
    def is_delayed(self) -> bool:
        return bool(self.delay)

    @property
    def is_event(self) -> bool:
        return self.event is not None

    def __repr__(self) -> str:
        return "TaskInfo(%s on %s, post=%s begin=%s end=%s)" % (
            self.name,
            self.thread,
            self.post_index,
            self.begin_index,
            self.end_index,
        )


class ExecutionTrace:
    """An immutable, validated execution trace with derived metadata."""

    def __init__(self, operations: Iterable[Operation], name: str = "trace"):
        self.name = name
        self.ops: List[Operation] = []
        self.tasks: Dict[str, TaskInfo] = {}
        self.loop_index: Dict[str, int] = {}  # thread -> index of loopOnQ
        self.attach_index: Dict[str, int] = {}  # thread -> index of attachQ
        self.threads: List[str] = []
        self._thread_set: set = set()
        self._in_task: List[Optional[str]] = []
        self._ingest(operations)

    # -- construction -------------------------------------------------------

    def _ingest(self, operations: Iterable[Operation]) -> None:
        current_task: Dict[str, Optional[str]] = {}
        for raw in operations:
            index = len(self.ops)
            op = raw if raw.index == index else _reindex(raw, index)
            t = op.thread
            if t not in self._thread_set:
                self._thread_set.add(t)
                self.threads.append(t)
                current_task.setdefault(t, None)

            if op.kind is OpKind.ATTACH_Q:
                if t in self.attach_index:
                    raise InvalidTraceError(
                        "thread %s attaches a queue twice (ops %d, %d)"
                        % (t, self.attach_index[t], index)
                    )
                self.attach_index[t] = index
            elif op.kind is OpKind.LOOP_ON_Q:
                if t in self.loop_index:
                    raise InvalidTraceError(
                        "thread %s loops on its queue twice (ops %d, %d)"
                        % (t, self.loop_index[t], index)
                    )
                if t not in self.attach_index:
                    raise InvalidTraceError(
                        "thread %s loops on a queue it never attached" % t
                    )
                self.loop_index[t] = index
            elif op.kind is OpKind.POST:
                info = self._task(op.task)
                if info.post_index is not None:
                    raise InvalidTraceError(
                        "task %s posted twice (ops %d, %d); task instance "
                        "names must be unique" % (op.task, info.post_index, index)
                    )
                info.post_index = index
                info.poster_thread = t
                info.thread = op.target
                info.delay = op.delay
                info.at_front = op.at_front
                info.event = op.event
                info.posted_in_task = current_task.get(t)
            elif op.kind is OpKind.BEGIN:
                info = self._task(op.task)
                if info.begin_index is not None:
                    raise InvalidTraceError("task %s begins twice" % op.task)
                if current_task.get(t) is not None:
                    raise InvalidTraceError(
                        "task %s begins inside task %s on thread %s: tasks "
                        "run to completion" % (op.task, current_task[t], t)
                    )
                info.begin_index = index
                if info.thread is None:
                    info.thread = t
                elif info.thread != t:
                    raise InvalidTraceError(
                        "task %s was posted to %s but begins on %s"
                        % (op.task, info.thread, t)
                    )
                current_task[t] = op.task
            elif op.kind is OpKind.END:
                info = self._task(op.task)
                if current_task.get(t) != op.task:
                    raise InvalidTraceError(
                        "end(%s) on thread %s does not match the running "
                        "task %s" % (op.task, t, current_task.get(t))
                    )
                info.end_index = index
                current_task[t] = None

            running = current_task.get(t)
            if op.kind is OpKind.BEGIN:
                # begin/end ops belong to the task they bracket.
                self._in_task.append(op.task)
            else:
                self._in_task.append(running if op.kind is not OpKind.END else op.task)
            if op.in_task is not None and op.in_task != self._in_task[-1]:
                raise InvalidTraceError(
                    "op %d declares in_task=%s but trace structure implies %s"
                    % (index, op.in_task, self._in_task[-1])
                )
            self.ops.append(op)

        for info in self.tasks.values():
            if info.begin_index is not None and info.end_index is None:
                # A task still running when the trace was cut short: tolerate,
                # the HB rules only need begin.
                pass

    def _task(self, name: str) -> TaskInfo:
        info = self.tasks.get(name)
        if info is None:
            info = TaskInfo(name)
            self.tasks[name] = info
        return info

    # -- the paper's helper functions ---------------------------------------

    def thread_of(self, index: int) -> str:
        """``thread(α)`` — the thread executing operation ``index``."""
        return self.ops[index].thread

    def task_of(self, index: int) -> Optional[Tuple[str, str]]:
        """``task(α)`` — (thread, task) pair for operations executed inside
        an asynchronous task, else ``None``."""
        name = self._in_task[index]
        if name is None:
            return None
        return (self.ops[index].thread, name)

    def task_name_of(self, index: int) -> Optional[str]:
        return self._in_task[index]

    def looped_before(self, thread: str, index: int) -> bool:
        """True iff ``loopOnQ(thread)`` occurs before position ``index``
        (premise of NO-Q-PO vs ASYNC-PO, Figure 6)."""
        loop = self.loop_index.get(thread)
        return loop is not None and loop < index

    def post_chain(self, index: int) -> List[int]:
        """``chain(α)`` of §4.3 — indices of the maximal chain of post
        operations ``β1 … βm`` with ``callee(βj) = task(βj+1)`` and
        ``callee(βm) = task(α)``, oldest first."""
        chain: List[int] = []
        task_name = self._in_task[index]
        seen = set()
        while task_name is not None and task_name not in seen:
            seen.add(task_name)
            info = self.tasks.get(task_name)
            if info is None or info.post_index is None:
                break
            chain.append(info.post_index)
            task_name = info.posted_in_task
        chain.reverse()
        return chain

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __getitem__(self, index: int) -> Operation:
        return self.ops[index]

    def memory_accesses(self) -> Iterator[Operation]:
        return (op for op in self.ops if op.is_memory_access)

    def locations(self) -> List[str]:
        seen: Dict[str, None] = {}
        for op in self.ops:
            if op.is_memory_access and op.location not in seen:
                seen[op.location] = None
        return list(seen)

    def fields(self) -> List[str]:
        """Distinct *fields*: the paper reports a field of a class once even
        if accessed through many objects.  Our locations are ``object.field``
        strings; the field identity is ``Class.field``."""
        seen: Dict[str, None] = {}
        for loc in self.locations():
            seen[field_of_location(loc)] = None
        return list(seen)

    def threads_with_queue(self) -> List[str]:
        return [t for t in self.threads if t in self.attach_index]

    def threads_without_queue(self) -> List[str]:
        return [t for t in self.threads if t not in self.attach_index]

    def async_task_count(self) -> int:
        return sum(1 for info in self.tasks.values() if info.begin_index is not None)

    def without_cancelled_posts(self, cancelled: Iterable[str]) -> "ExecutionTrace":
        """Return a trace with the posts of cancelled tasks removed (§4.2:
        'The cancellation of posted tasks is handled by removing the
        corresponding post operations from the trace')."""
        gone = set(cancelled)
        kept = [
            op
            for op in self.ops
            if not (op.kind is OpKind.POST and op.task in gone)
        ]
        return ExecutionTrace(kept, name=self.name)

    # -- (de)serialization ----------------------------------------------------

    def to_jsonl(self) -> str:
        """Canonical JSONL serialization: one record per operation, keys
        sorted, no trace name — byte-identical for equal operation
        sequences, which is what :meth:`canonical_digest` keys on."""
        lines = [json.dumps(operation_to_record(op), sort_keys=True) for op in self.ops]
        return "\n".join(lines) + "\n"

    def canonical_digest(self) -> str:
        """SHA-256 hex digest of the canonical serialization.

        Content-addressed identity for trace stores and result caches:
        two traces with the same operations share a digest regardless of
        their (display) names.
        """
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()

    @classmethod
    def from_jsonl(
        cls, text: str, name: str = "trace", strict: bool = True
    ) -> "ExecutionTrace":
        return cls.from_lines(text.splitlines(), name=name, strict=strict)

    @classmethod
    def from_lines(
        cls, lines: Iterable[str], name: str = "trace", strict: bool = True
    ) -> "ExecutionTrace":
        """Build a trace from an iterable of JSONL lines (streaming — a
        file handle works and is never read into memory at once).

        With ``strict=True`` (default) a malformed record raises
        :class:`TraceFormatError` naming the offending line; with
        ``strict=False`` bad lines are skipped with a warning — the mode
        corpus batch analysis uses so one broken record degrades one
        trace instead of failing a batch.
        """
        ops = []
        for line_number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                ops.append(operation_from_record(json.loads(stripped)))
            except (ValueError, KeyError, TypeError) as exc:
                error = TraceFormatError(line_number, _format_reason(exc), stripped)
                if strict:
                    raise error from exc
                warnings.warn("skipping bad trace record: %s" % error, stacklevel=2)
        return cls(ops, name=name)

    @classmethod
    def load(
        cls,
        path: Union[str, "os.PathLike[str]"],
        name: Optional[str] = None,
        strict: bool = True,
    ) -> "ExecutionTrace":
        """Stream a JSONL trace file from disk."""
        from repro.obs import current_tracer

        with current_tracer().span("trace.load", path=str(path)) as span:
            with open(path, "r", encoding="utf-8") as handle:
                trace = cls.from_lines(handle, name=name or str(path), strict=strict)
            span.set(ops=len(trace))
            return trace

    def render(self) -> str:
        """Human-readable rendering in the style of the paper's Figure 3."""
        width = max((len(t) for t in self.threads), default=4)
        lines = []
        for op in self.ops:
            pad = " " * (4 * self.threads.index(op.thread))
            lines.append("%4d  %s%s" % (op.index + 1, pad.ljust(width), op.render()))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "ExecutionTrace(%s, %d ops, %d threads, %d tasks)" % (
            self.name,
            len(self.ops),
            len(self.threads),
            len(self.tasks),
        )


#: Optional operation fields serialized when present, in record order.
_RECORD_FIELDS = ("task", "target", "lock", "location", "delay", "event", "source")


def operation_to_record(op: Operation) -> dict:
    """The JSON-serializable record of one operation (canonical form:
    ``kind``/``thread`` always present, optional fields only when set)."""
    rec = {"kind": op.kind.value, "thread": op.thread}
    for key in _RECORD_FIELDS:
        value = getattr(op, key)
        if value is not None:
            rec[key] = value
    if op.at_front:
        rec["at_front"] = True
    return rec


def operation_from_record(rec: dict) -> Operation:
    """Inverse of :func:`operation_to_record`.

    Raises ``ValueError`` with a meaningful message for records missing
    required keys or naming unknown op kinds (instead of a bare
    ``KeyError``).
    """
    if not isinstance(rec, dict):
        raise ValueError("record is not a JSON object: %r" % (rec,))
    rec = dict(rec)
    try:
        kind_value = rec.pop("kind")
    except KeyError:
        raise ValueError("record is missing the 'kind' field")
    try:
        kind = OpKind(kind_value)
    except ValueError:
        raise ValueError(
            "unknown op kind %r (expected one of: %s)"
            % (kind_value, ", ".join(k.value for k in OpKind))
        )
    try:
        thread = rec.pop("thread")
    except KeyError:
        raise ValueError("record is missing the 'thread' field")
    try:
        return Operation(kind, thread, **rec)
    except TypeError as exc:
        raise ValueError("bad operation field: %s" % exc)


def _format_reason(exc: BaseException) -> str:
    if isinstance(exc, json.JSONDecodeError):
        return "invalid JSON (%s)" % exc.msg
    if isinstance(exc, MalformedOperationError):
        return "malformed operation (%s)" % exc
    return str(exc) or exc.__class__.__name__


def field_of_location(location: str) -> str:
    """Map a memory-location name ``Class@instance.field`` (or
    ``object.field``) to its field identity ``Class.field``."""
    if "." in location:
        obj, _, fld = location.rpartition(".")
        cls = obj.split("@", 1)[0]
        return "%s.%s" % (cls, fld)
    return location


def _reindex(op: Operation, index: int) -> Operation:
    return Operation(
        op.kind,
        op.thread,
        index=index,
        task=op.task,
        target=op.target,
        lock=op.lock,
        location=op.location,
        in_task=op.in_task,
        delay=op.delay,
        at_front=op.at_front,
        event=op.event,
        source=op.source,
        metadata=op.metadata,
    )


class TraceBuilder:
    """Incremental trace construction with task-instance renaming.

    Hand-encoded traces (tests, examples reproducing the paper's Figures 3
    and 4) use this builder; the simulated runtime builds operations itself
    through :class:`repro.android.env.AndroidEnv`.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self._ops: List[Operation] = []
        self._task_instances: Dict[str, int] = {}

    def add(self, op: Operation) -> Operation:
        op = _reindex(op, len(self._ops))
        self._ops.append(op)
        return op

    def extend(self, ops: Sequence[Operation]) -> None:
        for op in ops:
            self.add(op)

    def unique_task(self, base: str) -> str:
        """Return a fresh task-instance name for procedure ``base``
        (``base``, ``base#2``, ``base#3``, …)."""
        n = self._task_instances.get(base, 0) + 1
        self._task_instances[base] = n
        return base if n == 1 else "%s#%d" % (base, n)

    def build(self) -> ExecutionTrace:
        return ExecutionTrace(self._ops, name=self.name)

    def __len__(self) -> int:
        return len(self._ops)
