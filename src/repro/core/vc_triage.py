"""Android-aware streaming vector-clock triage (the ``triage="vc"`` tier).

One linear pass over the trace that soundly **under-approximates** the
paper's ``≺st ∪ ≺mt`` relation, so its racy-location set is a *superset*
of the graph closure's: a zero-race verdict here proves the closure would
find nothing either, and the trace can skip the super-linear closure
entirely.  Corpus and service pipelines use it as a cheap corpus-wide
filter, escalating only vc-racy traces to the bitmask/chains backends.

Unlike the classic multithreaded detector of
:mod:`repro.core.vector_clock` (full per-thread program order — hides
every single-threaded race), each run-to-completion looper task is its
own clock **scope**:

* ops before ``loopOnQ`` (and all ops of threads without a queue) share
  the thread's scope — the full pre-loop program order of NO-Q-PO;
* ops inside task ``p`` on looper ``t`` share scope ``(t, p)``, seeded
  from ``t``'s final pre-loop clock (NO-Q-PO: every pre-loop op precedes
  every later op of the thread) — ASYNC-PO within the task, nothing
  across tasks;
* post-loop ops outside any task get a **unique scope each**, seeded
  from the pre-loop clock only — faithful to the paper, where such ops
  (e.g. ``threadexit`` on a looper) are ordered after the pre-loop
  segment but *not* after the tasks that ran before them.

Edges applied, every one an instance of a paper rule: fork/join, lock
release→acquire **between different threads only** (the LOCK side
condition), post→begin, enable→post, attachQ→post, and — eagerly, at
each ``begin`` — FIFO (with the §4.2 delayed-post refinement) and NOPRE
against every already-ended task of the looper.

Why a plain vector clock would be *unsound* here, and what this one does
about it: the paper's relation is deliberately not transitively closed —
TRANS-MT only emits different-thread pairs, so knowledge that detours
through another thread must never order two tasks of the same looper
(locks record observed order, not necessary order).  A single clock per
scope closes transitively and would claim exactly those orderings.  This
detector therefore keeps the **clean-clock invariant**: every entry
``(scope', k)`` of a scope's clock witnesses a real ``≺`` fact.  Joins
are *censored* — an incoming entry for another scope of the *same real
thread* is dropped unless that scope is provably ``≺st`` the importing
scope (the pre-loop scope, the importing scope itself, or a task in the
importing task's FIFO/NOPRE-derived ``st`` ancestor set).  Dropping an
entry can only lose orderings, never invent them: the under-approximation
direction the filter needs.  Same-looper ``st`` ancestry is tracked per
task as a bitmask over the looper's task ordinals.

Races are checked per memory location against FastTrack-style adaptive
epoch/vector access histories keyed by *scope* — two accesses in the
same scope are program-ordered, two scopes of the same looper race
unless ``st``-ordered, which is exactly the class of single-threaded
races the classic detector can never see.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .operations import OpKind, Operation
from .trace import ExecutionTrace, TaskInfo
from .vector_clock import AccessHistory, VCRace, VCReport, VectorClock

#: ``triage`` settings of :class:`repro.core.race_detector.DetectorConfig`.
TRIAGE_OFF = "off"
TRIAGE_VC = "vc"
TRIAGES = (TRIAGE_OFF, TRIAGE_VC)

#: Scope-tuple tags: thread (pre-loop / no queue), task, unique (post-loop
#: out-of-task).  Tuples keep the real thread at index 1 for censoring.
_THREAD = "t"
_TASK = "q"
_UNIQUE = "u"


def scope_label(scope: Tuple) -> str:
    """Render a scope tuple for reports: ``thread``, ``thread/task`` or
    ``thread@index``."""
    if scope[0] == _THREAD:
        return scope[1]
    if scope[0] == _TASK:
        return "%s/%s" % (scope[1], scope[2])
    return "%s@%d" % (scope[1], scope[2])


class _EndedTask:
    """What the eager FIFO/NOPRE scan needs from an already-ended task."""

    __slots__ = ("scope", "ordinal", "info", "end_clock", "post_epoch", "st_mask")

    def __init__(self, scope, ordinal, info, end_clock, post_epoch, st_mask):
        self.scope = scope
        self.ordinal = ordinal
        self.info = info
        self.end_clock = end_clock  # final clock — the task never runs again
        self.post_epoch = post_epoch  # (scope, time) of the post op, or None
        self.st_mask = st_mask  # same-looper st ancestors at end time


class TriageRaceDetector:
    """One-pass streaming under-approximation of the paper's relation."""

    def __init__(self, trace: ExecutionTrace):
        self.trace = trace
        self.scope_clocks: Dict[Tuple, VectorClock] = {}
        self.lock_clocks: Dict[str, Dict[str, VectorClock]] = {}
        self.fork_snapshots: Dict[str, VectorClock] = {}
        self.exit_snapshots: Dict[str, VectorClock] = {}
        self.attach_snapshots: Dict[str, VectorClock] = {}
        self.post_clocks: Dict[str, VectorClock] = {}
        self.post_epochs: Dict[str, Tuple[Tuple, int]] = {}
        self.enable_clocks: Dict[str, VectorClock] = {}
        self.histories: Dict[str, AccessHistory] = {}
        self.ended: Dict[str, List[_EndedTask]] = {}  # looper -> ended tasks
        self.st_masks: Dict[Tuple, int] = {}  # task scope -> ancestor bitmask
        self.scope_ordinals: Dict[Tuple, int] = {}  # task scope -> looper ordinal
        self._next_ordinal: Dict[str, int] = {}  # looper -> next task ordinal

    # -- scopes and clocks --------------------------------------------------

    def _scope_of(self, op: Operation) -> Tuple:
        t = op.thread
        if not self.trace.looped_before(t, op.index):
            return (_THREAD, t)
        task = self.trace.task_name_of(op.index)
        if task is not None:
            return (_TASK, t, task)
        return (_UNIQUE, t, op.index)

    def _clock(self, scope: Tuple) -> VectorClock:
        clock = self.scope_clocks.get(scope)
        if clock is None:
            clock = VectorClock({scope: 1})
            if scope[0] != _THREAD:
                # NO-Q-PO: the thread's (final) pre-loop clock precedes
                # every later op of the thread.
                base = self.scope_clocks.get((_THREAD, scope[1]))
                if base is not None:
                    clock.join(base)
            self.scope_clocks[scope] = clock
        return clock

    def _censored_join(self, scope: Tuple, clock: VectorClock, incoming: VectorClock) -> None:
        """Join ``incoming`` under the clean-clock invariant: entries for
        *other* scopes of the importing scope's real thread are dropped
        unless provably ``≺st`` the importing scope.  The paper's TRANS-MT
        side condition blocks exactly those compositions, so keeping them
        would over-approximate the relation and could hide real races."""
        t = scope[1]
        mask = self.st_masks.get(scope, 0)
        target = clock.clocks
        for src, time in incoming.clocks.items():
            if src[1] == t and src != scope and src[0] != _THREAD:
                if src[0] != _TASK:
                    continue  # unique scopes are never st-ordered onward
                ordinal = self.scope_ordinals.get(src)
                if ordinal is None or not mask >> ordinal & 1:
                    continue
            if time > target.get(src, 0):
                target[src] = time
        return None

    # -- the pass -----------------------------------------------------------

    def detect(self) -> VCReport:
        report = VCReport(trace_name=self.trace.name)
        for op in self.trace:
            self._step(op, report)
        report.locations_checked = len(self.histories)
        return report

    def _step(self, op: Operation, report: VCReport) -> None:
        kind = op.kind
        if kind is OpKind.READ:
            self._on_read(op, report)
            return
        if kind is OpKind.WRITE:
            self._on_write(op, report)
            return
        if kind is OpKind.BEGIN:
            self._on_begin(op, report)
            return
        if kind is OpKind.END:
            self._on_end(op)
            return
        if kind is OpKind.POST:
            self._on_post(op)
            return
        if kind is OpKind.ACQUIRE:
            scope = self._scope_of(op)
            clock = self._clock(scope)
            # LOCK: all earlier releases of this lock by *other* real
            # threads (the t ≠ t' side condition — same-thread critical
            # sections on a looper must stay unordered).
            for rel_thread, rel_clock in self.lock_clocks.get(op.lock, {}).items():
                if rel_thread != op.thread:
                    self._censored_join(scope, clock, rel_clock)
            return
        if kind is OpKind.RELEASE:
            scope = self._scope_of(op)
            clock = self._clock(scope)
            per_thread = self.lock_clocks.setdefault(op.lock, {})
            acc = per_thread.get(op.thread)
            if acc is None:
                per_thread[op.thread] = clock.copy()
            else:
                # Accumulate, don't overwrite: two releases in different
                # tasks of one looper are mutually unordered, yet each is
                # an edge source for later cross-thread acquires.
                acc.join(clock)
            clock.tick(scope)
            return
        if kind is OpKind.FORK:
            scope = self._scope_of(op)
            clock = self._clock(scope)
            self.fork_snapshots[op.target] = clock.copy()
            clock.tick(scope)
            return
        if kind is OpKind.THREAD_INIT:
            scope = self._scope_of(op)
            clock = self._clock(scope)
            snapshot = self.fork_snapshots.pop(op.thread, None)
            if snapshot is not None:
                self._censored_join(scope, clock, snapshot)
            return
        if kind is OpKind.THREAD_EXIT:
            # On a looper this op sits in a unique scope: the snapshot
            # carries pre-loop knowledge only, exactly the graph's edge set
            # (the exit of a looper is *not* ordered after its tasks).
            self.exit_snapshots[op.thread] = self._clock(self._scope_of(op)).copy()
            return
        if kind is OpKind.JOIN:
            snapshot = self.exit_snapshots.get(op.target)
            if snapshot is None:
                report.dangling_joins += 1
                return
            scope = self._scope_of(op)
            self._censored_join(scope, self._clock(scope), snapshot)
            return
        if kind is OpKind.ATTACH_Q:
            self.attach_snapshots[op.thread] = self._clock(self._scope_of(op)).copy()
            return
        if kind is OpKind.ENABLE:
            scope = self._scope_of(op)
            clock = self._clock(scope)
            acc = self.enable_clocks.get(op.task)
            if acc is None:
                self.enable_clocks[op.task] = clock.copy()
            else:
                acc.join(clock)
            clock.tick(scope)
            return
        # loopOnQ: the boundary itself needs no clock action — scope
        # assignment switches on trace.looped_before.

    def _on_post(self, op: Operation) -> None:
        scope = self._scope_of(op)
        clock = self._clock(scope)
        # ATTACH-Q-MT: attachQ(target) ≺mt this post when threads differ.
        if op.thread != op.target:
            attach = self.attach_snapshots.get(op.target)
            if attach is not None:
                self._censored_join(scope, clock, attach)
        # ENABLE-ST/MT: every prior enable of this task — matched by task
        # instance name or by the event tag naming the enabling operation.
        keys = (op.task,) if not op.event else (op.task, op.event)
        for key in keys:
            enabled = self.enable_clocks.get(key)
            if enabled is not None:
                self._censored_join(scope, clock, enabled)
        self.post_epochs[op.task] = (scope, clock.time_of(scope))
        self.post_clocks[op.task] = clock.copy()
        clock.tick(scope)

    def _on_begin(self, op: Operation, report: VCReport) -> None:
        t = op.thread
        post_clock = self.post_clocks.pop(op.task, None)
        if not self.trace.looped_before(t, op.index):
            # A task on a thread that never loops runs in the thread's own
            # scope (full pre-loop program order) — like the classic
            # detector, only the post→begin edge applies.
            scope = (_THREAD, t)
            if post_clock is None:
                report.orphan_begins += 1
            else:
                self._censored_join(scope, self._clock(scope), post_clock)
            return
        scope = (_TASK, t, op.task)
        ordinal = self._next_ordinal.get(t, 0)
        self._next_ordinal[t] = ordinal + 1
        self.scope_ordinals[scope] = ordinal
        clock = self._clock(scope)  # fresh scope + NO-Q-PO pre-loop seed
        info = self.trace.tasks.get(op.task)
        mask = 0
        # Eager FIFO + NOPRE against every ended task of this looper.  The
        # graph runs these rules to a fixpoint; evaluating the premises
        # against the streaming clocks available *now* derives a subset of
        # those edges — each one still an instance of the paper rule.
        ended = self.ended.get(t, ()) if post_clock is not None and info else ()
        for rec in ended:
            if mask >> rec.ordinal & 1:
                continue  # already an st ancestor (via another rec's mask)
            hit = False
            if _fifo_applicable(rec.info, info):
                epoch = rec.post_epoch
                # FIFO premise: post(p1) ≺ post(p2), tested against the
                # clean clock taken at post(p2).
                if epoch is not None and post_clock.dominates(epoch[0], epoch[1]):
                    hit = True
            if not hit and post_clock.time_of(rec.scope) >= 1:
                # NOPRE premise: some operation of p1 ≺ post(p2) — any
                # knowledge of p1's scope at post(p2) witnesses it (the
                # reflexive post-inside-p1 case included).
                hit = True
            if hit:
                mask |= 1 << rec.ordinal | rec.st_mask
                # p1 and its st ancestors are now st ancestors of this
                # task; p1's end clock carries their final times, and its
                # same-looper entries are all inside the new mask, so the
                # uncensored join preserves the clean-clock invariant.
                clock.join(rec.end_clock)
        self.st_masks[scope] = mask
        if post_clock is None:
            report.orphan_begins += 1
        else:
            self._censored_join(scope, clock, post_clock)

    def _on_end(self, op: Operation) -> None:
        t = op.thread
        if not self.trace.looped_before(t, op.index):
            return
        scope = (_TASK, t, op.task)
        ordinal = self.scope_ordinals.get(scope)
        if ordinal is None:
            return
        end_clock = self.scope_clocks.pop(scope, None)
        if end_clock is None:
            end_clock = self._clock(scope)
            self.scope_clocks.pop(scope, None)
        self.ended.setdefault(t, []).append(
            _EndedTask(
                scope,
                ordinal,
                self.trace.tasks.get(op.task),
                end_clock,
                self.post_epochs.get(op.task),
                self.st_masks.get(scope, 0),
            )
        )

    # -- access checks ------------------------------------------------------

    def _history(self, location: str) -> AccessHistory:
        history = self.histories.get(location)
        if history is None:
            history = AccessHistory()
            # FastTrack's epoch collapse is UNSOUND here: it forgets an
            # older access once a newer one is "ordered" after it, which
            # assumes ordered-before is transitive.  The paper's relation
            # is not (a ≺ b and b ≺ c do not give a ≺ c when a and c sit
            # in different tasks of one looper), so a forgotten access
            # could be exactly the racing one.  Full per-scope vectors
            # keep every scope's latest access; within one scope program
            # order *is* transitive, so per-scope latest suffices.
            history.write_vector = {}
            history.read_vector = {}
            self.histories[location] = history
        return history

    def _on_read(self, op: Operation, report: VCReport) -> None:
        scope = self._scope_of(op)
        clock = self._clock(scope)
        history = self._history(op.location)
        conflict = history.write_races_with(clock)
        if conflict is not None and conflict.thread != scope:
            report.races.append(
                VCRace(
                    op.location,
                    scope_label(conflict.thread),
                    conflict.time,
                    op,
                    "write-read",
                )
            )
        history.record_read(scope, clock)

    def _on_write(self, op: Operation, report: VCReport) -> None:
        scope = self._scope_of(op)
        clock = self._clock(scope)
        history = self._history(op.location)
        write_conflict = history.write_races_with(clock)
        if write_conflict is not None and write_conflict.thread != scope:
            report.races.append(
                VCRace(
                    op.location,
                    scope_label(write_conflict.thread),
                    write_conflict.time,
                    op,
                    "write-write",
                )
            )
        read_conflict = history.read_races_with(clock)
        if read_conflict is not None and read_conflict.thread != scope:
            report.races.append(
                VCRace(
                    op.location,
                    scope_label(read_conflict.thread),
                    read_conflict.time,
                    op,
                    "read-write",
                )
            )
        history.record_write(scope, clock, ordered=False)


def _fifo_applicable(t1: Optional[TaskInfo], t2: TaskInfo) -> bool:
    """FIFO applicability with the §4.2 delayed-post refinement — mirrors
    ``HappensBefore._fifo_applicable`` under the paper's default config."""
    if t1 is None or t1.post_index is None or t2.post_index is None:
        return False
    if t1.at_front or t2.at_front:
        return False  # post-to-the-front overrides FIFO (future work)
    if not t1.is_delayed:
        return True
    return t2.is_delayed and (t1.delay or 0) <= (t2.delay or 0)


def triage_races(trace: ExecutionTrace) -> VCReport:
    """One-call streaming triage: the report's racy-location set is a
    superset of what the graph closure would find, so an empty ``races``
    list safely filters the trace out of closure analysis."""
    from repro.obs import current_tracer

    tracer = current_tracer()
    with tracer.span("triage.pass", trace=trace.name, ops=len(trace)) as span:
        report = TriageRaceDetector(trace).detect()
        span.set(races=len(report.races), locations=report.locations_checked)
    report.analysis_seconds = span.wall_seconds
    return report
