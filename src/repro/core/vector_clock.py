"""A vector-clock race detector for the classic multithreaded relation.

The paper contrasts its graph-based algorithm with the dynamic detectors
of the multithreaded world — DJIT+/MultiRace and FastTrack [7, 21, 22].
This module implements that family faithfully over our trace language:

* full per-thread program order (each thread's clock advances),
* fork/join edges,
* lock release→acquire edges (a clock per lock),
* post→begin edges (an asynchronous call modelled like a fork of its
  handler — how one would "simulate asynchronous calls through additional
  threads", §7).

Per memory location it keeps the per-thread clocks of the last read and
last write (the full-vector DJIT+ scheme), with FastTrack's *epoch*
optimization as the fast path: while all accesses are totally ordered a
single (thread, clock) epoch represents the access history, inflating to
a full vector only on concurrent reads.

This detector is intentionally *not* Android-aware: it misses every
single-threaded race (full program order hides them) — exactly the
paper's argument.  The test suite cross-checks its racy-location set
against the graph engine running the ``MULTITHREADED_ONLY`` configuration:
two independent implementations of the same relation must agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .operations import OpKind, Operation
from .trace import ExecutionTrace, operation_from_record, operation_to_record


class VectorClock:
    """A mutable vector clock: thread name → logical time."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Dict[str, int]] = None):
        self.clocks = dict(clocks) if clocks else {}

    def time_of(self, thread: str) -> int:
        return self.clocks.get(thread, 0)

    def tick(self, thread: str) -> None:
        self.clocks[thread] = self.clocks.get(thread, 0) + 1

    def join(self, other: "VectorClock") -> None:
        for thread, time in other.clocks.items():
            if time > self.clocks.get(thread, 0):
                self.clocks[thread] = time

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def dominates(self, thread: str, time: int) -> bool:
        """Does this clock know about (thread, time)? — the HB test."""
        return self.clocks.get(thread, 0) >= time

    def __repr__(self) -> str:
        inner = ", ".join("%s:%d" % kv for kv in sorted(self.clocks.items()))
        return "VC{%s}" % inner


@dataclass(frozen=True)
class Epoch:
    """FastTrack's compressed access history: one (thread, time) pair."""

    thread: str
    time: int

    def happens_before(self, clock: VectorClock) -> bool:
        return clock.dominates(self.thread, self.time)


class AccessHistory:
    """Per-location access state: write epoch-or-vector, read
    epoch-or-vector (the FastTrack adaptive representation)."""

    __slots__ = ("write_epoch", "write_vector", "read_epoch", "read_vector")

    def __init__(self):
        self.write_epoch: Optional[Epoch] = None
        self.write_vector: Optional[Dict[str, int]] = None
        self.read_epoch: Optional[Epoch] = None
        self.read_vector: Optional[Dict[str, int]] = None

    # -- write history -----------------------------------------------------

    def write_races_with(self, clock: VectorClock) -> Optional[Epoch]:
        if self.write_vector is not None:
            for thread, time in self.write_vector.items():
                if not clock.dominates(thread, time):
                    return Epoch(thread, time)
            return None
        if self.write_epoch is not None and not self.write_epoch.happens_before(clock):
            return self.write_epoch
        return None

    def record_write(self, thread: str, clock: VectorClock, ordered: bool) -> None:
        time = clock.time_of(thread)
        if ordered and self.write_vector is None:
            self.write_epoch = Epoch(thread, time)
            return
        # Inflate: concurrent writes need the full vector.
        if self.write_vector is None:
            self.write_vector = {}
            if self.write_epoch is not None:
                self.write_vector[self.write_epoch.thread] = self.write_epoch.time
            self.write_epoch = None
        self.write_vector[thread] = time

    # -- read history -------------------------------------------------------

    def read_races_with(self, clock: VectorClock) -> Optional[Epoch]:
        if self.read_vector is not None:
            for thread, time in self.read_vector.items():
                if not clock.dominates(thread, time):
                    return Epoch(thread, time)
            return None
        if self.read_epoch is not None and not self.read_epoch.happens_before(clock):
            return self.read_epoch
        return None

    def record_read(self, thread: str, clock: VectorClock) -> None:
        time = clock.time_of(thread)
        if self.read_vector is not None:
            self.read_vector[thread] = time
            return
        if self.read_epoch is None or self.read_epoch.happens_before(clock):
            # Ordered after the previous read: the epoch suffices.
            self.read_epoch = Epoch(thread, time)
            return
        # Concurrent reads: inflate to a vector (FastTrack's read share).
        self.read_vector = {self.read_epoch.thread: self.read_epoch.time}
        self.read_vector[thread] = time
        self.read_epoch = None


@dataclass(frozen=True)
class VCRace:
    """A race found by the vector-clock detector."""

    location: str
    prior_thread: str
    prior_time: int
    access: Operation
    kind: str  # "write-write" | "read-write" | "write-read"

    def __str__(self) -> str:
        return "%s race on %s: (%s@%d) <-> op %d %s" % (
            self.kind,
            self.location,
            self.prior_thread,
            self.prior_time,
            self.access.index,
            self.access.render(),
        )

    def to_dict(self) -> dict:
        return {
            "location": self.location,
            "prior_thread": self.prior_thread,
            "prior_time": self.prior_time,
            "kind": self.kind,
            "access": dict(operation_to_record(self.access), index=self.access.index),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VCRace":
        return cls(
            location=data["location"],
            prior_thread=data["prior_thread"],
            prior_time=data["prior_time"],
            access=operation_from_record(data["access"]),
            kind=data["kind"],
        )


@dataclass
class VCReport:
    races: List[VCRace] = field(default_factory=list)
    locations_checked: int = 0
    epochs_inflated: int = 0
    #: Silent no-op edges: a ``join`` whose target never recorded a
    #: ``threadexit`` snapshot, and a ``begin`` whose task was never
    #: posted.  Each drops a happens-before edge; surfacing the counts
    #: keeps malformed or truncated traces auditable instead of silently
    #: under-ordered.
    dangling_joins: int = 0
    orphan_begins: int = 0
    trace_name: str = "trace"
    analysis_seconds: float = 0.0

    def racy_locations(self) -> List[str]:
        seen: Dict[str, None] = {}
        for race in self.races:
            seen.setdefault(race.location, None)
        return list(seen)

    def to_dict(self) -> dict:
        return {
            "trace_name": self.trace_name,
            "races": [race.to_dict() for race in self.races],
            "locations_checked": self.locations_checked,
            "epochs_inflated": self.epochs_inflated,
            "dangling_joins": self.dangling_joins,
            "orphan_begins": self.orphan_begins,
            "analysis_seconds": self.analysis_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VCReport":
        return cls(
            races=[VCRace.from_dict(rec) for rec in data["races"]],
            locations_checked=data["locations_checked"],
            epochs_inflated=data["epochs_inflated"],
            dangling_joins=data.get("dangling_joins", 0),
            orphan_begins=data.get("orphan_begins", 0),
            trace_name=data.get("trace_name", "trace"),
            analysis_seconds=data.get("analysis_seconds", 0.0),
        )


class VectorClockRaceDetector:
    """One-pass online detection over a trace (classic multithreaded HB)."""

    def __init__(self, trace: ExecutionTrace):
        self.trace = trace
        self.thread_clocks: Dict[str, VectorClock] = {}
        self.lock_clocks: Dict[str, VectorClock] = {}
        self.fork_snapshots: Dict[str, VectorClock] = {}
        self.exit_snapshots: Dict[str, VectorClock] = {}
        self.post_snapshots: Dict[str, VectorClock] = {}
        self.histories: Dict[str, AccessHistory] = {}

    def _clock(self, thread: str) -> VectorClock:
        clock = self.thread_clocks.get(thread)
        if clock is None:
            clock = VectorClock({thread: 1})
            self.thread_clocks[thread] = clock
        return clock

    def detect(self) -> VCReport:
        report = VCReport(trace_name=self.trace.name)
        for op in self.trace:
            self._step(op, report)
        report.locations_checked = len(self.histories)
        return report

    def _step(self, op: Operation, report: VCReport) -> None:
        kind = op.kind
        thread = op.thread

        if kind is OpKind.THREAD_INIT:
            clock = self._clock(thread)
            snapshot = self.fork_snapshots.pop(thread, None)
            if snapshot is not None:
                clock.join(snapshot)
            return
        if kind is OpKind.FORK:
            clock = self._clock(thread)
            self.fork_snapshots[op.target] = clock.copy()
            clock.tick(thread)
            return
        if kind is OpKind.THREAD_EXIT:
            self.exit_snapshots[thread] = self._clock(thread).copy()
            return
        if kind is OpKind.JOIN:
            snapshot = self.exit_snapshots.get(op.target)
            if snapshot is None:
                report.dangling_joins += 1  # no exit seen: edge dropped
            else:
                self._clock(thread).join(snapshot)
            return
        if kind is OpKind.ACQUIRE:
            lock_clock = self.lock_clocks.get(op.lock)
            if lock_clock is not None:
                self._clock(thread).join(lock_clock)
            return
        if kind is OpKind.RELEASE:
            clock = self._clock(thread)
            self.lock_clocks[op.lock] = clock.copy()
            clock.tick(thread)
            return
        if kind is OpKind.POST:
            clock = self._clock(thread)
            self.post_snapshots[op.task] = clock.copy()
            clock.tick(thread)
            return
        if kind is OpKind.BEGIN:
            snapshot = self.post_snapshots.pop(op.task, None)
            if snapshot is None:
                report.orphan_begins += 1  # never posted: edge dropped
            else:
                self._clock(thread).join(snapshot)
            return
        if kind is OpKind.READ:
            self._on_read(op, report)
            return
        if kind is OpKind.WRITE:
            self._on_write(op, report)
            return
        # end / attachQ / loopOnQ / enable: no effect in the classic model.

    def _history(self, location: str) -> AccessHistory:
        history = self.histories.get(location)
        if history is None:
            history = AccessHistory()
            self.histories[location] = history
        return history

    def _on_read(self, op: Operation, report: VCReport) -> None:
        clock = self._clock(op.thread)
        history = self._history(op.location)
        conflict = history.write_races_with(clock)
        if conflict is not None and conflict.thread != op.thread:
            report.races.append(
                VCRace(op.location, conflict.thread, conflict.time, op, "write-read")
            )
        before = history.read_vector is not None
        history.record_read(op.thread, clock)
        if not before and history.read_vector is not None:
            report.epochs_inflated += 1

    def _on_write(self, op: Operation, report: VCReport) -> None:
        clock = self._clock(op.thread)
        history = self._history(op.location)
        write_conflict = history.write_races_with(clock)
        if write_conflict is not None and write_conflict.thread != op.thread:
            report.races.append(
                VCRace(
                    op.location,
                    write_conflict.thread,
                    write_conflict.time,
                    op,
                    "write-write",
                )
            )
        read_conflict = history.read_races_with(clock)
        if read_conflict is not None and read_conflict.thread != op.thread:
            report.races.append(
                VCRace(
                    op.location,
                    read_conflict.thread,
                    read_conflict.time,
                    op,
                    "read-write",
                )
            )
        ordered = write_conflict is None or write_conflict.thread == op.thread
        before = history.write_vector is not None
        history.record_write(op.thread, clock, ordered)
        if not before and history.write_vector is not None:
            report.epochs_inflated += 1


def detect_races_vc(trace: ExecutionTrace) -> VCReport:
    """One-call vector-clock detection (classic multithreaded relation)."""
    from repro.obs import current_tracer

    with current_tracer().span("detect.vc", trace=trace.name) as span:
        report = VectorClockRaceDetector(trace).detect()
        span.set(races=len(report.races))
    report.analysis_seconds = span.wall_seconds
    return report
