"""Trace corpus subsystem: persistent store, parallel batch analysis,
and cached race reports.

The paper's workflow (§5) is corpus-shaped — the UI Explorer generates
many bounded event sequences, persists them, and the Race Detector
analyzes every resulting trace offline.  This package is that offline
half at scale:

* :mod:`repro.corpus.store` — content-addressed on-disk trace store;
* :mod:`repro.corpus.cache` — result cache keyed by
  ``(trace_digest, detector_config_digest)``;
* :mod:`repro.corpus.pipeline` — ``multiprocessing`` batch analyzer
  with per-trace error isolation;
* :mod:`repro.corpus.report` — corpus-level deduplicated aggregation
  (Table 3 style) with human-readable and JSON rendering.
"""

from .cache import ResultCache, valid_digest
from .pipeline import AnalysisTimeout, BatchAnalyzer, BatchResult, TraceResult
from .report import (
    CATEGORY_ORDER,
    CorpusRace,
    CorpusReport,
    aggregate,
    corpus_report_to_json,
    report_to_json,
)
from .store import CorpusError, TraceEntry, TraceStore, app_of_trace_name

__all__ = [
    "AnalysisTimeout",
    "BatchAnalyzer",
    "BatchResult",
    "CATEGORY_ORDER",
    "CorpusError",
    "CorpusRace",
    "CorpusReport",
    "ResultCache",
    "TraceEntry",
    "TraceResult",
    "TraceStore",
    "aggregate",
    "app_of_trace_name",
    "corpus_report_to_json",
    "report_to_json",
    "valid_digest",
]
