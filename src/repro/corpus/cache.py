"""Result cache for corpus analysis.

Detection is pure: the report is a function of (trace, detector config).
The cache keys on exactly that pair —
``(trace_digest, detector_config_digest)`` — so re-analyzing an
unchanged corpus is a near-no-op, while flipping any happens-before rule
switch, the coalescing toggle, or the cancelled-task set invalidates
every cached report (the config digest changes).

Cached reports live as JSON under
``<root>/results/<trace_digest>/<config_digest>.json``; hit/miss
counters are kept per cache instance and surfaced in corpus reports.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Optional, Union

from repro.core.race_detector import RaceReport

from .store import CorpusError, _atomic_write_text

RESULTS_DIR = "results"

#: Cache keys are SHA-256 hex digests (possibly truncated, never shorter
#: than 8 chars).  Anything else — ``..``, separators, URL-decoded
#: traversal — must never reach a filesystem join: ``get`` unlinks what
#: it cannot parse, so a traversing key could read *or delete* files
#: outside the cache root.
_DIGEST_RE = re.compile(r"[0-9a-f]{8,64}")


def valid_digest(value: str) -> bool:
    """True when ``value`` is a plausible (lowercase-hex) content digest."""
    return isinstance(value, str) and _DIGEST_RE.fullmatch(value) is not None


class ResultCache:
    """On-disk cache of :class:`RaceReport` keyed by content digests."""

    def __init__(self, root: Union[str, "os.PathLike[str]"]):
        self.root = Path(root) / RESULTS_DIR
        self.hits = 0
        self.misses = 0

    def path_for(self, trace_digest: str, config_digest: str) -> Path:
        if not valid_digest(trace_digest) or not valid_digest(config_digest):
            raise CorpusError(
                "invalid cache key (%r, %r): digests must be lowercase hex"
                % (trace_digest, config_digest)
            )
        return self.root / trace_digest / ("%s.json" % config_digest)

    def get(self, trace_digest: str, config_digest: str) -> Optional[RaceReport]:
        path = self.path_for(trace_digest, config_digest)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            report = RaceReport.from_dict(data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # A corrupt entry is a miss; drop it so it gets rewritten.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return report

    def put(self, trace_digest: str, config_digest: str, report: RaceReport) -> None:
        path = self.path_for(trace_digest, config_digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name + os.replace: concurrent writers of the same
        # key (service scheduler + a batch run) each land a complete file.
        _atomic_write_text(path, json.dumps(report.to_dict(), sort_keys=True))

    def clear(self) -> int:
        """Delete every cached report; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                path.unlink()
                removed += 1
        return removed

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
