"""Parallel batch analysis over a trace corpus.

Fans race detection out over a ``multiprocessing`` pool (``jobs=N``,
default ``os.cpu_count()``), degrading gracefully to serial in-process
execution when ``jobs=1``, when there is only one trace to analyze, or
when a worker pool cannot be created (restricted environments).  Each
trace is isolated: a malformed trace or a detector crash fails that
entry with a recorded error, never the batch.

Workers receive ``(digest, path, name, DetectorConfig)`` and return
plain dictionaries — every payload crossing the process boundary is
picklable by construction.  Results are cached through
:class:`repro.corpus.cache.ResultCache` keyed on
``(trace_digest, config_digest)``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.race_detector import DetectorConfig, RaceReport
from repro.core.trace import ExecutionTrace

from .cache import ResultCache
from .store import TraceEntry, TraceStore


@dataclass
class TraceResult:
    """Outcome of analyzing one stored trace."""

    entry: TraceEntry
    report: Optional[RaceReport] = None
    error: Optional[str] = None
    cached: bool = False
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.report is not None

    def describe(self) -> str:
        if self.error is not None:
            return "%s: ERROR %s" % (self.entry.name, self.error)
        status = " [cached]" if self.cached else ""
        return "%s%s" % (self.report.summary(), status)


@dataclass
class BatchResult:
    """Everything one batch run produced."""

    results: List[TraceResult] = field(default_factory=list)
    jobs: int = 1
    parallel: bool = False
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    def ok(self) -> List[TraceResult]:
        return [r for r in self.results if r.ok]

    def errors(self) -> List[TraceResult]:
        return [r for r in self.results if r.error is not None]

    def reports(self) -> List[RaceReport]:
        return [r.report for r in self.results if r.report is not None]

    def hit_rate(self) -> float:
        requests = self.cache_hits + self.cache_misses
        return self.cache_hits / requests if requests else 0.0

    def summary(self) -> str:
        races = sum(len(report.races) for report in self.reports())
        return (
            "%d traces analyzed (%d errors), %d race reports, "
            "%d cache hits / %d misses, %.3fs wall (%s, jobs=%d)"
            % (
                len(self.results),
                len(self.errors()),
                races,
                self.cache_hits,
                self.cache_misses,
                self.wall_seconds,
                "parallel" if self.parallel else "serial",
                self.jobs,
            )
        )


#: Worker argument / result shapes (kept as plain tuples for pickling).
_WorkerArgs = Tuple[str, str, str, DetectorConfig]
_WorkerResult = Tuple[str, Optional[dict], Optional[str], float]


def _analyze_one(args: _WorkerArgs) -> _WorkerResult:
    """Load one stored trace and run detection on it.

    Module-level so ``multiprocessing`` can pickle it; also the serial
    fallback path, so both modes share one code path per trace.  All
    failures are converted into an error string — isolation guarantee.
    """
    digest, path, name, config = args
    start = time.perf_counter()
    try:
        trace = ExecutionTrace.load(path, name=name, strict=True)
        report = config.build_detector(trace).detect()
        return (digest, report.to_dict(), None, time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 — isolation boundary
        reason = "%s: %s" % (exc.__class__.__name__, exc)
        return (digest, None, reason, time.perf_counter() - start)


class BatchAnalyzer:
    """Analyze every trace in a store, through the cache, in parallel."""

    def __init__(
        self,
        store: TraceStore,
        cache: Optional[ResultCache] = None,
        config: Optional[DetectorConfig] = None,
        jobs: Optional[int] = None,
    ):
        self.store = store
        self.cache = cache
        self.config = config or DetectorConfig()
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def analyze(self, digests: Optional[Sequence[str]] = None) -> BatchResult:
        start = time.perf_counter()
        if digests is None:
            entries = self.store.entries()
        else:
            entries = [self.store.get(d) for d in digests]
        config_digest = self.config.digest()

        batch = BatchResult(jobs=max(1, self.jobs))
        by_digest: Dict[str, TraceResult] = {}
        todo: List[TraceEntry] = []
        hits0 = self.cache.hits if self.cache else 0
        misses0 = self.cache.misses if self.cache else 0
        for entry in entries:
            cached = (
                self.cache.get(entry.digest, config_digest) if self.cache else None
            )
            if cached is not None:
                by_digest[entry.digest] = TraceResult(
                    entry=entry, report=cached, cached=True
                )
            else:
                todo.append(entry)

        raw, parallel = self._run(todo)
        batch.parallel = parallel
        for digest, report_dict, error, seconds in raw:
            entry = self.store.get(digest)
            if report_dict is not None:
                report = RaceReport.from_dict(report_dict)
                if self.cache is not None:
                    self.cache.put(digest, config_digest, report)
                by_digest[digest] = TraceResult(
                    entry=entry, report=report, seconds=seconds
                )
            else:
                by_digest[digest] = TraceResult(
                    entry=entry, error=error, seconds=seconds
                )

        batch.results = [by_digest[entry.digest] for entry in entries]
        if self.cache is not None:
            batch.cache_hits = self.cache.hits - hits0
            batch.cache_misses = self.cache.misses - misses0
        batch.wall_seconds = time.perf_counter() - start
        return batch

    # -- execution strategies ------------------------------------------------

    def _run(self, todo: Sequence[TraceEntry]) -> Tuple[List[_WorkerResult], bool]:
        args = [
            (e.digest, str(self.store.path_for(e.digest)), e.name, self.config)
            for e in todo
        ]
        if not args:
            return [], False
        if self.jobs <= 1 or len(args) == 1:
            return [_analyze_one(a) for a in args], False
        try:
            with multiprocessing.Pool(processes=min(self.jobs, len(args))) as pool:
                return pool.map(_analyze_one, args), True
        except (OSError, ValueError, ImportError) as exc:
            warnings.warn(
                "worker pool unavailable (%s); falling back to serial analysis"
                % exc,
                stacklevel=2,
            )
            return [_analyze_one(a) for a in args], False
