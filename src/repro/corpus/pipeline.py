"""Parallel batch analysis over a trace corpus.

Fans race detection out over a ``multiprocessing`` pool (``jobs=N``,
default ``os.cpu_count()``), degrading gracefully to serial in-process
execution when ``jobs=1``, when there is only one trace to analyze, or
when a worker pool cannot be created (restricted environments).

Invariants this module maintains:

* **Worker error isolation** — each trace is its own failure domain: a
  malformed trace (``TraceFormatError`` naming the offending line) or a
  detector crash converts into an error string on that entry's
  :class:`TraceResult`, never a batch failure, and never a lost result
  for the other traces.
* **Picklability by construction** — workers receive
  ``(digest, path, name, DetectorConfig, collect_obs, timeout)`` tuples
  and return ``(digest, report_dict, error, seconds, obs_snapshot,
  triage)`` tuples of plain values (the obs snapshot carries a
  ``"metrics"`` registry snapshot when collected); nothing that crosses
  the process boundary holds a handle, a lock, or a live object.
* **Bounded time per trace** — an optional ``timeout`` budget aborts a
  runaway analysis inside the worker (``SIGALRM``) and surfaces as an
  ``AnalysisTimeout`` error on that trace's result; the batch never
  hangs on one adversarial trace.
* **Bit-identity of cached results** — detection is a pure function of
  ``(trace, config)``; the :class:`~repro.corpus.cache.ResultCache`
  keys on exactly ``(trace_digest, config_digest)``, so a cache hit is
  indistinguishable from a re-run (differentially tested in
  ``tests/test_corpus.py``).

Observability (see ``docs/observability.md``): when the current
:mod:`repro.obs` tracer is enabled, each worker builds its own tracer
around its trace (``corpus.trace`` span over ``trace.load`` → ``detect``
→ ...), snapshots it into the result tuple, and the parent merges the
worker's span tree under its ``corpus.analyze`` span — one timeline
across processes.  All batch timing (``TraceResult.seconds``,
``BatchResult.wall_seconds``) is span-derived; there are no ad-hoc
``perf_counter`` sites left in this module.  The wider pipeline is
described in "Trace corpus & batch analysis" of ``docs/architecture.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import warnings
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.race_detector import DetectorConfig, RaceReport
from repro.core.trace import ExecutionTrace
from repro.core.vc_triage import TRIAGE_VC, triage_races
from repro.obs import Tracer, current_registry, current_tracer, use_tracer

from .cache import ResultCache
from .store import TraceEntry, TraceStore


class AnalysisTimeout(Exception):
    """A per-trace analysis budget expired (see ``BatchAnalyzer(timeout=)``)."""


@contextmanager
def _analysis_budget(seconds: Optional[float]):
    """Abort the enclosed block with :class:`AnalysisTimeout` after
    ``seconds`` of wall time.

    Implemented with ``SIGALRM`` (workers and the serial fallback both
    run analysis on their process's main thread); on platforms without
    it — or when analysis runs off the main thread, where signals
    cannot be installed (``droidracer serve --jobs 0`` inline mode) —
    the budget is a documented no-op.  The previous handler and any
    pending itimer are restored, so nested pipelines keep their own
    alarms.
    """
    import threading

    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expire(signum, frame):
        raise AnalysisTimeout("analysis exceeded %.3fs budget" % seconds)

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class TraceResult:
    """Outcome of analyzing one stored trace."""

    entry: TraceEntry
    report: Optional[RaceReport] = None
    error: Optional[str] = None
    cached: bool = False
    seconds: float = 0.0
    #: Triage-tier outcome (``triage="vc"`` runs only): ``filtered`` means
    #: the streaming vc pass proved the trace race-free and the closure
    #: never ran (``report`` stays ``None`` — a verdict, not a failure);
    #: ``triage`` carries the vc pass summary for escalated traces too.
    filtered: bool = False
    triage: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.report is not None or self.filtered

    @property
    def timed_out(self) -> bool:
        return self.error is not None and self.error.startswith(
            AnalysisTimeout.__name__
        )

    def describe(self) -> str:
        if self.error is not None:
            return "%s: ERROR %s" % (self.entry.name, self.error)
        if self.filtered:
            return "%s: race-free (vc triage, closure skipped)" % self.entry.name
        status = " [cached]" if self.cached else ""
        return "%s%s" % (self.report.summary(), status)


@dataclass
class BatchResult:
    """Everything one batch run produced."""

    results: List[TraceResult] = field(default_factory=list)
    jobs: int = 1
    parallel: bool = False
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Triage-tier tallies (zero when ``triage="off"``): traces the vc
    #: pass proved race-free (closure skipped) vs escalated to the closure.
    triage_filtered: int = 0
    triage_escalated: int = 0

    def ok(self) -> List[TraceResult]:
        return [r for r in self.results if r.ok]

    def errors(self) -> List[TraceResult]:
        return [r for r in self.results if r.error is not None]

    def timeouts(self) -> List[TraceResult]:
        return [r for r in self.results if r.timed_out]

    def filtered(self) -> List[TraceResult]:
        return [r for r in self.results if r.filtered]

    def reports(self) -> List[RaceReport]:
        return [r.report for r in self.results if r.report is not None]

    def hit_rate(self) -> float:
        requests = self.cache_hits + self.cache_misses
        return self.cache_hits / requests if requests else 0.0

    def summary(self) -> str:
        races = sum(len(report.races) for report in self.reports())
        timeouts = len(self.timeouts())
        triage = ""
        if self.triage_filtered or self.triage_escalated:
            triage = ", triage: %d filtered / %d escalated" % (
                self.triage_filtered,
                self.triage_escalated,
            )
        return (
            "%d traces analyzed (%d errors%s), %d race reports%s, "
            "%d cache hits / %d misses, %.3fs wall (%s, jobs=%d)"
            % (
                len(self.results),
                len(self.errors()),
                ", %d timeouts" % timeouts if timeouts else "",
                races,
                triage,
                self.cache_hits,
                self.cache_misses,
                self.wall_seconds,
                "parallel" if self.parallel else "serial",
                self.jobs,
            )
        )


#: Worker argument / result shapes (kept as plain tuples for pickling).
_WorkerArgs = Tuple[str, str, str, DetectorConfig, bool, Optional[float]]
_WorkerResult = Tuple[
    str, Optional[dict], Optional[str], float, Optional[dict], Optional[dict]
]


def _analyze_one(args: _WorkerArgs) -> _WorkerResult:
    """Load one stored trace and run detection on it.

    Module-level so ``multiprocessing`` can pickle it; also the serial
    fallback path and the ``droidracer serve`` worker entry point, so
    every mode shares one code path per trace.  All failures — including
    an expired ``timeout`` budget — are converted into an error string,
    never a batch (or pool) failure: isolation guarantee.

    With ``config.triage == "vc"`` the trace runs the streaming
    vector-clock pass first (:mod:`repro.core.vc_triage`): a zero-race
    verdict skips the closure and returns a *triage summary* instead of a
    report (the last tuple slot); a racy verdict escalates to the closure
    in-process — the trace is already loaded — and the report is
    byte-identical to a triage-off run by construction, since the same
    detector runs on the same trace.

    When ``collect_obs`` is set the trace is analyzed under a fresh
    :class:`~repro.obs.Tracer` whose picklable snapshot rides home in
    the result tuple (the parent merges it); per-trace wall time is the
    ``corpus.trace`` span either way, so cached and fresh results report
    timing from a single source.
    """
    digest, path, name, config, collect_obs, timeout = args
    if collect_obs:
        # The worker's spans double as live-metrics data: a private
        # registry bridged to the tracer accumulates per-span-name
        # histograms, and its picklable snapshot rides home in the obs
        # dict (`obs["metrics"]`) for an order-independent merge into
        # the parent's registry.  The service ignores this slot — its
        # own bridged tracer histograms merged worker spans directly.
        from repro.obs.metrics import MetricsRegistry, SpanHistogramSink

        registry = MetricsRegistry()
        tracer = Tracer(sinks=None)
        tracer.sinks.append(SpanHistogramSink(registry))
    else:
        registry = None
        tracer = current_tracer()
    report_dict: Optional[dict] = None
    error: Optional[str] = None
    triage_dict: Optional[dict] = None
    with use_tracer(tracer) if collect_obs else nullcontext():
        with tracer.span("corpus.trace", trace=name, digest=digest[:12]) as span:
            try:
                with _analysis_budget(timeout):
                    trace = ExecutionTrace.load(path, name=name, strict=True)
                    # Max-merged across workers: the batch's largest trace.
                    tracer.gauge("corpus.trace_ops", len(trace))
                    filtered = False
                    if config.triage == TRIAGE_VC:
                        vc = triage_races(trace)
                        filtered = not vc.races
                        triage_dict = {
                            "verdict": "filtered" if filtered else "escalated",
                            "races": len(vc.races),
                            "racy_locations": vc.racy_locations(),
                            "seconds": vc.analysis_seconds,
                            "dangling_joins": vc.dangling_joins,
                            "orphan_begins": vc.orphan_begins,
                        }
                        tracer.count(
                            "triage.filtered" if filtered else "triage.escalated"
                        )
                        span.set(triage=triage_dict["verdict"])
                    if not filtered:
                        report_dict = (
                            config.build_detector(trace).detect().to_dict()
                        )
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                report_dict = None
                error = "%s: %s" % (exc.__class__.__name__, exc)
                span.set(error=error)
    obs = tracer.snapshot() if collect_obs else None
    if obs is not None and registry is not None:
        obs["metrics"] = registry.snapshot()
    return (digest, report_dict, error, span.wall_seconds, obs, triage_dict)


class BatchAnalyzer:
    """Analyze every trace in a store, through the cache, in parallel."""

    def __init__(
        self,
        store: TraceStore,
        cache: Optional[ResultCache] = None,
        config: Optional[DetectorConfig] = None,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        self.store = store
        self.cache = cache
        self.config = config or DetectorConfig()
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        #: Per-trace wall-clock analysis budget in seconds (``None`` =
        #: unlimited).  Expiry yields an ``AnalysisTimeout: ...`` error
        #: on that trace's result, never a hung batch.
        self.timeout = timeout

    def analyze(self, digests: Optional[Sequence[str]] = None) -> BatchResult:
        tracer = current_tracer()
        with tracer.span("corpus.analyze", jobs=self.jobs) as batch_span:
            if digests is None:
                entries = self.store.entries()
            else:
                entries = [self.store.get(d) for d in digests]
            config_digest = self.config.digest()

            batch = BatchResult(jobs=max(1, self.jobs))
            by_digest: Dict[str, TraceResult] = {}
            todo: List[TraceEntry] = []
            hits0 = self.cache.hits if self.cache else 0
            misses0 = self.cache.misses if self.cache else 0
            with tracer.span("corpus.cache_lookup", traces=len(entries)):
                for entry in entries:
                    cached = (
                        self.cache.get(entry.digest, config_digest)
                        if self.cache
                        else None
                    )
                    if cached is not None:
                        by_digest[entry.digest] = TraceResult(
                            entry=entry, report=cached, cached=True
                        )
                    else:
                        todo.append(entry)

            raw, parallel = self._run(todo, collect_obs=tracer.enabled)
            batch.parallel = parallel
            for digest, report_dict, error, seconds, obs, triage in raw:
                entry = self.store.get(digest)
                if obs is not None:
                    # Graft the worker's span tree (and counters) under
                    # this batch's span — one merged timeline.
                    tracer.merge(obs, parent=batch_span)
                    registry = current_registry()
                    if registry.enabled and obs.get("metrics"):
                        registry.merge(obs["metrics"])
                filtered = (
                    triage is not None and triage.get("verdict") == "filtered"
                )
                if filtered:
                    batch.triage_filtered += 1
                elif triage is not None:
                    batch.triage_escalated += 1
                if report_dict is not None:
                    report = RaceReport.from_dict(report_dict)
                    # Escalated reports are cached under the canonical
                    # (triage-excluded) config digest: the closure ran, so
                    # the report is the same one a triage-off run produces.
                    if self.cache is not None:
                        self.cache.put(digest, config_digest, report)
                    by_digest[digest] = TraceResult(
                        entry=entry, report=report, seconds=seconds, triage=triage
                    )
                elif filtered:
                    # A verdict, not a report: never cached — the cache key
                    # excludes ``triage``, and a triage-off run of the same
                    # (trace, config) must still build the closure.
                    by_digest[digest] = TraceResult(
                        entry=entry, seconds=seconds, filtered=True, triage=triage
                    )
                else:
                    by_digest[digest] = TraceResult(
                        entry=entry, error=error, seconds=seconds, triage=triage
                    )

            batch.results = [by_digest[entry.digest] for entry in entries]
            if self.cache is not None:
                batch.cache_hits = self.cache.hits - hits0
                batch.cache_misses = self.cache.misses - misses0
            tracer.count("corpus.traces", len(entries))
            tracer.count("corpus.cache_hits", batch.cache_hits)
            tracer.count("corpus.cache_misses", batch.cache_misses)
            tracer.count("corpus.errors", len(batch.errors()))
            tracer.count("corpus.timeouts", len(batch.timeouts()))
            batch_span.set(
                triage_filtered=batch.triage_filtered,
                triage_escalated=batch.triage_escalated,
            )
            batch_span.set(
                traces=len(entries), parallel=parallel, errors=len(batch.errors())
            )
        batch.wall_seconds = batch_span.wall_seconds
        return batch

    # -- execution strategies ------------------------------------------------

    def _run(
        self, todo: Sequence[TraceEntry], collect_obs: bool = False
    ) -> Tuple[List[_WorkerResult], bool]:
        args = [
            (
                e.digest,
                str(self.store.path_for(e.digest)),
                e.name,
                self.config,
                collect_obs,
                self.timeout,
            )
            for e in todo
        ]
        if not args:
            return [], False
        if self.jobs <= 1 or len(args) == 1:
            return [_analyze_one(a) for a in args], False
        try:
            with multiprocessing.Pool(processes=min(self.jobs, len(args))) as pool:
                return pool.map(_analyze_one, args), True
        except (OSError, ValueError, ImportError) as exc:
            warnings.warn(
                "worker pool unavailable (%s); falling back to serial analysis"
                % exc,
                stacklevel=2,
            )
            return [_analyze_one(a) for a in args], False
