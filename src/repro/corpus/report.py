"""Corpus-level race reporting.

Aggregates a :class:`~repro.corpus.pipeline.BatchResult` across traces:
races are deduplicated by ``(location, classification)`` — the same
racy field/location pair reported from twenty generated executions of
the same app is one finding — then tallied per app and per category in
the layout of the paper's Table 3.  Renders both a human-readable table
and machine-readable JSON; the single-trace serializer here is also what
``droidracer analyze --json`` and ``run --json`` emit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.classification import RaceCategory
from repro.core.race_detector import RaceReport

from .pipeline import BatchResult

#: Table 3 column order (multithreaded first, then single-threaded).
CATEGORY_ORDER = (
    RaceCategory.MULTITHREADED,
    RaceCategory.CROSS_POSTED,
    RaceCategory.CO_ENABLED,
    RaceCategory.DELAYED,
    RaceCategory.UNKNOWN,
)


@dataclass(frozen=True)
class CorpusRace:
    """One deduplicated corpus-level finding."""

    location: str
    field_name: str
    category: RaceCategory
    apps: Tuple[str, ...]  # sorted apps the race was seen in
    trace_count: int  # traces it appeared in
    example: str  # one representative description

    def describe(self) -> str:
        return "%s race on %s (%d traces: %s)" % (
            self.category,
            self.location,
            self.trace_count,
            ", ".join(self.apps),
        )

    def to_dict(self) -> dict:
        return {
            "location": self.location,
            "field": self.field_name,
            "category": self.category.value,
            "apps": list(self.apps),
            "trace_count": self.trace_count,
            "example": self.example,
        }


@dataclass
class CorpusReport:
    """Aggregated findings over one batch run."""

    traces_total: int = 0
    traces_analyzed: int = 0
    traces_failed: int = 0
    races: List[CorpusRace] = field(default_factory=list)
    per_app: Dict[str, Dict[RaceCategory, int]] = field(default_factory=dict)
    errors: List[Tuple[str, str]] = field(default_factory=list)  # (name, error)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1
    parallel: bool = False
    #: Triage tier accounting (``--triage vc``): mode that ran, traces the
    #: vc pass proved race-free (closure skipped) and traces escalated to
    #: the full closure.  ``triage_mode == "off"`` means the tier was
    #: disabled and the counts stay zero.
    triage_mode: str = "off"
    triage_filtered: int = 0
    triage_escalated: int = 0

    def per_category(self) -> Dict[RaceCategory, int]:
        out = {category: 0 for category in CATEGORY_ORDER}
        for race in self.races:
            out[race.category] += 1
        return out

    def hit_rate(self) -> float:
        requests = self.cache_hits + self.cache_misses
        return self.cache_hits / requests if requests else 0.0

    def location_aggregates(self) -> Dict[str, dict]:
        """Per-location mining view of the corpus findings.

        Groups the deduplicated races by memory location: which apps hit
        it, which categories it was classified under, and how many traces
        manifested it.  This is the corpus-side input to suspiciousness
        mining (``repro.explorer.suspicion``) — a location racing in many
        traces under several categories is a prime perturbation target.

        Deliberately *not* part of :meth:`to_dict`: the report JSON seen
        by ``corpus analyze --json`` consumers stays byte-stable.
        """
        out: Dict[str, dict] = {}
        for race in self.races:
            slot = out.setdefault(
                race.location,
                {
                    "field": race.field_name,
                    "apps": set(),
                    "categories": set(),
                    "trace_count": 0,
                },
            )
            slot["apps"].update(race.apps)
            slot["categories"].add(race.category.value)
            slot["trace_count"] = max(slot["trace_count"], race.trace_count)
        return {
            location: {
                "field": slot["field"],
                "apps": sorted(slot["apps"]),
                "categories": sorted(slot["categories"]),
                "trace_count": slot["trace_count"],
            }
            for location, slot in sorted(out.items())
        }

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        header = "%-20s | %s | %5s" % (
            "Application",
            " | ".join("%-13s" % c.value for c in CATEGORY_ORDER),
            "total",
        )
        rule = "-" * len(header)
        lines = [
            "Corpus race report: %d traces, %d apps, %d distinct races"
            % (self.traces_total, len(self.per_app), len(self.races)),
            "",
            header,
            rule,
        ]
        for app in sorted(self.per_app):
            counts = self.per_app[app]
            cells = ["%-13d" % counts.get(c, 0) for c in CATEGORY_ORDER]
            lines.append(
                "%-20s | %s | %5d" % (app, " | ".join(cells), sum(counts.values()))
            )
        lines.append(rule)
        totals = self.per_category()
        lines.append(
            "%-20s | %s | %5d"
            % (
                "Total",
                " | ".join("%-13d" % totals[c] for c in CATEGORY_ORDER),
                len(self.races),
            )
        )
        if self.errors:
            lines.append("")
            lines.append("%d trace(s) failed:" % len(self.errors))
            for name, error in self.errors:
                lines.append("  %s: %s" % (name, error))
        if self.triage_mode != "off":
            lines.append("")
            lines.append(
                "triage (%s): %d trace(s) filtered race-free, %d escalated to closure"
                % (self.triage_mode, self.triage_filtered, self.triage_escalated)
            )
        lines.append("")
        lines.append(
            "analyzed %d/%d traces in %.3fs (%s, jobs=%d); cache: "
            "%d hits / %d misses (%.0f%% hit rate)"
            % (
                self.traces_analyzed,
                self.traces_total,
                self.wall_seconds,
                "parallel" if self.parallel else "serial",
                self.jobs,
                self.cache_hits,
                self.cache_misses,
                100.0 * self.hit_rate(),
            )
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        out = {
            "traces_total": self.traces_total,
            "traces_analyzed": self.traces_analyzed,
            "traces_failed": self.traces_failed,
            "distinct_races": len(self.races),
            "races": [race.to_dict() for race in self.races],
            "per_app": {
                app: {c.value: n for c, n in counts.items() if n}
                for app, counts in sorted(self.per_app.items())
            },
            "per_category": {
                c.value: n for c, n in self.per_category().items()
            },
            "errors": [
                {"trace": name, "error": error} for name, error in self.errors
            ],
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.hit_rate(),
            },
            "wall_seconds": self.wall_seconds,
            "jobs": self.jobs,
            "parallel": self.parallel,
        }
        if self.triage_mode != "off":
            out["triage"] = {
                "mode": self.triage_mode,
                "filtered": self.triage_filtered,
                "escalated": self.triage_escalated,
            }
        return out


def aggregate(batch: BatchResult) -> CorpusReport:
    """Fold one batch run into a deduplicated corpus report."""
    report = CorpusReport(
        traces_total=len(batch.results),
        traces_analyzed=len(batch.ok()),
        traces_failed=len(batch.errors()),
        cache_hits=batch.cache_hits,
        cache_misses=batch.cache_misses,
        wall_seconds=batch.wall_seconds,
        jobs=batch.jobs,
        parallel=batch.parallel,
        triage_filtered=batch.triage_filtered,
        triage_escalated=batch.triage_escalated,
    )
    if batch.triage_filtered or batch.triage_escalated:
        report.triage_mode = "vc"
    # (location, category) -> [field, apps set, trace digests set, example]
    merged: Dict[Tuple[str, RaceCategory], list] = {}
    for result in batch.results:
        if result.error is not None:
            report.errors.append((result.entry.name, result.error))
            continue
        app = result.entry.app
        report.per_app.setdefault(app, {c: 0 for c in CATEGORY_ORDER})
        if result.report is None:
            continue  # vc-triage filtered: proven race-free, nothing to merge
        for race in result.report.races:
            key = (race.location, race.category)
            slot = merged.get(key)
            if slot is None:
                merged[key] = [race.field_name, {app}, {result.entry.digest}, race.describe()]
            else:
                slot[1].add(app)
                slot[2].add(result.entry.digest)
    for (location, category), (field_name, apps, digests, example) in sorted(
        merged.items(), key=lambda kv: (kv[0][1].value, kv[0][0])
    ):
        report.races.append(
            CorpusRace(
                location=location,
                field_name=field_name,
                category=category,
                apps=tuple(sorted(apps)),
                trace_count=len(digests),
                example=example,
            )
        )
        for app in apps:
            report.per_app[app][category] += 1
    return report


def report_to_json(report: RaceReport) -> str:
    """Machine-readable serialization of one trace's race report — shared
    by ``corpus analyze --json``, ``analyze --json``, and ``run --json``."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def corpus_report_to_json(report: CorpusReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
