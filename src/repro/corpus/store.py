"""The on-disk trace corpus: a content-addressed store of execution traces.

DroidRacer's workflow (paper, §5) generates *many* bounded event
sequences and analyzes every resulting trace offline.  This store is the
persistence layer of that corpus:

* traces are saved as canonical JSONL under
  ``<root>/traces/<d0d1>/<digest>.jsonl`` where ``digest`` is the
  SHA-256 of the canonical serialization
  (:meth:`repro.core.trace.ExecutionTrace.canonical_digest`) — ingesting
  the same operations twice is a no-op, regardless of trace names;
* ``<root>/manifest.json`` indexes every stored trace: display name,
  originating app, length, thread count, async-task count.

``ingest()`` accepts live :class:`ExecutionTrace` objects (the explorer
hook), JSONL files, and directories of JSONL files.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.core.trace import ExecutionTrace

#: What ``ingest`` accepts: a trace, a path, or an iterable of either.
Ingestible = Union[ExecutionTrace, str, "os.PathLike[str]", Iterable]

MANIFEST_NAME = "manifest.json"
TRACES_DIR = "traces"


class CorpusError(ValueError):
    """Raised for malformed stores or unknown digests."""


@dataclass(frozen=True)
class TraceEntry:
    """One manifest row."""

    digest: str
    name: str
    app: str
    length: int
    threads: int
    tasks: int

    def describe(self) -> str:
        return "%s  %-28s app=%-16s %6d ops, %d threads, %d tasks" % (
            self.digest[:12],
            self.name,
            self.app,
            self.length,
            self.threads,
            self.tasks,
        )


def app_of_trace_name(name: str) -> str:
    """Infer the originating app from a trace name.

    Explorer traces are named ``app[event,event,...]`` and run traces
    after their subject; everything up to the first ``[`` is the app.
    """
    return name.split("[", 1)[0].strip() or "unknown"


class TraceStore:
    """Persistent, content-addressed corpus of execution traces."""

    def __init__(self, root: Union[str, "os.PathLike[str]"]):
        self.root = Path(root)
        self.traces_dir = self.root / TRACES_DIR
        self.manifest_path = self.root / MANIFEST_NAME
        self._entries: dict = {}  # digest -> TraceEntry
        if self.manifest_path.exists():
            self._load_manifest()

    # -- ingestion -----------------------------------------------------------

    def ingest(
        self,
        source: Ingestible,
        app: Optional[str] = None,
        name: Optional[str] = None,
        strict: bool = True,
    ) -> List[TraceEntry]:
        """Store traces from ``source``; returns the (possibly pre-existing)
        entries, one per ingested trace.

        ``source`` may be an :class:`ExecutionTrace`, a JSONL file path, a
        directory (every ``*.jsonl`` file under it, recursively), or an
        iterable mixing any of these.  ``app`` overrides app attribution;
        ``name`` overrides the display name (single-trace sources only).
        """
        if isinstance(source, ExecutionTrace):
            return [self._ingest_trace(source, app=app, name=name)]
        if isinstance(source, (str, os.PathLike)):
            path = Path(source)
            if path.is_dir():
                files = sorted(path.rglob("*.jsonl"))
                if not files:
                    raise CorpusError("no *.jsonl traces under %s" % path)
                return [
                    self._ingest_file(f, app=app, strict=strict) for f in files
                ]
            return [self._ingest_file(path, app=app, name=name, strict=strict)]
        entries: List[TraceEntry] = []
        for item in source:
            entries.extend(self.ingest(item, app=app, strict=strict))
        return entries

    def _ingest_file(
        self,
        path: Path,
        app: Optional[str] = None,
        name: Optional[str] = None,
        strict: bool = True,
    ) -> TraceEntry:
        trace = ExecutionTrace.load(path, name=name or path.stem, strict=strict)
        return self._ingest_trace(trace, app=app)

    def _ingest_trace(
        self,
        trace: ExecutionTrace,
        app: Optional[str] = None,
        name: Optional[str] = None,
    ) -> TraceEntry:
        digest = trace.canonical_digest()
        existing = self._entries.get(digest)
        if existing is not None:
            return existing
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(trace.to_jsonl(), encoding="utf-8")
        tmp.replace(path)
        entry = TraceEntry(
            digest=digest,
            name=name or trace.name,
            app=app or app_of_trace_name(trace.name),
            length=len(trace),
            threads=len(trace.threads),
            tasks=len(trace.tasks),
        )
        self._entries[digest] = entry
        self._save_manifest()
        return entry

    # -- retrieval -----------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        return self.traces_dir / digest[:2] / ("%s.jsonl" % digest)

    def get(self, digest: str) -> TraceEntry:
        entry = self._entries.get(digest)
        if entry is None:
            raise CorpusError("unknown trace digest %s" % digest)
        return entry

    def load(self, digest: str, strict: bool = True) -> ExecutionTrace:
        entry = self.get(digest)
        return ExecutionTrace.load(
            self.path_for(digest), name=entry.name, strict=strict
        )

    def entries(self) -> List[TraceEntry]:
        """All manifest rows, sorted by (app, name, digest) for stable
        iteration order across runs and platforms."""
        return sorted(
            self._entries.values(), key=lambda e: (e.app, e.name, e.digest)
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries())

    # -- manifest ------------------------------------------------------------

    def _load_manifest(self) -> None:
        try:
            records = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CorpusError(
                "corrupt corpus manifest %s: %s" % (self.manifest_path, exc)
            )
        for rec in records:
            entry = TraceEntry(**rec)
            self._entries[entry.digest] = entry

    def _save_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        records = [asdict(entry) for entry in self.entries()]
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(records, indent=2, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(self.manifest_path)
