"""The on-disk trace corpus: a sharded, content-addressed store of
execution traces safe for concurrent multi-process access.

DroidRacer's workflow (paper, §5) generates *many* bounded event
sequences and analyzes every resulting trace offline.  At fleet scale
(the ``droidracer serve`` ingest service) many writer processes ingest
into one corpus while readers list and load mid-flight, so the store is
built from nothing but atomic filesystem primitives:

* traces are saved as canonical JSONL under
  ``<root>/traces/<d0d1>/<digest>.jsonl`` where ``digest`` is the
  SHA-256 of the canonical serialization
  (:meth:`repro.core.trace.ExecutionTrace.canonical_digest`) — ingesting
  the same operations twice is a cheap no-op (an existing payload is
  never re-serialized), regardless of trace names;
* each shard directory ``traces/<d0d1>/`` holds its own manifest in two
  layers: a compacted ``manifest.json`` snapshot plus one
  ``<digest>.entry.json`` journal file per not-yet-compacted trace.
  Every write is a unique temp file + :func:`os.replace`, so a manifest
  can never be observed torn, and two processes ingesting the same
  digest converge on identical files;
* :meth:`TraceStore.compact` folds journal entries into the shard
  snapshot under a per-shard ``flock`` (skipped, never blocked on, when
  another compactor holds it) and only unlinks the journal files it
  incorporated — a concurrent writer's fresh entry file survives, and a
  crash mid-compaction loses nothing (worst case an entry exists in
  both layers and deduplicates by digest);
* optional multi-tenant namespaces live under
  ``<root>/namespaces/<tenant>/`` as full stores of the same layout.

Stores written by the pre-sharded layout (one global
``<root>/manifest.json``) are still readable; ``compact()`` migrates
the global manifest into per-shard snapshots and removes it.

``ingest()`` accepts live :class:`ExecutionTrace` objects (the explorer
hook), JSONL files, and directories of JSONL files.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.core.trace import ExecutionTrace

#: What ``ingest`` accepts: a trace, a path, or an iterable of either.
Ingestible = Union[ExecutionTrace, str, "os.PathLike[str]", Iterable]

MANIFEST_NAME = "manifest.json"
TRACES_DIR = "traces"
NAMESPACES_DIR = "namespaces"
ENTRY_SUFFIX = ".entry.json"
COMPACT_LOCK = ".compact.lock"

#: Journal files per shard before ``ingest`` compacts it opportunistically.
DEFAULT_COMPACT_THRESHOLD = 64

_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class CorpusError(ValueError):
    """Raised for malformed stores, unknown digests, or bad namespaces."""


@dataclass(frozen=True)
class TraceEntry:
    """One manifest row."""

    digest: str
    name: str
    app: str
    length: int
    threads: int
    tasks: int

    def describe(self) -> str:
        return "%s  %-28s app=%-16s %6d ops, %d threads, %d tasks" % (
            self.digest[:12],
            self.name,
            self.app,
            self.length,
            self.threads,
            self.tasks,
        )


def app_of_trace_name(name: str) -> str:
    """Infer the originating app from a trace name.

    Explorer traces are named ``app[event,event,...]`` and run traces
    after their subject; everything up to the first ``[`` is the app.
    """
    return name.split("[", 1)[0].strip() or "unknown"


def valid_namespace(name: str) -> bool:
    """Tenant names are path-safe single components: alphanumeric plus
    ``. _ -``, not starting with a dot, at most 64 characters."""
    return bool(_NAMESPACE_RE.match(name))


def list_namespaces(root: Union[str, "os.PathLike[str]"]) -> List[str]:
    """Tenant namespaces present under a corpus root (sorted)."""
    ns_dir = Path(root) / NAMESPACES_DIR
    if not ns_dir.is_dir():
        return []
    return sorted(p.name for p in ns_dir.iterdir() if p.is_dir())


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` through a uniquely named temp file in
    the same directory + :func:`os.replace` — atomic on POSIX, and safe
    against concurrent writers of the same target (each gets its own
    temp file; last replace wins with a complete file either way)."""
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class _ShardLock:
    """Best-effort exclusive per-shard lock for compaction.

    Uses ``flock`` where available (auto-released on process death);
    acquisition never blocks — compaction is an optimization, so on
    contention the caller simply skips the shard.
    """

    def __init__(self, shard: Path):
        self.path = shard / COMPACT_LOCK
        self._fd: Optional[int] = None

    def acquire(self) -> bool:
        try:
            import fcntl
        except ImportError:  # non-POSIX: no safe lock, skip compaction
            return False
        try:
            fd = os.open(str(self.path), os.O_CREAT | os.O_RDWR)
        except OSError:
            return False
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def release(self) -> None:
        if self._fd is not None:
            os.close(self._fd)  # closing drops the flock
            self._fd = None


class TraceStore:
    """Persistent, content-addressed, concurrency-safe trace corpus.

    The in-memory entry map is a *view*: it reflects what this process
    has ingested plus whatever was on disk at construction (or the last
    :meth:`refresh`).  Concurrent writers' entries become visible after
    ``refresh()`` — disk is the source of truth.
    """

    def __init__(
        self,
        root: Union[str, "os.PathLike[str]"],
        namespace: Optional[str] = None,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ):
        base = Path(root)
        if namespace is not None:
            if not valid_namespace(namespace):
                raise CorpusError("invalid namespace %r" % namespace)
            base = base / NAMESPACES_DIR / namespace
        self.base_root = Path(root)
        self.namespace = namespace
        self.root = base
        self.traces_dir = self.root / TRACES_DIR
        self.manifest_path = self.root / MANIFEST_NAME  # legacy global manifest
        self.compact_threshold = compact_threshold
        self._entries: Dict[str, TraceEntry] = {}
        self.refresh()

    def namespace_store(self, namespace: str) -> "TraceStore":
        """A sibling store for one tenant (``<root>/namespaces/<ns>/``)."""
        if self.namespace is not None:
            raise CorpusError(
                "cannot nest namespaces (store already scoped to %r)"
                % self.namespace
            )
        return TraceStore(
            self.base_root,
            namespace=namespace,
            compact_threshold=self.compact_threshold,
        )

    # -- ingestion -----------------------------------------------------------

    def ingest(
        self,
        source: Ingestible,
        app: Optional[str] = None,
        name: Optional[str] = None,
        strict: bool = True,
    ) -> List[TraceEntry]:
        """Store traces from ``source``; returns the (possibly pre-existing)
        entries, one per ingested trace.

        ``source`` may be an :class:`ExecutionTrace`, a JSONL file path, a
        directory (every ``*.jsonl`` file under it, recursively), or an
        iterable mixing any of these.  ``app`` overrides app attribution;
        ``name`` overrides the display name (single-trace sources only).
        """
        if isinstance(source, ExecutionTrace):
            return [self._ingest_trace(source, app=app, name=name)]
        if isinstance(source, (str, os.PathLike)):
            path = Path(source)
            if path.is_dir():
                files = sorted(path.rglob("*.jsonl"))
                if not files:
                    raise CorpusError("no *.jsonl traces under %s" % path)
                return [
                    self._ingest_file(f, app=app, strict=strict) for f in files
                ]
            return [self._ingest_file(path, app=app, name=name, strict=strict)]
        entries: List[TraceEntry] = []
        for item in source:
            entries.extend(self.ingest(item, app=app, strict=strict))
        return entries

    def _ingest_file(
        self,
        path: Path,
        app: Optional[str] = None,
        name: Optional[str] = None,
        strict: bool = True,
    ) -> TraceEntry:
        trace = ExecutionTrace.load(path, name=name or path.stem, strict=strict)
        return self._ingest_trace(trace, app=app)

    def _ingest_trace(
        self,
        trace: ExecutionTrace,
        app: Optional[str] = None,
        name: Optional[str] = None,
    ) -> TraceEntry:
        digest = trace.canonical_digest()
        path = self.path_for(digest)
        existing = self._entries.get(digest)
        if existing is not None and path.exists():
            # Already present: no re-serialization, no manifest touch.
            return existing
        shard = path.parent
        shard.mkdir(parents=True, exist_ok=True)
        if not path.exists():
            _atomic_write_text(path, trace.to_jsonl())
        entry = existing or TraceEntry(
            digest=digest,
            name=name or trace.name,
            app=app or app_of_trace_name(trace.name),
            length=len(trace),
            threads=len(trace.threads),
            tasks=len(trace.tasks),
        )
        if existing is None:
            _atomic_write_text(
                self.entry_path(digest),
                json.dumps(asdict(entry), sort_keys=True),
            )
            self._entries[digest] = entry
            self._maybe_compact(shard)
        return entry

    # -- retrieval -----------------------------------------------------------

    def shard_dir(self, digest: str) -> Path:
        return self.traces_dir / digest[:2]

    def path_for(self, digest: str) -> Path:
        return self.shard_dir(digest) / ("%s.jsonl" % digest)

    def entry_path(self, digest: str) -> Path:
        return self.shard_dir(digest) / (digest + ENTRY_SUFFIX)

    def get(self, digest: str) -> TraceEntry:
        entry = self._entries.get(digest)
        if entry is None:
            # A concurrent writer may have added it since our last scan.
            self.refresh()
            entry = self._entries.get(digest)
        if entry is None:
            raise CorpusError("unknown trace digest %s" % digest)
        return entry

    def load(self, digest: str, strict: bool = True) -> ExecutionTrace:
        entry = self.get(digest)
        return ExecutionTrace.load(
            self.path_for(digest), name=entry.name, strict=strict
        )

    def entries(self) -> List[TraceEntry]:
        """All known manifest rows, sorted by (app, name, digest) for
        stable iteration order across runs and platforms."""
        return sorted(
            self._entries.values(), key=lambda e: (e.app, e.name, e.digest)
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries())

    # -- manifests -----------------------------------------------------------

    def refresh(self) -> int:
        """Re-scan every manifest layer on disk; returns the entry count.

        Reading races benignly with writers and compactors: snapshots
        are replaced atomically (a reader sees the old or the new file,
        never a torn one), and a journal entry that vanishes mid-scan
        was just compacted — its row is picked up by re-reading that
        shard's snapshot.
        """
        entries: Dict[str, TraceEntry] = {}
        self._read_legacy_manifest(entries)
        if self.traces_dir.is_dir():
            for shard in sorted(self.traces_dir.iterdir()):
                if shard.is_dir():
                    self._read_shard(shard, entries)
        self._entries = entries
        return len(entries)

    def _read_legacy_manifest(self, into: Dict[str, TraceEntry]) -> None:
        if not self.manifest_path.exists():
            return
        try:
            records = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CorpusError(
                "corrupt corpus manifest %s: %s" % (self.manifest_path, exc)
            )
        for rec in records:
            entry = TraceEntry(**rec)
            into[entry.digest] = entry

    def _read_shard(self, shard: Path, into: Dict[str, TraceEntry]) -> None:
        self._read_snapshot(shard, into)
        compacted_away = False
        for entry_file in sorted(shard.glob("*" + ENTRY_SUFFIX)):
            try:
                rec = json.loads(entry_file.read_text(encoding="utf-8"))
            except FileNotFoundError:
                compacted_away = True
                continue
            except (OSError, ValueError) as exc:
                raise CorpusError(
                    "corrupt manifest entry %s: %s" % (entry_file, exc)
                )
            entry = TraceEntry(**rec)
            into[entry.digest] = entry
        if compacted_away:
            # The vanished entries were folded into the snapshot.
            self._read_snapshot(shard, into)

    def _read_snapshot(self, shard: Path, into: Dict[str, TraceEntry]) -> None:
        snapshot = shard / MANIFEST_NAME
        try:
            records = json.loads(snapshot.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return
        except (OSError, ValueError) as exc:
            raise CorpusError("corrupt shard manifest %s: %s" % (snapshot, exc))
        for rec in records:
            entry = TraceEntry(**rec)
            into.setdefault(entry.digest, entry)

    def _save_manifest(self, shard: Path, rows: List[TraceEntry]) -> None:
        """Write one shard's compacted snapshot atomically (unique temp
        file + ``os.replace`` — never an in-place truncation, so a
        concurrent reader can never observe a torn manifest)."""
        records = [
            asdict(entry)
            for entry in sorted(rows, key=lambda e: (e.app, e.name, e.digest))
        ]
        _atomic_write_text(
            shard / MANIFEST_NAME,
            json.dumps(records, indent=2, sort_keys=True),
        )

    def _journal_files(self, shard: Path) -> List[Path]:
        return sorted(shard.glob("*" + ENTRY_SUFFIX))

    def _maybe_compact(self, shard: Path) -> None:
        try:
            pending = len(self._journal_files(shard))
        except OSError:
            return
        if self.compact_threshold and pending >= self.compact_threshold:
            self._compact_shard(shard)

    def _compact_shard(
        self, shard: Path, extra_rows: Optional[List[TraceEntry]] = None
    ) -> bool:
        """Fold journal entry files (plus ``extra_rows`` from a legacy
        manifest) into the shard snapshot.  Returns False when another
        compactor holds the shard lock (nothing is lost — the journal
        stays authoritative until someone else folds it)."""
        lock = _ShardLock(shard)
        if not lock.acquire():
            return False
        try:
            rows: Dict[str, TraceEntry] = {}
            self._read_snapshot(shard, rows)
            for entry in extra_rows or ():
                rows.setdefault(entry.digest, entry)
            absorbed: List[Path] = []
            for entry_file in self._journal_files(shard):
                try:
                    rec = json.loads(entry_file.read_text(encoding="utf-8"))
                except FileNotFoundError:
                    continue
                except (OSError, ValueError):
                    continue  # torn-impossible; treat unreadable as absent
                entry = TraceEntry(**rec)
                rows[entry.digest] = entry
                absorbed.append(entry_file)
            self._save_manifest(shard, list(rows.values()))
            for entry_file in absorbed:
                try:
                    entry_file.unlink()
                except OSError:
                    pass
        finally:
            lock.release()
        return True

    def compact(self) -> int:
        """Fold every shard's journal into its snapshot and migrate a
        legacy (pre-sharded) global manifest into the shard layer.
        Returns the number of entries now held in snapshots."""
        legacy: Dict[str, TraceEntry] = {}
        if self.manifest_path.exists():
            self._read_legacy_manifest(legacy)
        by_shard: Dict[str, List[TraceEntry]] = {}
        for entry in legacy.values():
            by_shard.setdefault(entry.digest[:2], []).append(entry)
        shards = set(by_shard)
        if self.traces_dir.is_dir():
            shards.update(
                p.name for p in self.traces_dir.iterdir() if p.is_dir()
            )
        all_folded = True
        total = 0
        for shard_name in sorted(shards):
            shard = self.traces_dir / shard_name
            shard.mkdir(parents=True, exist_ok=True)
            folded = self._compact_shard(
                shard, extra_rows=by_shard.get(shard_name)
            )
            all_folded = all_folded and folded
            rows: Dict[str, TraceEntry] = {}
            self._read_snapshot(shard, rows)
            total += len(rows)
        if legacy and all_folded:
            try:
                self.manifest_path.unlink()
            except OSError:
                pass
        self.refresh()
        return total

    def stats(self) -> dict:
        """Shape of the on-disk store (for ``serve`` status endpoints)."""
        shards = 0
        journal = 0
        if self.traces_dir.is_dir():
            for shard in self.traces_dir.iterdir():
                if shard.is_dir():
                    shards += 1
                    journal += len(self._journal_files(shard))
        return {
            "entries": len(self._entries),
            "shards": shards,
            "journal_entries": journal,
            "namespace": self.namespace,
            "root": str(self.root),
        }
