"""UI Explorer: systematic depth-first testing of simulated applications
with backtracking and replay (paper, §5)."""

from .events import SUPPORTED_KINDS, event_key, filter_events, find_event
from .random_explorer import (
    DynodroidExplorer,
    MonkeyExplorer,
    RandomRunResult,
    compare_strategies,
)
from .schedule_explorer import (
    OrderObservation,
    ScheduleExplorer,
    ValidationResult,
)
from .sequence_store import RunRecord, SequenceStore
from .ui_explorer import AppModel, ExplorationResult, UIExplorer, explore

__all__ = [
    "AppModel",
    "DynodroidExplorer",
    "ExplorationResult",
    "MonkeyExplorer",
    "OrderObservation",
    "RandomRunResult",
    "RunRecord",
    "SUPPORTED_KINDS",
    "ScheduleExplorer",
    "SequenceStore",
    "UIExplorer",
    "ValidationResult",
    "compare_strategies",
    "event_key",
    "explore",
    "filter_events",
    "find_event",
]
