"""UI Explorer: systematic depth-first testing of simulated applications
with backtracking and replay (paper, §5)."""

from .events import SUPPORTED_KINDS, event_key, filter_events, find_event
from .guided_explorer import (
    GuidedExplorationResult,
    GuidedExplorer,
    GuidedSession,
)
from .random_explorer import (
    DynodroidExplorer,
    MonkeyExplorer,
    RandomRunResult,
    compare_strategies,
)
from .suspicion import (
    DEFAULT_WEIGHTS,
    LocationSignal,
    ScoreWeights,
    SuspicionIndex,
    collect_signals,
    signal_document,
)
from .schedule_explorer import (
    OrderObservation,
    ScheduleExplorer,
    ValidationResult,
)
from .sequence_store import RunRecord, SequenceStore
from .ui_explorer import AppModel, ExplorationResult, UIExplorer, explore

__all__ = [
    "AppModel",
    "DEFAULT_WEIGHTS",
    "DynodroidExplorer",
    "ExplorationResult",
    "GuidedExplorationResult",
    "GuidedExplorer",
    "GuidedSession",
    "LocationSignal",
    "MonkeyExplorer",
    "ScoreWeights",
    "SuspicionIndex",
    "collect_signals",
    "signal_document",
    "OrderObservation",
    "RandomRunResult",
    "RunRecord",
    "SUPPORTED_KINDS",
    "ScheduleExplorer",
    "SequenceStore",
    "UIExplorer",
    "ValidationResult",
    "compare_strategies",
    "event_key",
    "explore",
    "filter_events",
    "find_event",
]
