"""Event vocabulary of the UI Explorer.

The explorer fires the event kinds DroidRacer generates (§5): click,
long-click, text input (with format-appropriate data), screen rotation and
the BACK button.  Events are exchanged with the runtime as
:class:`repro.android.views.UIEvent`; across replays they are identified
by their stable description strings.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.android.views import UIEvent

#: Kinds the paper's UI Explorer can generate.
SUPPORTED_KINDS = ("click", "long-click", "text", "rotate", "back")


def event_key(event: UIEvent) -> str:
    """Stable identity of an event across runs."""
    return event.describe()


def find_event(enabled: Iterable[UIEvent], key: str) -> Optional[UIEvent]:
    """Locate the enabled event matching a stored key, or ``None`` if the
    replayed run diverged and the event is no longer available."""
    for event in enabled:
        if event_key(event) == key:
            return event
    return None


def filter_events(
    events: Sequence[UIEvent],
    include_kinds: Optional[Sequence[str]] = None,
    exclude_kinds: Sequence[str] = (),
) -> List[UIEvent]:
    """Restrict the branching vocabulary (e.g. skip rotation to keep the
    exploration tree small)."""
    out = []
    for event in events:
        if include_kinds is not None and event.kind not in include_kinds:
            continue
        if event.kind in exclude_kinds:
            continue
        out.append(event)
    return out
