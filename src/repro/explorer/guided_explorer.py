"""Suspiciousness-guided exploration: the feedback loop's consumer.

The :class:`GuidedExplorer` closes the corpus -> explorer loop: prior
runs (mined into a :class:`~repro.explorer.suspicion.SuspicionIndex`)
tell it which memory locations are race-prone and which event keys were
present when those locations signalled; it spends its budget firing the
implicated events and *perturbing* the sequences that raced or nearly
raced:

* **reorder** — swap the hottest event with its predecessor (a different
  post order around the suspicious location);
* **inject** — insert a lifecycle event (rotation, else BACK) adjacent
  to the hottest event, forcing a pause/resume or re-creation between
  the racing posts;
* **reseed** — replay the same sequence under a different build seed
  (a different schedule of the same events).

With no prior signal for the app (empty index, empty history) guided
exploration degrades — by construction, not by accident — to seeded
uniform random over the same event vocabulary as
:class:`~repro.explorer.random_explorer.MonkeyExplorer`: the first
session under seed ``s`` fires exactly the sequence ``MonkeyExplorer``
with seed ``s`` would.  Tests pin this equivalence.

Each completed session is analyzed immediately; the resulting signal
document feeds an *online* index, so discoveries made mid-run steer the
remaining sessions even when the prior index was cold.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.race_detector import RaceDetector, RaceReport
from repro.core.trace import ExecutionTrace

from .events import event_key, filter_events, find_event
from .sequence_store import SequenceStore
from .suspicion import SuspicionIndex, signal_document
from .ui_explorer import AppModel

__all__ = [
    "GuidedExplorer",
    "GuidedExplorationResult",
    "GuidedSession",
    "LIFECYCLE_MARKER",
]

#: Plan placeholder resolved at fire time to whichever lifecycle event
#: (rotation preferred, BACK otherwise) is actually enabled.
LIFECYCLE_MARKER = "__lifecycle__"

#: Lifecycle event kinds, in injection-preference order.
_LIFECYCLE_KINDS = ("rotate", "back")

#: Weight of the mined (prior) affinity relative to online affinity.
_PRIOR_WEIGHT = 1.0


@dataclass
class GuidedSession:
    """One event sequence the guided explorer ran and analyzed."""

    index: int
    kind: str  # "greedy" | "random" | "reseed" | "reorder" | "inject"
    sequence: Tuple[str, ...]
    build_seed: int
    trace: ExecutionTrace
    report: RaceReport
    new_races: Tuple[Tuple[str, str], ...]  # (location, category) firsts
    near_misses: int
    signals: dict = field(default_factory=dict)  # the run's signal_document


@dataclass
class GuidedExplorationResult:
    """Outcome of a guided exploration run."""

    app_name: str
    strategy: str
    sessions: List[GuidedSession]
    races: List[Tuple[str, str]]  # distinct (location, category), sorted
    sequences_to_first_race: Optional[int]  # 1-based; None if none found
    store: SequenceStore = field(default_factory=SequenceStore)

    @property
    def sequence_count(self) -> int:
        return len(self.sessions)

    def races_per_100_sequences(self) -> float:
        if not self.sessions:
            return 0.0
        return 100.0 * len(self.races) / len(self.sessions)

    def describe(self) -> str:
        first = (
            "first race at sequence %d" % self.sequences_to_first_race
            if self.sequences_to_first_race is not None
            else "no race found"
        )
        return "%s/%s: %d races over %d sequences (%s)" % (
            self.app_name,
            self.strategy,
            len(self.races),
            len(self.sessions),
            first,
        )


class GuidedExplorer:
    """Suspiciousness-guided event-sequence exploration."""

    strategy = "guided"
    #: Monkey's vocabulary — identical on purpose, so the empty-index
    #: degradation to MonkeyExplorer is exact (same candidate lists).
    include_kinds: Sequence[str] = ("click", "long-click", "text", "back")
    exclude_kinds: Sequence[str] = ("rotate",)

    def __init__(
        self,
        app: AppModel,
        index: Optional[SuspicionIndex] = None,
        budget: int = 4,
        sequences: int = 4,
        seed: int = 0,
        history_ref: Optional[str] = None,
        stop_after_no_new: Optional[int] = None,
        max_perturbations: int = 8,
        detector_kwargs: Optional[dict] = None,
    ):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if sequences < 1:
            raise ValueError("sequences must be >= 1")
        self.app = app
        self.prior = index if index is not None else SuspicionIndex()
        self.budget = budget
        self.sequences = sequences
        self.seed = seed
        self.history_ref = history_ref
        self.stop_after_no_new = stop_after_no_new
        self.max_perturbations = max_perturbations
        self.detector_kwargs = dict(detector_kwargs or {})
        self.online = SuspicionIndex()
        self.store = SequenceStore()
        self._plans: Deque[Tuple[str, Tuple[str, ...], int]] = deque()
        self._planned: Set[Tuple[Tuple[str, ...], int]] = set()
        self._seen_races: Set[Tuple[str, str]] = set()
        self._fired_counts: Dict[str, int] = {}
        self._prior_affinity = self.prior.event_affinity(app.name)

    # -- event scoring -------------------------------------------------------

    def _affinity(self) -> Dict[str, float]:
        combined: Dict[str, float] = {}
        for key, value in self._prior_affinity.items():
            combined[key] = combined.get(key, 0.0) + _PRIOR_WEIGHT * value
        for key, value in self.online.event_affinity(self.app.name).items():
            combined[key] = combined.get(key, 0.0) + value
        return combined

    def _choose(
        self,
        events,
        fired_keys: Set[str],
        rng: random.Random,
        final_step: bool = False,
    ):
        """Cover the implicated-event set, then revisit its strongest
        member.

        Within a session, prefer the highest-affinity event not yet
        fired (co-enabled races need several specific events in *one*
        sequence, so the whole implicated set gets covered first); once
        every implicated event was tried, *repeat* the best one rather
        than wander into zero-affinity events — re-dispatching a handler
        races its task against the first dispatch.  BACK is deferred to
        the final step: it can finish the activity and end the session,
        so firing it earlier forfeits the remaining budget (while as the
        *last* event it still exercises destruction races).  Affinity is
        discounted by how often the event fired in earlier sessions, so
        successive greedy sessions walk different orderings.  Ties break
        by seeded choice."""
        affinity = self._affinity()

        def _score(event) -> float:
            key = event_key(event)
            return affinity.get(key, 0.0) / (
                1.0 + self._fired_counts.get(key, 0)
            )

        positives = [e for e in events if _score(e) > 0.0]
        if not final_step:
            safe = [e for e in positives if e.kind != "back"]
            if safe:
                positives = safe
        candidates = [
            e for e in positives if event_key(e) not in fired_keys
        ] or positives or list(events)
        best = max(_score(e) for e in candidates)
        tied = [e for e in candidates if _score(e) == best]
        return rng.choice(tied)

    # -- session execution ---------------------------------------------------

    def _enabled(self, system):
        return filter_events(
            system.enabled_events(),
            include_kinds=self.include_kinds,
            exclude_kinds=self.exclude_kinds,
        )

    def _lifecycle_event(self, system):
        """An enabled lifecycle event, rotation preferred — injection
        deliberately reaches outside the monkey vocabulary (perturbing
        the activity lifecycle is the point)."""
        enabled = system.enabled_events()
        for kind in _LIFECYCLE_KINDS:
            for event in enabled:
                if event.kind == kind:
                    return event
        return None

    def _run_session(
        self, session_index: int, kind: str, plan: Optional[Tuple[str, ...]],
        build_seed: int,
    ) -> Optional[GuidedSession]:
        system = self.app.build(build_seed)
        system.run_to_quiescence()
        rng = random.Random(self.seed + session_index)
        # Guided only when some event has positive affinity; with uniform
        # (all-zero) scores every draw is MonkeyExplorer's draw, exactly.
        guided = bool(self._affinity())
        fired: List[str] = []
        fired_keys: Set[str] = set()
        steps = plan if plan is not None else range(self.budget)
        for step in steps:
            if plan is not None:
                if step == LIFECYCLE_MARKER:
                    event = self._lifecycle_event(system)
                else:
                    event = find_event(self._enabled(system), step)
                if event is None:
                    continue  # replay diverged; skip the missing event
            else:
                events = self._enabled(system)
                if not events:
                    break
                if guided:
                    event = self._choose(
                        events, fired_keys, rng,
                        final_step=step == self.budget - 1,
                    )
                else:
                    # No signal anywhere: exactly MonkeyExplorer's draw.
                    event = rng.choice(events)
            system.fire(event)
            system.run_to_quiescence()
            key = event_key(event)
            fired.append(key)
            fired_keys.add(key)
        trace = system.finish(
            "%s[%s#%d]" % (self.app.name, self.strategy, session_index)
        )
        detector = RaceDetector(trace, **self.detector_kwargs)
        report = detector.detect()
        doc = signal_document(
            self.app.name, trace, detector.hb, report, events=fired
        )
        self.online.observe(doc)
        new = []
        for race in report.races:
            item = (race.location, race.category.value)
            if item not in self._seen_races:
                self._seen_races.add(item)
                new.append(item)
        near = sum(
            sig.get("near_misses", 0) for sig in doc["locations"].values()
        )
        for key in fired_keys:
            self._fired_counts[key] = self._fired_counts.get(key, 0) + 1
        self.store.record(
            fired,
            trace,
            enabled_after=[event_key(e) for e in self._enabled(system)],
            strategy=self.strategy if kind == "greedy" else
            "%s.%s" % (self.strategy, kind),
            seed=build_seed,
            history_ref=self.history_ref,
        )
        return GuidedSession(
            index=session_index,
            kind=kind,
            sequence=tuple(fired),
            build_seed=build_seed,
            trace=trace,
            report=report,
            new_races=tuple(new),
            near_misses=near,
            signals=doc,
        )

    # -- perturbation planning -----------------------------------------------

    def _hot_position(self, sequence: Tuple[str, ...]) -> int:
        """Index of the highest-affinity event in the sequence (the one
        most implicated in the racy/near-miss signal)."""
        if not sequence:
            return 0
        affinity = self._affinity()
        return max(
            range(len(sequence)), key=lambda i: (affinity.get(sequence[i], 0.0), -i)
        )

    def _enqueue(self, kind: str, sequence: Tuple[str, ...], build_seed: int):
        if len(self._plans) >= self.max_perturbations:
            return
        key = (sequence, build_seed)
        if key in self._planned:
            return
        if kind != "reseed" and self.store.explored(sequence):
            return
        self._planned.add(key)
        self._plans.append((kind, sequence, build_seed))

    def _plan_perturbations(self, session: GuidedSession) -> None:
        """Queue variants of a sequence that raced or nearly raced.

        Perturbed sequences that found *new* races are themselves
        perturbed further (a productive injection deserves its own
        reorder/reseed); only lifecycle markers never stack, so the
        variant tree stays shallow.
        """
        if session.kind in ("greedy", "random"):
            if not (session.new_races or session.near_misses):
                return
        elif not session.new_races:
            return  # derived variants must pay their way to spawn more
        seq = session.sequence
        hot = self._hot_position(seq)
        if seq:
            # Inject: a lifecycle event right before the hot event.
            # Queued first — forcing a pause/resume or re-creation between
            # the racing posts perturbs the schedule the hardest.  Never
            # stacks: an already-injected variant (or one that rotated on
            # its own) is not injected again, so rotation cannot be farmed
            # for ever-fresh activity generations.
            if session.kind != "inject" and "rotate" not in seq:
                injected = list(seq)
                injected.insert(hot, LIFECYCLE_MARKER)
                self._enqueue("inject", tuple(injected), session.build_seed)
            # Reorder: swap the hot event with its neighbour.
            swapped = list(seq)
            other = hot - 1 if hot > 0 else min(1, len(seq) - 1)
            if other != hot:
                swapped[hot], swapped[other] = swapped[other], swapped[hot]
                self._enqueue("reorder", tuple(swapped), session.build_seed)
        # Re-seed: same events, different schedule.
        self._enqueue("reseed", seq, session.build_seed + 1 + len(self._plans))

    # -- the exploration loop ------------------------------------------------

    def run(self) -> GuidedExplorationResult:
        sessions: List[GuidedSession] = []
        first_race_at: Optional[int] = None
        stale = 0
        for s in range(self.sequences):
            if self._plans:
                kind, plan, build_seed = self._plans.popleft()
                session = self._run_session(s, kind, plan, build_seed)
            else:
                kind = "greedy" if self._affinity() else "random"
                session = self._run_session(s, kind, None, self.seed)
            if session is None:
                continue
            sessions.append(session)
            if session.new_races:
                stale = 0
                if first_race_at is None:
                    first_race_at = len(sessions)
            else:
                stale += 1
            self._plan_perturbations(session)
            if (
                self.stop_after_no_new is not None
                and stale >= self.stop_after_no_new
            ):
                break
        return GuidedExplorationResult(
            app_name=self.app.name,
            strategy=self.strategy,
            sessions=sessions,
            races=sorted(self._seen_races),
            sequences_to_first_race=first_race_at,
            store=self.store,
        )
