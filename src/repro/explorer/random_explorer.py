"""Random-testing baselines for the UI Explorer comparison (§7).

The paper positions its systematic depth-first explorer against:

* **Android Monkey** — "a random event generator [that] lacks the ability
  to systematically explore the UI": uniform random choice among events,
  one long run, no replay support;
* **Dynodroid** — "randomly explores the UI events and unlike ours, does
  not provide easy replay.  However, ... Dynodroid can simulate intents":
  frequency-aware random selection (its BiasedRandom strategy prefers
  least-recently-selected events) including injectable broadcast intents.

Both produce a single continuous trace per run; the comparison benchmark
measures how many events each strategy needs before race detection first
reports something.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.android.system import AndroidSystem
from repro.android.views import UIEvent
from repro.core.race_detector import RaceReport, detect_races
from repro.core.trace import ExecutionTrace

from .events import event_key, filter_events
from .ui_explorer import AppModel


@dataclass
class RandomRunResult:
    """Outcome of one random-testing session."""

    app_name: str
    strategy: str
    events_fired: List[str]
    trace: ExecutionTrace
    report: RaceReport
    events_to_first_race: Optional[int]  # None if no race was ever found

    def describe(self) -> str:
        found = (
            "first race after %d events" % self.events_to_first_race
            if self.events_to_first_race is not None
            else "no race in %d events" % len(self.events_fired)
        )
        return "%s/%s: %s" % (self.app_name, self.strategy, found)


class RandomExplorerBase:
    """One continuous run firing randomly chosen events."""

    strategy = "random"
    #: event kinds the strategy can generate
    include_kinds: Optional[Sequence[str]] = None
    exclude_kinds: Sequence[str] = ("rotate",)

    def __init__(self, app: AppModel, budget: int = 10, seed: int = 0):
        self.app = app
        self.budget = budget
        self.seed = seed
        self.rng = random.Random(seed)

    def choose(self, events: List[UIEvent]) -> UIEvent:
        raise NotImplementedError

    def run(self, check_every: int = 1) -> RandomRunResult:
        """Fire up to ``budget`` events; detect races on the growing trace
        every ``check_every`` events (to compute events-to-first-race)."""
        system = self.app.build(self.seed)
        system.run_to_quiescence()
        fired: List[str] = []
        first_race_at: Optional[int] = None
        for step in range(self.budget):
            events = filter_events(
                system.enabled_events(),
                include_kinds=self.include_kinds,
                exclude_kinds=self.exclude_kinds,
            )
            if not events:
                break
            event = self.choose(events)
            system.fire(event)
            system.run_to_quiescence()
            fired.append(event_key(event))
            if first_race_at is None and (step + 1) % check_every == 0:
                snapshot = system.env.build_trace("%s-snapshot" % self.app.name)
                if detect_races(snapshot).races:
                    first_race_at = step + 1
        trace = system.finish("%s[%s]" % (self.app.name, self.strategy))
        report = detect_races(trace)
        if first_race_at is None and report.races:
            first_race_at = len(fired)
        return RandomRunResult(
            app_name=self.app.name,
            strategy=self.strategy,
            events_fired=fired,
            trace=trace,
            report=report,
            events_to_first_race=first_race_at,
        )


class MonkeyExplorer(RandomExplorerBase):
    """Uniform random events, UI only (no intents — Monkey cannot inject
    them), no state: the weakest baseline."""

    strategy = "monkey"
    include_kinds = ("click", "long-click", "text", "back")

    def choose(self, events: List[UIEvent]) -> UIEvent:
        return self.rng.choice(events)


class DynodroidExplorer(RandomExplorerBase):
    """Dynodroid's BiasedRandom: prefer events selected least often so
    far; can inject broadcast intents."""

    strategy = "dynodroid"
    include_kinds = ("click", "long-click", "text", "back", "intent")

    def __init__(self, app: AppModel, budget: int = 10, seed: int = 0):
        super().__init__(app, budget, seed)
        self._frequency: Dict[str, int] = {}

    def choose(self, events: List[UIEvent]) -> UIEvent:
        least = min(self._frequency.get(event_key(e), 0) for e in events)
        candidates = [
            e for e in events if self._frequency.get(event_key(e), 0) == least
        ]
        chosen = self.rng.choice(candidates)
        key = event_key(chosen)
        self._frequency[key] = self._frequency.get(key, 0) + 1
        return chosen


def compare_strategies(
    app: AppModel,
    budget: int = 8,
    seeds: Sequence[int] = (0, 1, 2),
) -> Dict[str, List[RandomRunResult]]:
    """Run each random strategy over several seeds (the systematic
    explorer is compared separately — it enumerates, rather than samples,
    sequences)."""
    out: Dict[str, List[RandomRunResult]] = {}
    for explorer_cls in (MonkeyExplorer, DynodroidExplorer):
        runs = [
            explorer_cls(app, budget=budget, seed=seed).run() for seed in seeds
        ]
        out[explorer_cls.strategy] = runs
    return out
