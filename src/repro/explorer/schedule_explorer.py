"""Automated race validation by schedule perturbation.

The paper validated reported races manually: "For multi-threaded and
cross-posted races, stall certain threads using breakpoints, giving
others the opportunity to progress or to enforce a different ordering of
asynchronous procedure calls" (§6).  We automate the idea: re-run the
application under many schedules (seeds) and record the *order* in which
the two racy accesses hit memory.  A report is **validated** when both
orders are observed across schedules — direct evidence the pair is
reorderable (a true positive); a report whose order never flips across
the budget is *unconfirmed* (false positives land here, since their
hidden causality fixes the order in every run).

This replaces the paper's debugger sessions with the determinism of the
simulator: every run is replayable by seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.android.system import AndroidSystem
from repro.core.race_detector import Race
from repro.core.trace import ExecutionTrace, field_of_location

from .events import find_event
from .ui_explorer import AppModel


@dataclass
class OrderObservation:
    """Access order of one location's first racy pair in one run."""

    seed: int
    first_thread: str
    first_task: Optional[str]
    order_key: Tuple[str, str]  # (kind@thread/task of 1st, of 2nd)


@dataclass
class ValidationResult:
    """Outcome of validating one reported race."""

    field_name: str
    observations: List[OrderObservation]
    orders_seen: List[Tuple[str, str]]

    @property
    def validated(self) -> bool:
        """True when at least two distinct access orders were observed —
        the §6 criterion ('we could produce alternate ordering of racey
        memory accesses than the reported order')."""
        return len(self.orders_seen) >= 2

    def describe(self) -> str:
        status = "VALIDATED" if self.validated else "unconfirmed"
        return "%s: %s (%d orders across %d runs)" % (
            self.field_name,
            status,
            len(self.orders_seen),
            len(self.observations),
        )


class ScheduleExplorer:
    """Re-runs an app model under many schedules to validate races."""

    def __init__(
        self,
        app: AppModel,
        events: Sequence[str] = (),
        seeds: Sequence[int] = tuple(range(12)),
        eager_events: bool = True,
    ):
        self.app = app
        self.events = list(events)
        self.seeds = list(seeds)
        #: fire events as soon as the UI is up (racy windows stay open)
        self.eager_events = eager_events

    # -- running ------------------------------------------------------------

    def _run(self, seed: int) -> ExecutionTrace:
        system = self.app.build(seed)
        if self.eager_events:
            system.env.run_until(
                lambda: system.screen.foreground is not None
            )
        else:
            system.run_to_quiescence()
        for key in self.events:
            event = find_event(system.enabled_events(), key)
            if event is not None:
                system.fire(event)
                if not self.eager_events:
                    system.run_to_quiescence()
        system.run_to_quiescence()
        return system.finish("%s@seed%d" % (self.app.name, seed))

    # -- order extraction ------------------------------------------------------

    @staticmethod
    def _access_signature(trace: ExecutionTrace, index: int) -> str:
        op = trace[index]
        task = trace.task_name_of(index)
        base_task = (task or "-").split("#", 1)[0]
        return "%s@%s/%s" % (op.kind.value, op.thread, base_task)

    def _first_conflicting_order(
        self, trace: ExecutionTrace, field_name: str
    ) -> Optional[Tuple[str, str, str, Optional[str]]]:
        """Signatures of the first conflicting access pair on the field
        (distinct signatures, at least one write)."""
        accesses = [
            op
            for op in trace.memory_accesses()
            if field_of_location(op.location) == field_name
        ]
        for i, first in enumerate(accesses):
            sig_first = self._access_signature(trace, first.index)
            for second in accesses[i + 1 :]:
                if not (first.is_write or second.is_write):
                    continue
                sig_second = self._access_signature(trace, second.index)
                if sig_second == sig_first:
                    continue
                return (
                    sig_first,
                    sig_second,
                    first.thread,
                    trace.task_name_of(first.index),
                )
        return None

    # -- validation ----------------------------------------------------------------

    def validate_field(self, field_name: str) -> ValidationResult:
        observations: List[OrderObservation] = []
        orders: Dict[Tuple[str, str], None] = {}
        for seed in self.seeds:
            trace = self._run(seed)
            found = self._first_conflicting_order(trace, field_name)
            if found is None:
                continue
            sig_first, sig_second, thread, task = found
            key = (sig_first, sig_second)
            orders.setdefault(key, None)
            observations.append(
                OrderObservation(
                    seed=seed,
                    first_thread=thread,
                    first_task=task,
                    order_key=key,
                )
            )
        return ValidationResult(
            field_name=field_name,
            observations=observations,
            orders_seen=list(orders),
        )

    def validate_race(self, race: Race) -> ValidationResult:
        return self.validate_field(race.field_name)

    def validate_report(self, races: Sequence[Race]) -> Dict[str, ValidationResult]:
        out: Dict[str, ValidationResult] = {}
        for race in races:
            if race.field_name not in out:
                out[race.field_name] = self.validate_race(race)
        return out

    # -- adversarial strategies (the three §6 bullet points) ----------------------

    def validate_field_adversarially(self, field_name: str) -> ValidationResult:
        """Seed sweep plus the paper's targeted perturbations:

        1. *stall threads* — rerun with the first access's thread (and, if
           inside a task, its posting thread) held back until the second
           access lands (multithreaded / cross-posted races);
        2. *change the order of triggering events* — rerun with the event
           sequence reversed (co-enabled races).
        """
        result = self.validate_field(field_name)
        if result.validated or not result.observations:
            return result
        orders = {key: None for key in result.orders_seen}
        observations = list(result.observations)

        baseline = result.observations[0]
        stall_targets = [baseline.first_thread]
        if baseline.first_task is not None:
            trace = self._run(baseline.seed)
            info = trace.tasks.get(baseline.first_task)
            if info is not None and info.poster_thread not in stall_targets:
                stall_targets.append(info.poster_thread)
        second_sig = baseline.order_key[1]

        for stall_thread in stall_targets:
            if stall_thread is None:
                continue
            found = self._run_stalled(
                baseline.seed, field_name, stall_thread, second_sig
            )
            if found is not None:
                observations.append(found)
                orders.setdefault(found.order_key, None)

        if len(orders) < 2 and self.events:
            reversed_explorer = ScheduleExplorer(
                self.app,
                events=list(reversed(self.events)),
                seeds=self.seeds[:4],
                eager_events=self.eager_events,
            )
            for seed in reversed_explorer.seeds:
                trace = reversed_explorer._run(seed)
                found = self._first_conflicting_order(trace, field_name)
                if found is not None:
                    sig_first, sig_second, thread, task = found
                    key = (sig_first, sig_second)
                    orders.setdefault(key, None)
                    observations.append(
                        OrderObservation(seed, thread, task, key)
                    )

        return ValidationResult(
            field_name=field_name,
            observations=observations,
            orders_seen=list(orders),
        )

    def _run_stalled(
        self,
        seed: int,
        field_name: str,
        stall_thread: str,
        release_signature: str,
    ) -> Optional[OrderObservation]:
        """One run with ``stall_thread`` held until an access matching the
        second signature is logged."""
        from repro.android.scheduler import RandomPolicy, StallPolicy
        from repro.core.operations import OpKind

        kind_name, rest = release_signature.split("@", 1)
        release_thread = rest.split("/", 1)[0]
        want_kind = OpKind(kind_name)

        def release_when(env) -> bool:
            for op in reversed(env.ops):
                if (
                    op.kind is want_kind
                    and op.thread == release_thread
                    and op.location is not None
                    and field_of_location(op.location) == field_name
                ):
                    return True
            return False

        policy = StallPolicy(RandomPolicy(seed), stall_thread, release_when)
        system = self.app.build(seed)
        # Rebuild with the adversarial policy driving the same app.
        system.env.policy = policy
        policy.attach(system.env)
        if self.eager_events:
            system.env.run_until(lambda: system.screen.foreground is not None)
        else:
            system.run_to_quiescence()
        for key in self.events:
            event = find_event(system.enabled_events(), key)
            if event is not None:
                system.fire(event)
                if not self.eager_events:
                    system.run_to_quiescence()
        system.run_to_quiescence()
        trace = system.finish("%s@stall-%s" % (self.app.name, stall_thread))
        found = self._first_conflicting_order(trace, field_name)
        if found is None:
            return None
        sig_first, sig_second, thread, task = found
        return OrderObservation(seed, thread, task, (sig_first, sig_second))
