"""The explored-sequence database.

DroidRacer stores generated event sequences "in a database … used for
backtracking and replay" (§5).  This is that database: every run is
recorded with its event sequence, the scheduling decisions (for exact
replay), and summary statistics; the explorer consults it to avoid
re-exploring prefixes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.trace import ExecutionTrace


@dataclass
class RunRecord:
    """One completed testing run."""

    run_id: int
    sequence: Tuple[str, ...]  # event keys, in firing order
    trace: Optional[ExecutionTrace]
    decisions: Tuple[str, ...] = ()  # scheduler decisions, for replay
    enabled_after: Tuple[str, ...] = ()  # events enabled at the end
    # Provenance: which strategy produced the sequence, under which build
    # seed, and (for guided runs) which history directory seeded the
    # suspicion index.  Optional — records written before these fields
    # existed load with the defaults.
    strategy: Optional[str] = None
    seed: Optional[int] = None
    history_ref: Optional[str] = None

    @property
    def depth(self) -> int:
        return len(self.sequence)

    def describe(self) -> str:
        seq = " -> ".join(self.sequence) if self.sequence else "<empty>"
        return "run %d [%s]" % (self.run_id, seq)


class SequenceStore:
    """In-memory store of explored event sequences."""

    def __init__(self):
        self._runs: List[RunRecord] = []
        self._by_sequence: Dict[Tuple[str, ...], int] = {}

    def record(
        self,
        sequence: Sequence[str],
        trace: Optional[ExecutionTrace],
        decisions: Sequence[str] = (),
        enabled_after: Sequence[str] = (),
        strategy: Optional[str] = None,
        seed: Optional[int] = None,
        history_ref: Optional[str] = None,
    ) -> RunRecord:
        run = RunRecord(
            run_id=len(self._runs),
            sequence=tuple(sequence),
            trace=trace,
            decisions=tuple(decisions),
            enabled_after=tuple(enabled_after),
            strategy=strategy,
            seed=seed,
            history_ref=history_ref,
        )
        self._runs.append(run)
        self._by_sequence[run.sequence] = run.run_id
        return run

    def explored(self, sequence: Sequence[str]) -> bool:
        return tuple(sequence) in self._by_sequence

    def lookup(self, sequence: Sequence[str]) -> Optional[RunRecord]:
        run_id = self._by_sequence.get(tuple(sequence))
        return None if run_id is None else self._runs[run_id]

    @property
    def runs(self) -> List[RunRecord]:
        return list(self._runs)

    def __len__(self) -> int:
        return len(self._runs)

    def frontier(self, depth: int) -> List[RunRecord]:
        """Runs whose sequences can still be extended (shorter than the
        bound and with events enabled afterwards)."""
        return [
            run
            for run in self._runs
            if run.depth < depth and run.enabled_after
        ]

    # -- persistence (sequence metadata only; traces are separate) --------------

    def save(self, path) -> None:
        """Write the store as JSONL (one run record per line), so explored
        event sequences survive across runs — the paper's 'database of
        event sequences' used for backtracking and replay (§5)."""
        with open(path, "w", encoding="utf-8") as handle:
            for run in self._runs:
                handle.write(json.dumps(self._record_dict(run), sort_keys=True))
                handle.write("\n")

    @classmethod
    def load(cls, path) -> "SequenceStore":
        """Read a store written by :meth:`save`.  Traces are not persisted
        here (the trace corpus owns them); loaded records have
        ``trace=None`` and are replayable through their sequences."""
        store = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                store.record(
                    rec["sequence"],
                    trace=None,
                    decisions=rec.get("decisions", ()),
                    enabled_after=rec.get("enabled_after", ()),
                    strategy=rec.get("strategy"),
                    seed=rec.get("seed"),
                    history_ref=rec.get("history_ref"),
                )
        return store

    @staticmethod
    def _record_dict(run: RunRecord) -> dict:
        out = {
            "run_id": run.run_id,
            "sequence": list(run.sequence),
            "decisions": list(run.decisions),
            "enabled_after": list(run.enabled_after),
        }
        # Provenance keys are emitted only when set, so stores written by
        # provenance-unaware strategies stay byte-identical to the old
        # schema (and old files, lacking the keys, load fine above).
        if run.strategy is not None:
            out["strategy"] = run.strategy
        if run.seed is not None:
            out["seed"] = run.seed
        if run.history_ref is not None:
            out["history_ref"] = run.history_ref
        return out

    def to_json(self) -> str:
        records = [self._record_dict(run) for run in self._runs]
        return json.dumps(records, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SequenceStore":
        store = cls()
        for rec in json.loads(text):
            store.record(
                rec["sequence"],
                trace=None,
                decisions=rec.get("decisions", ()),
                enabled_after=rec.get("enabled_after", ()),
                strategy=rec.get("strategy"),
                seed=rec.get("seed"),
                history_ref=rec.get("history_ref"),
            )
        return store
