"""Suspiciousness scoring: the corpus -> explorer feedback signal.

The detector only reports races on schedules the explorer actually
manifests, so blind exploration wastes most of its budget on event
sequences that never touch race-prone state.  Prior corpus runs already
carry everything needed to do better — per-location unordered-pair
density, near-miss orderings, classification mix, and triage verdicts —
and this module distills them into a per-(app, location)
:class:`SuspicionIndex` the :class:`~repro.explorer.guided_explorer.
GuidedExplorer` consults when choosing what to fire next.

Signals per (app, location), every one a *ratio* so scores are invariant
under duplicating traces in the history (ten copies of the same run must
not look ten times as suspicious):

* **pair density** — unordered conflicting pairs over all conflicting
  cross-scope pairs at the location (from the same enumeration the
  detector runs, recomputed here per location);
* **near-miss rate** — conflicting pairs that *are* ordered, but only
  through exactly one FIFO/NOPRE/AT-FRONT derived edge
  (:attr:`HappensBefore.rule_edges`): one perturbed post and the pair
  races.  Confirmed via :func:`repro.core.explain.hb_witness`;
* **classification mix** — distinct :class:`RaceCategory` values seen at
  the location over the five possible ones (a location racing in several
  ways has more schedules worth perturbing);
* **escalation rate** — fraction of the location's traces where the
  ``--triage vc`` tier could not prove race-freedom and escalated to the
  closure.

The index additionally learns an *event attribution*: which event keys
were present in sequences that manifested signals at each location.
That attribution, weighted by location scores, is the prior
:class:`~repro.explorer.guided_explorer.GuidedExplorer` uses to rank
enabled events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.classification import RaceCategory
from repro.core.explain import hb_witness
from repro.core.happens_before import HappensBefore
from repro.core.race_detector import RaceReport
from repro.core.trace import ExecutionTrace

__all__ = [
    "DEFAULT_WEIGHTS",
    "LocationSignal",
    "ScoreWeights",
    "SuspicionIndex",
    "collect_signals",
    "signal_document",
]

#: Schema version of signal documents and serialized indexes.
SIGNAL_VERSION = 1

#: Near-miss post-pass budget: skip the pass (rather than blow up) on
#: traces whose rule-edge population or per-location accessor count is
#: outside what the quadratic bridge scan can afford.
MAX_ACCESSORS = 64
MAX_RULE_EDGES = 4096


@dataclass(frozen=True)
class ScoreWeights:
    """Relative weight of each signal in the combined score.  The four
    weights sum to 1.0 so scores stay in ``[0, 1]``."""

    density: float = 0.40
    near_miss: float = 0.30
    mix: float = 0.20
    escalation: float = 0.10


DEFAULT_WEIGHTS = ScoreWeights()


@dataclass
class LocationSignal:
    """Accumulated evidence about one (app, location) pair."""

    location: str
    traces: int = 0  # traces in which the location was observed
    conflicting_pairs: int = 0  # cross-scope conflicting pairs (denominator)
    racy_pairs: int = 0  # unordered conflicting pairs
    near_misses: int = 0  # ordered through exactly one derived edge
    escalated: int = 0  # traces where vc triage escalated on this location
    categories: List[str] = field(default_factory=list)  # distinct, sorted
    events: Dict[str, int] = field(default_factory=dict)  # key -> traces seen

    def merge(self, signal: dict, events: Sequence[str], escalated: bool) -> None:
        """Fold one run's signal dict (from :func:`collect_signals`) in."""
        self.traces += 1
        self.conflicting_pairs += int(signal.get("conflicting_pairs", 0))
        self.racy_pairs += int(signal.get("racy_pairs", 0))
        self.near_misses += int(signal.get("near_misses", 0))
        cats = set(self.categories)
        cats.update(signal.get("categories", ()))
        self.categories = sorted(cats)
        hot = bool(
            signal.get("racy_pairs")
            or signal.get("near_misses")
            or signal.get("categories")
        )
        if escalated and hot:
            self.escalated += 1
        if hot:
            # Attribute the run's events only when the location actually
            # signalled — race-free runs teach nothing about which events
            # provoke this location.
            for key in dict.fromkeys(events):
                self.events[key] = self.events.get(key, 0) + 1

    def score(self, weights: ScoreWeights = DEFAULT_WEIGHTS) -> float:
        """Combined suspiciousness in ``[0, 1]``.

        Every term is a ratio of like-scaled accumulators, so the score
        is invariant under trace duplication: doubling every run doubles
        numerator and denominator alike (the category set is a set).
        """
        if self.traces == 0:
            return 0.0
        pairs = self.conflicting_pairs
        density = self.racy_pairs / pairs if pairs else 0.0
        near = self.near_misses / pairs if pairs else 0.0
        mix = len(self.categories) / float(len(RaceCategory))
        escalation = self.escalated / self.traces
        return (
            weights.density * density
            + weights.near_miss * near
            + weights.mix * mix
            + weights.escalation * escalation
        )

    def to_dict(self) -> dict:
        return {
            "location": self.location,
            "traces": self.traces,
            "conflicting_pairs": self.conflicting_pairs,
            "racy_pairs": self.racy_pairs,
            "near_misses": self.near_misses,
            "escalated": self.escalated,
            "categories": list(self.categories),
            "events": dict(self.events),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LocationSignal":
        return cls(
            location=data["location"],
            traces=int(data.get("traces", 0)),
            conflicting_pairs=int(data.get("conflicting_pairs", 0)),
            racy_pairs=int(data.get("racy_pairs", 0)),
            near_misses=int(data.get("near_misses", 0)),
            escalated=int(data.get("escalated", 0)),
            categories=sorted(data.get("categories", ())),
            events=dict(data.get("events", {})),
        )


# -- per-run signal collection ---------------------------------------------------


def _location_accessors(hb: HappensBefore) -> Dict[str, List[Tuple]]:
    """Per location, the access-block nodes touching it (ascending node
    order) with a writes-here flag — the same grouping the detector's
    enumeration works from."""
    index: Dict[str, List[Tuple]] = {}
    for node in hb.graph.nodes:
        if not node.is_access_block:
            continue
        for location in node.locations():
            index.setdefault(location, []).append(
                (node, node.writes_to(location))
            )
    return index


def _bridge_count(hb: HappensBefore, a: int, b: int, limit: int = 2) -> int:
    """Derived (FIFO/NOPRE/AT-FRONT) edges usable on an ``a -> b`` HB
    path: edges ``(u, v)`` with ``a ⪯ u`` and ``v ⪯ b``.  Stops counting
    at ``limit`` — callers only care whether the count is exactly one."""
    graph = hb.graph
    count = 0
    for u, v in hb.rule_edges:
        if (u == a or graph.ordered(a, u)) and (v == b or graph.ordered(v, b)):
            count += 1
            if count >= limit:
                break
    return count


def collect_signals(
    trace: ExecutionTrace,
    hb: HappensBefore,
    report: RaceReport,
    max_accessors: int = MAX_ACCESSORS,
    max_rule_edges: int = MAX_RULE_EDGES,
) -> Dict[str, dict]:
    """One run's per-location signal dicts.

    Re-enumerates conflicting cross-scope pairs per location (the
    detector reports only deduplicated representatives, not densities)
    and runs the near-miss post-pass: a conflicting pair that *is*
    ordered, but bridged by exactly one rule-derived edge, is one
    perturbed post away from racing.  ``hb_witness`` confirms each
    candidate (an actual HB path exists through the closure).

    Locations with more than ``max_accessors`` access blocks are
    truncated (flagged ``"truncated": true``); the near-miss pass is
    skipped entirely when the trace carries more than ``max_rule_edges``
    derived edges.
    """
    categories: Dict[str, List[str]] = {}
    for race in report.races:
        categories.setdefault(race.location, []).append(race.category.value)
    scan_bridges = len(hb.rule_edges) <= max_rule_edges
    signals: Dict[str, dict] = {}
    for location, accessors in _location_accessors(hb).items():
        truncated = len(accessors) > max_accessors
        if truncated:
            accessors = accessors[:max_accessors]
        conflicting = racy = near = 0
        for a_pos, (a, a_writes) in enumerate(accessors):
            for b, b_writes in accessors[a_pos + 1 :]:
                if a.thread == b.thread and a.task == b.task:
                    continue  # program order within one scope: never races
                if not a_writes and not b_writes:
                    continue
                conflicting += 1
                if not hb.graph.ordered(a.node_id, b.node_id):
                    # Node ids ascend in trace order and closure edges
                    # only point forward, so unordered-forward is the
                    # full race condition here.
                    racy += 1
                elif scan_bridges and _bridge_count(hb, a.node_id, b.node_id) == 1:
                    if hb_witness(hb, a.first_index, b.first_index) is not None:
                        near += 1
        cats = categories.get(location, ())
        if not conflicting and not cats:
            continue  # single-scope location: nothing to learn
        signals[location] = {
            "conflicting_pairs": conflicting,
            "racy_pairs": racy,
            "near_misses": near,
            "categories": sorted(set(cats)),
        }
        if truncated:
            signals[location]["truncated"] = True
    return signals


def signal_document(
    app: str,
    trace: ExecutionTrace,
    hb: HappensBefore,
    report: RaceReport,
    events: Sequence[str] = (),
    escalated: bool = False,
) -> dict:
    """The run-level signal record: what goes into a history record's
    ``extra["suspicion"]`` and what :meth:`SuspicionIndex.observe`
    consumes."""
    return {
        "version": SIGNAL_VERSION,
        "app": app,
        "trace_name": trace.name,
        "events": list(events),
        "escalated": bool(escalated),
        "locations": collect_signals(trace, hb, report),
    }


# -- the mined index -------------------------------------------------------------


class SuspicionIndex:
    """Per-(app, location) suspiciousness, mined from prior runs."""

    def __init__(self, weights: ScoreWeights = DEFAULT_WEIGHTS):
        self.weights = weights
        self._apps: Dict[str, Dict[str, LocationSignal]] = {}

    # -- ingestion -----------------------------------------------------------

    def observe(self, doc: dict) -> None:
        """Fold one signal document (:func:`signal_document`) in."""
        app = doc.get("app") or "?"
        events = list(doc.get("events", ()))
        escalated = bool(doc.get("escalated"))
        bucket = self._apps.setdefault(app, {})
        for location, signal in (doc.get("locations") or {}).items():
            entry = bucket.get(location)
            if entry is None:
                entry = bucket[location] = LocationSignal(location=location)
            entry.merge(signal, events, escalated)

    @classmethod
    def mine(
        cls,
        records: Iterable,
        app: Optional[str] = None,
        weights: ScoreWeights = DEFAULT_WEIGHTS,
    ) -> "SuspicionIndex":
        """Build an index from history :class:`~repro.obs.history.
        RunRecord`s: every record carrying ``extra["suspicion"]`` (one
        document or a list of them, for multi-trace commands)
        contributes.  ``app`` restricts mining to one application."""
        index = cls(weights=weights)
        for record in records:
            payload = record.extra.get("suspicion")
            if not payload:
                continue
            docs = payload if isinstance(payload, list) else [payload]
            for doc in docs:
                if not isinstance(doc, dict):
                    continue
                if app is not None and doc.get("app") != app:
                    continue
                index.observe(doc)
        return index

    # -- queries -------------------------------------------------------------

    @property
    def apps(self) -> List[str]:
        return sorted(self._apps)

    def is_empty(self, app: Optional[str] = None) -> bool:
        if app is not None:
            return not self._apps.get(app)
        return not any(self._apps.values())

    def signals(self, app: str) -> Dict[str, LocationSignal]:
        return dict(self._apps.get(app, {}))

    def score(self, app: str, location: str) -> float:
        entry = self._apps.get(app, {}).get(location)
        return entry.score(self.weights) if entry else 0.0

    def scores(self, app: str) -> Dict[str, float]:
        return {
            location: entry.score(self.weights)
            for location, entry in self._apps.get(app, {}).items()
        }

    def top(self, app: str, n: int = 10) -> List[Tuple[str, float]]:
        ranked = sorted(
            self.scores(app).items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:n]

    def event_affinity(self, app: str) -> Dict[str, float]:
        """Per event key, the score-weighted fraction of each location's
        signalling traces the event appeared in — the guided explorer's
        prior over enabled events.  Ratios again: duplication-invariant."""
        affinity: Dict[str, float] = {}
        for entry in self._apps.get(app, {}).values():
            weight = entry.score(self.weights)
            if weight <= 0.0 or entry.traces == 0:
                continue
            for key, count in entry.events.items():
                affinity[key] = affinity.get(key, 0.0) + weight * (
                    count / entry.traces
                )
        return affinity

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": SIGNAL_VERSION,
            "weights": {
                "density": self.weights.density,
                "near_miss": self.weights.near_miss,
                "mix": self.weights.mix,
                "escalation": self.weights.escalation,
            },
            "apps": {
                app: {
                    location: entry.to_dict()
                    for location, entry in sorted(bucket.items())
                }
                for app, bucket in sorted(self._apps.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SuspicionIndex":
        weights_data = data.get("weights") or {}
        weights = ScoreWeights(
            density=float(weights_data.get("density", DEFAULT_WEIGHTS.density)),
            near_miss=float(
                weights_data.get("near_miss", DEFAULT_WEIGHTS.near_miss)
            ),
            mix=float(weights_data.get("mix", DEFAULT_WEIGHTS.mix)),
            escalation=float(
                weights_data.get("escalation", DEFAULT_WEIGHTS.escalation)
            ),
        )
        index = cls(weights=weights)
        for app, bucket in (data.get("apps") or {}).items():
            index._apps[app] = {
                location: LocationSignal.from_dict(entry)
                for location, entry in bucket.items()
            }
        return index

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    # -- presentation --------------------------------------------------------

    def render(self, app: Optional[str] = None, limit: int = 10) -> str:
        """Text table of the top-scoring locations (all apps, or one)."""
        lines: List[str] = []
        for name in self.apps if app is None else [app]:
            ranked = self.top(name, limit)
            lines.append("%s (%d locations)" % (name, len(self._apps.get(name, {}))))
            if not ranked:
                lines.append("  (no signals)")
                continue
            lines.append(
                "  %-40s %7s %6s %6s %6s  %s"
                % ("location", "score", "racy", "near", "esc", "categories")
            )
            for location, score in ranked:
                entry = self._apps[name][location]
                lines.append(
                    "  %-40s %7.4f %6d %6d %6d  %s"
                    % (
                        location[:40],
                        score,
                        entry.racy_pairs,
                        entry.near_misses,
                        entry.escalated,
                        ",".join(entry.categories) or "-",
                    )
                )
        return "\n".join(lines)
