"""The UI Explorer — systematic testing of simulated applications.

Implements the paper's §5 component: depth-first generation of UI event
sequences up to a bound ``k``, one fresh run per sequence (backtracking is
re-execution from scratch, replaying the stored prefix), firing each event
only after the previous one is fully consumed (quiescence).

An application is anything implementing :class:`AppModel`: a factory that
builds a booted :class:`~repro.android.system.AndroidSystem` with the app
launched.

Invariants this module maintains:

* **Sequence-DB replay** — every run is recorded in a
  :class:`~repro.explorer.sequence_store.SequenceStore` as
  ``(event sequence, scheduling decisions, trace)``; because the runtime
  is deterministic per seed, replaying a stored prefix reproduces its
  trace byte-for-byte, which is what makes DFS-by-re-execution sound.
  A replay that *diverges* (a stored event no longer enabled) is
  recorded but never extended.
* **One event per quiescence** — events fire only when no thread can
  run and no message is pending, so each trace prefix is a complete
  consequence of the events fired so far (§5's dispatch discipline).
* **Corpus hand-off** — with ``trace_store=`` every finished trace is
  ingested into a :class:`repro.corpus.TraceStore` (content-addressed,
  so re-exploration deduplicates); see "Trace corpus & batch analysis"
  in ``docs/architecture.md``.

Observability: exploration emits ``explore`` / ``explore.sequence``
spans and ``explore.runs`` / ``explore.events`` counters through
:mod:`repro.obs` (schema in ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.android.system import AndroidSystem
from repro.android.views import UIEvent
from repro.core.trace import ExecutionTrace
from repro.obs import current_tracer

from .events import event_key, filter_events, find_event
from .sequence_store import RunRecord, SequenceStore


class AppModel:
    """Interface the explorer drives."""

    #: application name (used in reports and trace names)
    name: str = "app"

    def build(self, seed: int = 0) -> AndroidSystem:
        """Create a fresh system with the application launched (but not yet
        run — the explorer runs it to quiescence)."""
        raise NotImplementedError


@dataclass
class ExplorationResult:
    """Everything an exploration produced."""

    app_name: str
    store: SequenceStore
    depth: int
    runs_executed: int

    @property
    def traces(self) -> List[ExecutionTrace]:
        return [run.trace for run in self.store.runs if run.trace is not None]

    def ingest_into(self, trace_store) -> List:
        """Persist every generated trace into a
        :class:`repro.corpus.TraceStore`; returns the store entries."""
        entries = []
        for trace in self.traces:
            entries.extend(trace_store.ingest(trace, app=self.app_name))
        return entries

    def deepest_run(self) -> Optional[RunRecord]:
        runs = [r for r in self.store.runs if r.trace is not None]
        if not runs:
            return None
        return max(runs, key=lambda r: len(r.trace))

    def run_with_longest_trace(self) -> Optional[RunRecord]:
        return self.deepest_run()


class UIExplorer:
    """Bounded depth-first systematic explorer."""

    def __init__(
        self,
        app: AppModel,
        depth: int = 3,
        seed: int = 0,
        max_runs: Optional[int] = None,
        max_branching: Optional[int] = None,
        include_kinds: Optional[Sequence[str]] = None,
        exclude_kinds: Sequence[str] = ("rotate",),
        trace_store=None,
    ):
        self.app = app
        self.depth = depth
        self.seed = seed
        self.max_runs = max_runs
        self.max_branching = max_branching
        self.include_kinds = include_kinds
        self.exclude_kinds = tuple(exclude_kinds)
        self.store = SequenceStore()
        #: optional :class:`repro.corpus.TraceStore` — every generated
        #: trace is ingested into it as runs complete (the §5 "database"
        #: the offline Race Detector consumes).
        self.trace_store = trace_store
        self._runs_executed = 0

    # -- public API ---------------------------------------------------------------

    def explore(self) -> ExplorationResult:
        """Run the depth-first exploration; returns all recorded runs."""
        self._runs_executed = 0
        with current_tracer().span(
            "explore", app=self.app.name, depth=self.depth
        ) as span:
            self._explore_from(())
            span.set(runs=self._runs_executed)
        return ExplorationResult(
            app_name=self.app.name,
            store=self.store,
            depth=self.depth,
            runs_executed=self._runs_executed,
        )

    def run_sequence(self, sequence: Sequence[str]) -> RunRecord:
        """Execute (or replay) one event sequence and record it."""
        tracer = current_tracer()
        with tracer.span(
            "explore.sequence",
            app=self.app.name,
            sequence=",".join(sequence) or "-",
        ) as span:
            system = self.app.build(self.seed)
            system.run_to_quiescence()
            fired: List[str] = []
            for key in sequence:
                event = find_event(system.enabled_events(), key)
                if event is None:
                    break  # divergence: the stored event is no longer enabled
                system.fire(event)
                system.run_to_quiescence()
                fired.append(key)
            enabled = self._candidate_events(system)
            trace = system.finish("%s[%s]" % (self.app.name, ",".join(fired) or "-"))
            if self.trace_store is not None:
                self.trace_store.ingest(trace, app=self.app.name)
            self._runs_executed += 1
            tracer.count("explore.runs")
            tracer.count("explore.events", len(fired))
            span.set(ops=len(trace))
            return self.store.record(
                fired,
                trace,
                decisions=system.env.decisions,
                enabled_after=[event_key(e) for e in enabled],
            )

    # -- DFS -----------------------------------------------------------------------

    def _explore_from(self, prefix: Tuple[str, ...]) -> None:
        if self.max_runs is not None and self._runs_executed >= self.max_runs:
            return
        run = self.run_sequence(prefix)
        if tuple(run.sequence) != prefix:
            return  # replay diverged; do not extend a broken prefix
        if len(prefix) >= self.depth:
            return
        for key in run.enabled_after:
            if self.max_runs is not None and self._runs_executed >= self.max_runs:
                return
            extended = prefix + (key,)
            if not self.store.explored(extended):
                self._explore_from(extended)

    def _candidate_events(self, system: AndroidSystem) -> List[UIEvent]:
        events = filter_events(
            system.enabled_events(),
            include_kinds=self.include_kinds,
            exclude_kinds=self.exclude_kinds,
        )
        if self.max_branching is not None:
            events = events[: self.max_branching]
        return events


def explore(
    app: AppModel,
    depth: int = 3,
    seed: int = 0,
    max_runs: Optional[int] = None,
    **kwargs,
) -> ExplorationResult:
    """One-call exploration."""
    return UIExplorer(app, depth=depth, seed=seed, max_runs=max_runs, **kwargs).explore()
