"""Pipeline observability: hierarchical spans, counters, pluggable sinks.

The paper's evaluation (§6–7) is about *measured* pipeline behaviour —
trace lengths, coalescing ratios, closure cost per round, races per
phase — and every performance PR needs a before/after story.  This
package is the single instrumentation surface the whole pipeline shares:

* :class:`Tracer` / :func:`current_tracer` — span context managers with
  wall+CPU time, nesting, and exception capture; named counters/gauges;
* :mod:`repro.obs.sinks` — in-memory (default), JSONL event log, stderr
  summary table, and Chrome ``trace_event`` export
  (``chrome://tracing`` / Perfetto);
* cross-process merge — workers snapshot their tracer into a picklable
  dict, parents :meth:`Tracer.merge` it (the corpus batch pipeline does
  this through its existing result tuples).

Instrumentation is always compiled in and never changes results: the
default :data:`NULL_TRACER` records nothing (spans still measure wall
time so fields like ``analysis_seconds`` keep one source of truth), and
the differential tests in ``tests/test_obs.py`` pin that race reports
are identical with tracing on and off.

On top of the tracer sits the **run history** layer:

* :mod:`repro.obs.history` — append-only :class:`RunRecord` store
  (``runs.jsonl`` + index keyed by ``(trace_digest, config_digest)``),
  written by every CLI invocation and benchmark when a history dir is
  configured (``--history`` / ``$DROIDRACER_HISTORY``), inert otherwise;
* :mod:`repro.obs.regression` — span-by-span run comparison and the
  correctness/performance regression gate CI runs;
* :mod:`repro.obs.dashboard` — self-contained static HTML time series
  over the store.

CLI surface: ``--metrics`` (summary table on stderr), ``--trace-out
FILE`` (Chrome trace JSON), and ``--history DIR`` on ``run``, ``demo``,
``explore``, ``analyze``, ``corpus analyze``, and the table commands; a
``metrics`` block in ``--json`` reports; the ``droidracer obs
history|compare|gate|dashboard`` subcommand family over the store.
Schema, naming conventions, and a Perfetto walkthrough:
``docs/observability.md``.
"""

from .dashboard import render_dashboard, write_dashboard
from .history import (
    HISTORY_ENV,
    HistoryStore,
    RunRecord,
    combine_digests,
    environment_fingerprint,
    export_bench,
    export_suspicion,
    report_digest,
    resolve_history_dir,
    subtree_spans,
)
from .regression import (
    GateResult,
    GateViolation,
    RunComparison,
    SpanDelta,
    compare,
    gate,
)
from .sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    Sink,
    SummarySink,
    aggregate_spans,
    chrome_trace_dict,
    read_jsonl,
    render_summary,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "ChromeTraceSink",
    "GateResult",
    "GateViolation",
    "HISTORY_ENV",
    "HistoryStore",
    "JsonlSink",
    "MemorySink",
    "NULL_TRACER",
    "NullTracer",
    "RunComparison",
    "RunRecord",
    "Sink",
    "Span",
    "SpanDelta",
    "SpanRecord",
    "SummarySink",
    "Tracer",
    "aggregate_spans",
    "chrome_trace_dict",
    "combine_digests",
    "compare",
    "current_tracer",
    "environment_fingerprint",
    "export_bench",
    "export_suspicion",
    "gate",
    "read_jsonl",
    "render_dashboard",
    "render_summary",
    "report_digest",
    "resolve_history_dir",
    "set_tracer",
    "subtree_spans",
    "use_tracer",
    "write_dashboard",
]
