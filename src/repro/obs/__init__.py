"""Pipeline observability: hierarchical spans, counters, pluggable sinks.

The paper's evaluation (§6–7) is about *measured* pipeline behaviour —
trace lengths, coalescing ratios, closure cost per round, races per
phase — and every performance PR needs a before/after story.  This
package is the single instrumentation surface the whole pipeline shares:

* :class:`Tracer` / :func:`current_tracer` — span context managers with
  wall+CPU time, nesting, and exception capture; named counters/gauges;
* :mod:`repro.obs.sinks` — in-memory (default), JSONL event log, stderr
  summary table, and Chrome ``trace_event`` export
  (``chrome://tracing`` / Perfetto);
* cross-process merge — workers snapshot their tracer into a picklable
  dict, parents :meth:`Tracer.merge` it (the corpus batch pipeline does
  this through its existing result tuples).

Instrumentation is always compiled in and never changes results: the
default :data:`NULL_TRACER` records nothing (spans still measure wall
time so fields like ``analysis_seconds`` keep one source of truth), and
the differential tests in ``tests/test_obs.py`` pin that race reports
are identical with tracing on and off.

CLI surface: ``--metrics`` (summary table on stderr) and
``--trace-out FILE`` (Chrome trace JSON) on ``run``, ``analyze``, and
``corpus analyze``; a ``metrics`` block in ``--json`` reports.
Schema, naming conventions, and a Perfetto walkthrough:
``docs/observability.md``.
"""

from .sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    Sink,
    SummarySink,
    aggregate_spans,
    chrome_trace_dict,
    read_jsonl,
    render_summary,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "NULL_TRACER",
    "NullTracer",
    "Sink",
    "Span",
    "SpanRecord",
    "SummarySink",
    "Tracer",
    "aggregate_spans",
    "chrome_trace_dict",
    "current_tracer",
    "read_jsonl",
    "render_summary",
    "set_tracer",
    "use_tracer",
]
