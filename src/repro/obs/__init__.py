"""Pipeline observability: hierarchical spans, counters, pluggable sinks.

The paper's evaluation (§6–7) is about *measured* pipeline behaviour —
trace lengths, coalescing ratios, closure cost per round, races per
phase — and every performance PR needs a before/after story.  This
package is the single instrumentation surface the whole pipeline shares:

* :class:`Tracer` / :func:`current_tracer` — span context managers with
  wall+CPU time, nesting, and exception capture; named counters/gauges;
* :mod:`repro.obs.sinks` — in-memory (default), JSONL event log, stderr
  summary table, and Chrome ``trace_event`` export
  (``chrome://tracing`` / Perfetto);
* cross-process merge — workers snapshot their tracer into a picklable
  dict, parents :meth:`Tracer.merge` it (the corpus batch pipeline does
  this through its existing result tuples).

Instrumentation is always compiled in and never changes results: the
default :data:`NULL_TRACER` records nothing (spans still measure wall
time so fields like ``analysis_seconds`` keep one source of truth), and
the differential tests in ``tests/test_obs.py`` pin that race reports
are identical with tracing on and off.

On top of the tracer sits the **run history** layer:

* :mod:`repro.obs.history` — append-only :class:`RunRecord` store
  (``runs.jsonl`` + index keyed by ``(trace_digest, config_digest)``),
  written by every CLI invocation and benchmark when a history dir is
  configured (``--history`` / ``$DROIDRACER_HISTORY``), inert otherwise;
* :mod:`repro.obs.regression` — span-by-span run comparison and the
  correctness/performance regression gate CI runs;
* :mod:`repro.obs.dashboard` — self-contained static HTML time series
  over the store.

Alongside the post-hoc layers sits the **live telemetry** layer:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of labeled
  counters, gauges, and base-2 exponential :class:`Histogram`\\ s with
  interpolated quantiles, picklable order-independent snapshots, a
  Prometheus text renderer (:func:`render_prometheus`), and the
  :class:`SpanHistogramSink` tracer bridge (every finished span's wall
  time becomes histogram data, zero call-site changes);
* :mod:`repro.obs.logging` — :class:`JsonLogger`, JSON-lines events
  with correlation ids and the active span name
  (``serve --log-json``);
* :mod:`repro.obs.top` — ``droidracer obs top``, a live terminal view
  over ``/v1/metrics.json`` or a snapshot file.

CLI surface: ``--metrics`` (summary table on stderr), ``--trace-out
FILE`` (Chrome trace JSON), and ``--history DIR`` on ``run``, ``demo``,
``explore``, ``analyze``, ``corpus analyze``, and the table commands; a
``metrics`` block in ``--json`` reports; the ``droidracer obs
history|compare|gate|dashboard|top`` subcommand family.
Schema, naming conventions, and a Perfetto walkthrough:
``docs/observability.md``.
"""

from .dashboard import render_dashboard, write_dashboard
from .history import (
    HISTORY_ENV,
    HistoryStore,
    RunRecord,
    combine_digests,
    environment_fingerprint,
    export_bench,
    export_suspicion,
    report_digest,
    resolve_history_dir,
    subtree_spans,
)
from .logging import JsonLogger, NULL_LOGGER, NullLogger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    SpanHistogramSink,
    current_registry,
    render_prometheus,
    rss_bytes,
    set_registry,
    use_registry,
)
from .regression import (
    GateResult,
    GateViolation,
    RunComparison,
    SpanDelta,
    compare,
    gate,
)
from .sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    Sink,
    SummarySink,
    aggregate_spans,
    chrome_trace_dict,
    read_jsonl,
    render_summary,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "Gauge",
    "GateResult",
    "GateViolation",
    "HISTORY_ENV",
    "Histogram",
    "HistoryStore",
    "JsonLogger",
    "JsonlSink",
    "MemorySink",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_LOGGER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullLogger",
    "NullRegistry",
    "NullTracer",
    "RunComparison",
    "RunRecord",
    "Sink",
    "Span",
    "SpanDelta",
    "SpanHistogramSink",
    "SpanRecord",
    "SummarySink",
    "Tracer",
    "aggregate_spans",
    "chrome_trace_dict",
    "combine_digests",
    "compare",
    "current_registry",
    "current_tracer",
    "environment_fingerprint",
    "export_bench",
    "export_suspicion",
    "gate",
    "read_jsonl",
    "render_dashboard",
    "render_prometheus",
    "render_summary",
    "report_digest",
    "resolve_history_dir",
    "rss_bytes",
    "set_registry",
    "set_tracer",
    "subtree_spans",
    "use_registry",
    "use_tracer",
    "write_dashboard",
]
