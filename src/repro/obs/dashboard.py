"""Static HTML dashboard over the run-history store.

``droidracer obs dashboard`` renders one self-contained HTML file —
inline SVG, inline CSS, zero external dependencies, works from a
``file://`` URL — showing, per ``(trace, config)`` key, the time series
the evaluation cares about:

* saturation wall seconds (the ``closure.saturate`` span aggregate);
* closure memory bytes (``closure.memory_bytes``);
* node-coalescing reduction ratio (graph nodes / trace ops);
* reported race count.

A dedicated exploration panel sits above the per-key cards whenever the
store holds ``bench.exploration`` records: one small multiple per
strategy (guided / monkey / dynodroid / dfs) charting races found per
100 sequences across benchmark runs — the guided-vs-blind gap over
time, straight off each record's ``extra["exploration"]`` summary.
Likewise a service panel appears whenever ``bench.service`` records
exist, charting the histogram-derived latency quantiles (request
p50/p95/p99, job-run p95, cached-resubmit p95) from each record's
``service_latency`` payload.

Each chart is a single series (the key names it), so there are no
legends; every marker carries a native ``<title>`` tooltip with the
run id, date, and exact value, and a full run table sits below the
charts.  Light and dark render from the same markup via CSS custom
properties (the OS preference is honored, a ``data-theme`` stamp on
``<html>`` wins both ways).
"""

from __future__ import annotations

import html
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .history import HistoryStore, RunRecord

__all__ = ["render_dashboard", "write_dashboard"]

#: Chart geometry (one small multiple).
_W, _H = 300, 130
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 44, 14, 12, 22

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --ink-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --ink-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --border: rgba(255, 255, 255, 0.10);
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --ink-1: #ffffff;
  --ink-2: #c3c2b7;
  --ink-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
  --border: rgba(255, 255, 255, 0.10);
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 24px;
  background: var(--page);
  color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 14px 16px 10px;
  margin: 0 0 16px;
}
.card h2 { font-size: 14px; font-weight: 600; margin: 0; }
.card .key { color: var(--ink-muted); font-size: 12px; margin: 2px 0 8px; }
.row { display: flex; flex-wrap: wrap; gap: 8px; }
.chart { flex: 0 0 auto; }
.chart .title {
  font-size: 12px;
  color: var(--ink-2);
  margin: 0 0 2px 6px;
}
svg { display: block; }
table {
  border-collapse: collapse;
  width: 100%;
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  font-size: 12.5px;
}
th, td {
  text-align: left;
  padding: 6px 10px;
  border-top: 1px solid var(--gridline);
  white-space: nowrap;
}
th { color: var(--ink-2); font-weight: 600; border-top: none; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.empty { color: var(--ink-muted); font-size: 12px; padding: 28px 6px; }
"""


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return "{:,}".format(int(value))
    if abs(value) >= 100:
        return "{:,.0f}".format(value)
    if abs(value) >= 1:
        return "%.2f" % value
    return "%.4f" % value


def _fmt_bytes(value: float) -> str:
    for unit, div in (("MB", 1e6), ("KB", 1e3)):
        if abs(value) >= div:
            return "%.1f%s" % (value / div, unit)
    return "%dB" % value


def _ticks(lo: float, hi: float) -> List[float]:
    if hi <= lo:
        return [lo]
    return [lo, (lo + hi) / 2.0, hi]


def _chart_svg(
    points: Sequence[Tuple[RunRecord, float]],
    fmt: Callable[[float], str],
) -> str:
    """One small-multiple line chart: 2px line, >=8px markers with a
    2px surface ring, hairline gridlines, native tooltips."""
    if not points:
        return '<div class="empty">no data recorded</div>'
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    if hi == lo:
        lo, hi = lo - max(abs(lo) * 0.1, 0.5), hi + max(abs(hi) * 0.1, 0.5)
    x0, x1 = _PAD_L, _W - _PAD_R
    y0, y1 = _H - _PAD_B, _PAD_T

    def x_at(i: int) -> float:
        if len(points) == 1:
            return (x0 + x1) / 2.0
        return x0 + (x1 - x0) * i / (len(points) - 1)

    def y_at(v: float) -> float:
        return y0 + (y1 - y0) * (v - lo) / (hi - lo)

    parts = [
        '<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">'
        % (_W, _H, _W, _H)
    ]
    for tick in _ticks(lo, hi):
        ty = y_at(tick)
        parts.append(
            '<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" '
            'stroke="var(--gridline)" stroke-width="1"/>' % (x0, ty, x1, ty)
        )
        parts.append(
            '<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle" '
            'font-size="10" fill="var(--ink-muted)" '
            'style="font-variant-numeric: tabular-nums">%s</text>'
            % (x0 - 6, ty, html.escape(fmt(tick)))
        )
    parts.append(
        '<line x1="%d" y1="%d" x2="%d" y2="%d" '
        'stroke="var(--baseline)" stroke-width="1"/>' % (x0, y0, x1, y0)
    )
    if len(points) > 1:
        coords = " ".join(
            "%.1f,%.1f" % (x_at(i), y_at(v)) for i, (_, v) in enumerate(points)
        )
        parts.append(
            '<polyline points="%s" fill="none" stroke="var(--series-1)" '
            'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
            % coords
        )
    for i, (record, value) in enumerate(points):
        when = datetime.fromtimestamp(
            record.timestamp, tz=timezone.utc
        ).strftime("%Y-%m-%d %H:%M UTC")
        tooltip = "run %s · %s · %s" % (record.run_id[:12], when, fmt(value))
        parts.append(
            '<circle cx="%.1f" cy="%.1f" r="4" fill="var(--series-1)" '
            'stroke="var(--surface-1)" stroke-width="2">'
            "<title>%s</title></circle>"
            % (x_at(i), y_at(value), html.escape(tooltip))
        )
    parts.append(
        '<text x="%d" y="%d" font-size="10" fill="var(--ink-muted)">run 1</text>'
        % (x0, _H - 6)
    )
    if len(points) > 1:
        parts.append(
            '<text x="%d" y="%d" text-anchor="end" font-size="10" '
            'fill="var(--ink-muted)">run %d</text>' % (x1, _H - 6, len(points))
        )
    parts.append("</svg>")
    return "".join(parts)


def _metric_series(
    records: Sequence[RunRecord],
    value_of: Callable[[RunRecord], Optional[float]],
) -> List[Tuple[RunRecord, float]]:
    out: List[Tuple[RunRecord, float]] = []
    for record in records:
        value = value_of(record)
        if value is not None:
            out.append((record, float(value)))
    return out


def _saturation_seconds(record: RunRecord) -> Optional[float]:
    row = record.span_row("closure.saturate")
    if row is None:
        row = record.span_row("bench.saturation.incremental")
    return row.get("wall_seconds") if row else None


def _closure_memory(record: RunRecord) -> Optional[float]:
    if record.closure:
        return record.closure.get("memory_bytes")
    return None


def _reduction_ratio(record: RunRecord) -> Optional[float]:
    if record.closure:
        return record.closure.get("reduction_ratio")
    return None


#: The four per-key charts: (title, extractor, value formatter).
_METRICS: List[Tuple[str, Callable, Callable[[float], str]]] = [
    ("saturation wall (s)", _saturation_seconds, lambda v: "%.4gs" % v),
    ("closure memory", _closure_memory, _fmt_bytes),
    ("coalescing ratio", _reduction_ratio, lambda v: "%.3g" % v),
    ("race reports", lambda r: float(r.race_count), _fmt_value),
]


#: Exploration-panel chart order: the strategy under test first, then
#: the blind baselines it is measured against.
_STRATEGY_ORDER = ("guided", "monkey", "dynodroid", "dfs")


def _exploration_summary(record: RunRecord) -> Optional[dict]:
    """The per-strategy aggregate of one ``bench.exploration`` record —
    ``extra["exploration"]``, falling back to the full payload's
    ``strategies`` map for records written without the summary."""
    extra = record.extra or {}
    summary = extra.get("exploration")
    if isinstance(summary, dict) and summary:
        return summary
    payload = extra.get("payload")
    if isinstance(payload, dict):
        strategies = payload.get("strategies")
        if isinstance(strategies, dict) and strategies:
            return strategies
    return None


def _exploration_panel(records: Sequence[RunRecord]) -> Optional[str]:
    """The strategy small-multiples card, or ``None`` without data."""
    bench = [
        record
        for record in records
        if record.command == "bench.exploration"
        and _exploration_summary(record) is not None
    ]
    if not bench:
        return None
    charts: List[str] = []
    for strategy in _STRATEGY_ORDER:

        def races_per_100(record: RunRecord, s: str = strategy) -> Optional[float]:
            stats = _exploration_summary(record).get(s)
            if isinstance(stats, dict):
                return stats.get("races_per_100_sequences")
            return None

        series = _metric_series(bench, races_per_100)
        if not series:
            continue
        charts.append(
            '<div class="chart"><p class="title">%s</p>%s</div>'
            % (html.escape(strategy), _chart_svg(series, _fmt_value))
        )
    if not charts:
        return None
    return (
        '<section class="card"><h2>exploration: races per 100 sequences</h2>'
        '<p class="key">%d benchmark run(s) · one chart per strategy '
        "(bench.exploration)</p>"
        '<div class="row">%s</div></section>' % (len(bench), "".join(charts))
    )


#: Service-latency charts: (title, ``service_latency`` family, quantile).
_SERVICE_CHARTS = (
    ("request p50", "http_request_seconds", "p50"),
    ("request p95", "http_request_seconds", "p95"),
    ("request p99", "http_request_seconds", "p99"),
    ("job run p95", "job_run_seconds", "p95"),
    ("cached resubmit p95", "cached_resubmit_seconds", "p95"),
)


def _service_latency(record: RunRecord) -> Optional[dict]:
    """The ``service_latency`` block of one ``bench.service`` payload."""
    payload = (record.extra or {}).get("payload")
    if isinstance(payload, dict):
        latency = payload.get("service_latency")
        if isinstance(latency, dict) and latency:
            return latency
    return None


def _service_panel(records: Sequence[RunRecord]) -> Optional[str]:
    """The service latency-quantile card, or ``None`` without data."""
    bench = [
        record
        for record in records
        if record.command == "bench.service"
        and _service_latency(record) is not None
    ]
    if not bench:
        return None
    charts: List[str] = []
    for title, family, quantile in _SERVICE_CHARTS:

        def value_of(
            record: RunRecord, f: str = family, q: str = quantile
        ) -> Optional[float]:
            stats = _service_latency(record).get(f)
            if isinstance(stats, dict):
                return stats.get(q)
            return None

        series = _metric_series(bench, value_of)
        if not series:
            continue
        charts.append(
            '<div class="chart"><p class="title">%s</p>%s</div>'
            % (html.escape(title), _chart_svg(series, lambda v: "%.1fms" % (v * 1e3)))
        )
    if not charts:
        return None
    return (
        '<section class="card"><h2>service: latency quantiles</h2>'
        '<p class="key">%d benchmark run(s) · histogram-derived p50/p95/p99 '
        "(bench.service)</p>"
        '<div class="row">%s</div></section>' % (len(bench), "".join(charts))
    )


def _key_label(record: RunRecord) -> str:
    subject = record.app or record.trace_name or record.trace_digest[:12]
    bits = [record.command, subject]
    if record.backend:
        bits.append(record.backend)
    return " · ".join(bits)


def render_dashboard(records: List[RunRecord], title: str = "droidracer runs") -> str:
    """The complete HTML document as a string."""
    by_key: Dict[str, List[RunRecord]] = {}
    for record in records:
        by_key.setdefault(record.key, []).append(record)
    # Busiest keys first: trend lines before single points.
    keys = sorted(by_key, key=lambda k: (-len(by_key[k]), by_key[k][0].timestamp))

    cards: List[str] = []
    exploration = _exploration_panel(records)
    if exploration is not None:
        cards.append(exploration)
    service = _service_panel(records)
    if service is not None:
        cards.append(service)
    for key in keys:
        group = by_key[key]
        charts: List[str] = []
        for chart_title, value_of, fmt in _METRICS:
            series = _metric_series(group, value_of)
            charts.append(
                '<div class="chart"><p class="title">%s</p>%s</div>'
                % (html.escape(chart_title), _chart_svg(series, fmt))
            )
        cards.append(
            '<section class="card"><h2>%s</h2>'
            '<p class="key">%d run(s) · key %s</p>'
            '<div class="row">%s</div></section>'
            % (
                html.escape(_key_label(group[-1])),
                len(group),
                html.escape(key[:12] + "…" + key.split(":")[1][:8]),
                "".join(charts),
            )
        )
    if not cards:
        cards.append('<section class="card"><p class="empty">no runs recorded'
                     " — append some with --history or $DROIDRACER_HISTORY"
                     "</p></section>")

    rows: List[str] = []
    for record in records:
        when = datetime.fromtimestamp(
            record.timestamp, tz=timezone.utc
        ).strftime("%Y-%m-%d %H:%M")
        rows.append(
            "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td>"
            '<td class="num">%s</td><td class="num">%d</td>'
            "<td>%s</td></tr>"
            % (
                html.escape(record.run_id[:12]),
                html.escape(when),
                html.escape(record.command),
                html.escape(record.app or record.trace_name or "—"),
                "{:,}".format(record.trace_length),
                record.race_count,
                html.escape((record.report_digest or "—")[:12]),
            )
        )

    generated = ""
    if records:
        generated = datetime.fromtimestamp(
            max(r.timestamp for r in records), tz=timezone.utc
        ).strftime("%Y-%m-%d %H:%M UTC")
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        "<title>%(title)s</title>\n<style>%(css)s</style>\n</head>\n<body>\n"
        "<h1>%(title)s</h1>\n"
        '<p class="sub">%(count)d recorded run(s)%(generated)s</p>\n'
        "%(cards)s\n"
        "<table>\n<thead><tr><th>run</th><th>when (UTC)</th><th>command</th>"
        '<th>subject</th><th class="num">trace ops</th>'
        '<th class="num">races</th><th>report digest</th></tr></thead>\n'
        "<tbody>\n%(rows)s\n</tbody>\n</table>\n"
        "</body>\n</html>\n"
        % {
            "title": html.escape(title),
            "css": _CSS,
            "count": len(records),
            "generated": (" · newest %s" % generated) if generated else "",
            "cards": "\n".join(cards),
            "rows": "\n".join(rows),
        }
    )


def write_dashboard(store: HistoryStore, out_path: str) -> int:
    """Render ``store`` to ``out_path``; returns the run count."""
    records = store.records()
    document = render_dashboard(records)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return len(records)
