"""Persistent run history: every pipeline invocation as a ``RunRecord``.

The paper's contribution is an *evaluation* — Tables 2–3 of trace
lengths, coalescing ratios, closure cost, and classified race counts —
and a reproduction needs the same longitudinal discipline: every
``droidracer`` run and every benchmark leaves a structured record that
later runs can be compared and gated against (:mod:`repro.obs.regression`)
or charted (:mod:`repro.obs.dashboard`).

The store is deliberately primitive:

* ``runs.jsonl`` — append-only, one :class:`RunRecord` per line;
* ``index.json`` — a derived index keyed by
  ``"<trace_digest>:<config_digest>"`` mapping each key to its run ids
  in append order (rebuilt on every append; ``runs.jsonl`` is the
  source of truth and the index is disposable).

Two digests identify what a run *did*:

* ``trace_digest`` / ``config_digest`` — the same content addresses the
  corpus subsystem keys its result cache on: together they name the
  input.  Multi-trace commands (``explore``, ``corpus analyze``,
  benchmark sweeps) combine their per-trace digests with
  :func:`combine_digests`.
* ``report_digest`` (:func:`report_digest`) — the *correctness* half of
  a race report: every field except wall-clock timing
  (``analysis_seconds``) and measured memory (``closure.memory_bytes``),
  which vary across machines and Python builds while the detected races
  must not.  Two runs on the same ``(trace, config)`` key with different
  report digests are a correctness regression, full stop — that is the
  invariant ``droidracer obs gate`` enforces.

Inertness contract: constructing a :class:`HistoryStore` touches
nothing on disk — only :meth:`HistoryStore.append` creates the
directory and files.  With no history dir configured
(no ``--history``, no ``$DROIDRACER_HISTORY``) the CLI never
instantiates a store and reports stay byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "HISTORY_ENV",
    "HistoryStore",
    "RunRecord",
    "combine_digests",
    "environment_fingerprint",
    "export_bench",
    "export_suspicion",
    "report_digest",
    "resolve_history_dir",
    "subtree_spans",
]

#: Environment variable supplying the default ``--history`` directory.
HISTORY_ENV = "DROIDRACER_HISTORY"

#: Store file names (under the history directory).
RUNS_FILE = "runs.jsonl"
INDEX_FILE = "index.json"

#: ``report_digest`` ignores these: wall time and measured memory vary
#: run-to-run and machine-to-machine while the report's *races* must
#: not; ``trace_name`` is presentation (the same trace content analyzed
#: from two paths carries two names but one answer).
_VOLATILE_REPORT_FIELDS = ("analysis_seconds", "trace_name")
_VOLATILE_CLOSURE_FIELDS = ("memory_bytes", "peak_rss_bytes")


def resolve_history_dir(explicit: Optional[str] = None) -> Optional[str]:
    """The history directory for this invocation: an explicit
    ``--history`` value wins, then ``$DROIDRACER_HISTORY``, then none
    (history disabled — the inert default)."""
    if explicit:
        return explicit
    env = os.environ.get(HISTORY_ENV)
    return env if env else None


def report_digest(report_dict: dict) -> str:
    """Digest of a race report's correctness-bearing fields.

    Stable across machines, Python versions, and repeat runs: volatile
    measurements (``analysis_seconds``, ``closure.memory_bytes``) are
    dropped before hashing, everything else — the races themselves,
    pair counts, node/trace statistics, closure rule-edge counts — is
    canonically serialized.  A changed digest for an already-seen
    ``(trace_digest, config_digest)`` key means the detector's *answer*
    changed.
    """
    payload = {
        k: v for k, v in report_dict.items() if k not in _VOLATILE_REPORT_FIELDS
    }
    closure = payload.get("closure")
    if isinstance(closure, dict):
        payload["closure"] = {
            k: v for k, v in closure.items() if k not in _VOLATILE_CLOSURE_FIELDS
        }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def combine_digests(digests: Iterable[str]) -> str:
    """One digest for a multi-trace run (explore, corpus batch, bench
    sweep): order-independent, so re-analyzing the same set under the
    same config lands on the same history key."""
    blob = "\n".join(sorted(digests))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def environment_fingerprint() -> dict:
    """Where a record was produced: enough to explain cross-machine
    performance deltas, never part of any digest."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "git_rev": _git_rev(),
    }


def _git_rev() -> Optional[str]:
    """Best-effort current commit hash (``None`` outside a checkout)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def subtree_spans(records: Iterable, root_id: int) -> List:
    """The span records forming ``root_id``'s subtree (root included) —
    used to attribute one ``bench.app`` span's aggregates to one app's
    record when a table command runs many apps under a single tracer."""
    records = list(records)
    children: Dict[Optional[int], List] = {}
    for record in records:
        children.setdefault(record.parent_id, []).append(record)
    out: List = []
    stack = [r for r in records if r.span_id == root_id]
    while stack:
        record = stack.pop()
        out.append(record)
        stack.extend(children.get(record.span_id, ()))
    return out


@dataclass
class RunRecord:
    """One recorded pipeline run (or benchmark configuration sweep).

    ``run_id`` is assigned by :meth:`HistoryStore.append`; everything
    else is supplied by the producing command.  ``spans`` holds the
    per-name aggregate rows of :func:`repro.obs.sinks.aggregate_spans`
    (``name``/``count``/``wall_seconds``/``cpu_seconds``/
    ``self_seconds``/``errors``) — the regression gate compares runs
    span-row by span-row.
    """

    command: str
    trace_digest: str
    config_digest: str
    run_id: str = ""
    timestamp: float = 0.0
    app: Optional[str] = None
    trace_name: Optional[str] = None
    trace_count: int = 1
    trace_length: int = 0
    backend: Optional[str] = None
    saturation: Optional[str] = None
    enumeration: Optional[str] = None
    coalesce: Optional[bool] = None
    closure: Optional[dict] = None
    report_digest: Optional[str] = None
    race_count: int = 0
    racy_pairs: int = 0
    per_category: Dict[str, int] = field(default_factory=dict)
    spans: List[dict] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, Any] = field(default_factory=dict)
    environment: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """The index key: what was analyzed under which configuration."""
        return "%s:%s" % (self.trace_digest, self.config_digest)

    def span_row(self, name: str) -> Optional[dict]:
        for row in self.spans:
            if row.get("name") == name:
                return row
        return None

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "command": self.command,
            "app": self.app,
            "trace_name": self.trace_name,
            "trace_digest": self.trace_digest,
            "config_digest": self.config_digest,
            "trace_count": self.trace_count,
            "trace_length": self.trace_length,
            "backend": self.backend,
            "saturation": self.saturation,
            "enumeration": self.enumeration,
            "coalesce": self.coalesce,
            "closure": self.closure,
            "report_digest": self.report_digest,
            "race_count": self.race_count,
            "racy_pairs": self.racy_pairs,
            "per_category": dict(self.per_category),
            "spans": [dict(row) for row in self.spans],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "environment": dict(self.environment),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(
            command=data["command"],
            trace_digest=data["trace_digest"],
            config_digest=data["config_digest"],
            run_id=data.get("run_id", ""),
            timestamp=data.get("timestamp", 0.0),
            app=data.get("app"),
            trace_name=data.get("trace_name"),
            trace_count=data.get("trace_count", 1),
            trace_length=data.get("trace_length", 0),
            backend=data.get("backend"),
            saturation=data.get("saturation"),
            enumeration=data.get("enumeration"),
            coalesce=data.get("coalesce"),
            closure=data.get("closure"),
            report_digest=data.get("report_digest"),
            race_count=data.get("race_count", 0),
            racy_pairs=data.get("racy_pairs", 0),
            per_category=dict(data.get("per_category", {})),
            spans=[dict(row) for row in data.get("spans", ())],
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            environment=dict(data.get("environment", {})),
            extra=dict(data.get("extra", {})),
        )

    def describe(self) -> str:
        subject = self.app or self.trace_name or self.trace_digest[:12]
        return "%-12s  %-16s %-24s %-8s %d" % (
            self.run_id[:12],
            self.command,
            subject[:24],
            self.backend or "-",
            self.race_count,
        )


class RunRecordError(ValueError):
    """A history lookup failed (unknown id, ambiguous prefix, ...)."""


class HistoryStore:
    """Append-only run-history store under one directory.

    Construction is free of side effects — the directory and files are
    only created by :meth:`append` (the inertness contract: configuring
    a history dir must not write anything until there is a record to
    write).
    """

    def __init__(self, root: str):
        self.root = str(root)

    # -- paths ---------------------------------------------------------------

    @property
    def runs_path(self) -> str:
        return os.path.join(self.root, RUNS_FILE)

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_FILE)

    def exists(self) -> bool:
        return os.path.exists(self.runs_path)

    def __len__(self) -> int:
        return len(self.records())

    # -- write ---------------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        """Assign a ``run_id`` and timestamp, append to ``runs.jsonl``,
        rebuild ``index.json``.  Returns the (mutated) record."""
        if not record.timestamp:
            record.timestamp = time.time()
        if not record.environment:
            record.environment = environment_fingerprint()
        seq = self._count_lines()
        seed = json.dumps(
            [seq, record.timestamp, record.command, record.key], sort_keys=True
        )
        record.run_id = hashlib.sha256(seed.encode("utf-8")).hexdigest()[:16]
        os.makedirs(self.root, exist_ok=True)
        with open(self.runs_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        self._write_index()
        return record

    def _count_lines(self) -> int:
        if not os.path.exists(self.runs_path):
            return 0
        with open(self.runs_path, "r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    def _write_index(self) -> None:
        index: Dict[str, List[str]] = {}
        for record in self.records():
            index.setdefault(record.key, []).append(record.run_id)
        payload = {"keys": index, "runs": sum(len(v) for v in index.values())}
        with open(self.index_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")

    # -- read ----------------------------------------------------------------

    def records(
        self,
        command: Optional[str] = None,
        app: Optional[str] = None,
        key: Optional[str] = None,
    ) -> List[RunRecord]:
        """All records in append order, optionally filtered."""
        out: List[RunRecord] = []
        if not os.path.exists(self.runs_path):
            return out
        with open(self.runs_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = RunRecord.from_dict(json.loads(line))
                if command is not None and record.command != command:
                    continue
                if app is not None and record.app != app:
                    continue
                if key is not None and record.key != key:
                    continue
                out.append(record)
        return out

    def resolve(self, token: str) -> RunRecord:
        """A record by 1-based position (``"1"``, ``"-1"`` for latest)
        or by ``run_id`` prefix."""
        records = self.records()
        if not records:
            raise RunRecordError("history %s is empty" % self.root)
        try:
            pos = int(token)
        except ValueError:
            matches = [r for r in records if r.run_id.startswith(token)]
            if not matches:
                raise RunRecordError("no run with id prefix %r" % token)
            if len(matches) > 1:
                raise RunRecordError(
                    "run id prefix %r is ambiguous (%d matches)"
                    % (token, len(matches))
                )
            return matches[0]
        if pos == 0:
            raise RunRecordError("run positions are 1-based")
        index = pos - 1 if pos > 0 else pos
        try:
            return records[index]
        except IndexError:
            raise RunRecordError(
                "run position %d out of range (history holds %d)"
                % (pos, len(records))
            )

    def latest_by_key(
        self, records: Optional[List[RunRecord]] = None
    ) -> Dict[str, RunRecord]:
        """The newest record per ``(trace, config)`` key."""
        out: Dict[str, RunRecord] = {}
        for record in records if records is not None else self.records():
            out[record.key] = record
        return out


# -- derived benchmark views ----------------------------------------------------

#: ``command`` values benchmark scripts record under, and the derived
#: JSON file each one projects to (``obs history --export-bench``).
BENCH_VIEWS = {
    "bench.closure": "BENCH_closure.json",
    "bench.exploration": "BENCH_exploration.json",
    "bench.reachability": "BENCH_reachability.json",
    "bench.service": "BENCH_service.json",
    "bench.triage": "BENCH_triage.json",
}

#: File name of the :func:`export_suspicion` derived view.
SUSPICION_FILE = "suspicion_index.json"


def export_bench(store: HistoryStore, out_dir: str) -> List[str]:
    """Write the committed ``BENCH_*.json`` files as derived views of
    the history store: for each benchmark command, the latest record's
    ``extra["payload"]`` (the exact result document the benchmark
    produced) is written to its view file.  Returns the paths written.
    """
    written: List[str] = []
    records = store.records()
    for command, filename in BENCH_VIEWS.items():
        latest = None
        for record in records:
            if record.command == command and "payload" in record.extra:
                latest = record
        if latest is None:
            continue
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(latest.extra["payload"], handle, indent=2)
            handle.write("\n")
        written.append(path)
    return written


def export_suspicion(
    store: HistoryStore, out_dir: str, app: Optional[str] = None
) -> Optional[str]:
    """Write the mined suspicion index as a derived view, keyed like
    :func:`export_bench`: every record carrying ``extra["suspicion"]``
    signal documents contributes, and the result
    (``suspicion_index.json``) is exactly what
    ``GuidedExplorer`` would mine from this store.  Returns the path
    written, or ``None`` when no record carries signals."""
    from repro.explorer.suspicion import SuspicionIndex

    index = SuspicionIndex.mine(store.records(), app=app)
    if index.is_empty():
        return None
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, SUSPICION_FILE)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(index.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
