"""Structured JSON-lines event logging with correlation ids.

The service used ad-hoc ``print(..., file=sys.stderr)`` for operational
events, which is unparseable and loses the context an operator needs
("which job? which trace?").  :class:`JsonLogger` replaces that with one
JSON object per line::

    {"ts": 1754650000.123, "level": "info", "event": "job.done",
     "span": "service.job", "request_id": "req-000017",
     "job_id": "job-...", "trace_digest": "sha256:...",
     "config_digest": "sha256:...", "seconds": 0.04, "races": 2}

Conventions:

* ``event`` is dotted ``area.action`` (``request.done``, ``job.start``,
  ``pool.rebuild``), mirroring span and counter naming;
* correlation ids are plain fields — ``request_id`` is minted per HTTP
  request and propagated to the ``job.*`` events of the job that
  request submitted, which carry ``job_id``/``trace_digest``/
  ``config_digest``, so one ``grep`` follows a trace end to end;
* every record carries the active tracer span name under ``span``
  (when a tracer is live), so logs join against Chrome traces and span
  histograms on the same key.

:meth:`JsonLogger.bind` returns a child logger with fields pre-bound
(e.g. a per-request logger with ``request_id`` fixed); children share
the parent's stream and lock.  :data:`NULL_LOGGER` is the no-op default
so call sites never guard on "is logging on?".

Enabled via ``droidracer serve --log-json PATH`` (``-`` for stderr).
See ``docs/observability.md`` for the event schema.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, IO, Optional, Union

from .tracer import current_tracer

__all__ = [
    "JsonLogger",
    "NULL_LOGGER",
    "NullLogger",
]


class NullLogger:
    """Logging disabled: every call is a no-op."""

    enabled = False

    def log(self, event: str, level: str = "info", **fields: Any) -> None:
        pass

    def error(self, event: str, **fields: Any) -> None:
        pass

    def warn(self, event: str, **fields: Any) -> None:
        pass

    def bind(self, **fields: Any) -> "NullLogger":
        return self

    def close(self) -> None:
        pass


#: The shared no-op logger (structured logging off).
NULL_LOGGER = NullLogger()


class JsonLogger:
    """Append JSON-lines event records to a stream or file.

    Accepts a path (opened/closed by the logger), ``"-"`` (stderr, left
    open), or an open file object (left open).  Thread-safe: one lock
    serializes writes, and each record is a single ``write`` call so
    lines never interleave.  Non-serializable field values degrade to
    ``repr`` rather than raising — logging must never take down the
    request it describes.
    """

    enabled = True

    def __init__(
        self,
        target: Union[str, IO[str]],
        tracer: Optional[Any] = None,
        _parent: Optional["JsonLogger"] = None,
        _bound: Optional[Dict[str, Any]] = None,
    ):
        #: Where the ``span`` field comes from: an explicit tracer (the
        #: service passes its own, which is not the process global) or,
        #: when ``None``, whatever ``current_tracer()`` resolves to.
        self._tracer = tracer if tracer is not None else (
            _parent._tracer if _parent is not None else None
        )
        if _parent is not None:
            self._handle = _parent._handle
            self._lock = _parent._lock
            self._owns = False
        elif hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._lock = threading.Lock()
            self._owns = False
        elif target == "-":
            self._handle = sys.stderr
            self._lock = threading.Lock()
            self._owns = False
        else:
            self._handle = open(target, "a", encoding="utf-8")
            self._lock = threading.Lock()
            self._owns = True
        self._bound: Dict[str, Any] = dict(_bound or {})

    def bind(self, **fields: Any) -> "JsonLogger":
        """A child logger with ``fields`` merged into every record."""
        merged = dict(self._bound)
        merged.update(fields)
        return JsonLogger("", _parent=self, _bound=merged)

    def log(self, event: str, level: str = "info", **fields: Any) -> None:
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
        }
        tracer = self._tracer if self._tracer is not None else current_tracer()
        span = tracer.current_span_name()
        if span is not None:
            record["span"] = span
        record.update(self._bound)
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=repr)
        except Exception:  # a field whose repr() itself raises
            line = json.dumps({"ts": record["ts"], "level": "error",
                               "event": "log.unserializable", "source": event})
        with self._lock:
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
            except (OSError, ValueError):
                pass  # a torn pipe must not kill the server

    def error(self, event: str, **fields: Any) -> None:
        self.log(event, level="error", **fields)

    def warn(self, event: str, **fields: Any) -> None:
        self.log(event, level="warn", **fields)

    def close(self) -> None:
        if self._owns:
            try:
                self._handle.close()
            except OSError:
                pass
