"""Live metrics: labeled counters, gauges, and exponential histograms.

Where :mod:`repro.obs.tracer` answers *what happened* (a span tree you
read after the run), this module answers *what is happening* — compact
aggregates a live endpoint can serve on every scrape:

* **Counter** — monotonically increasing totals (requests served,
  traces triage-filtered).  Merging snapshots sums them.
* **Gauge** — point-in-time values (queue depth, RSS).  Numeric gauges
  merge as **max**, matching the tracer's gauge convention: worker
  order is nondeterministic, so "largest observed" is the only merge
  that is both meaningful and order-independent.
* **Histogram** — base-2 exponential buckets over positive values.
  A value ``v`` lands in the bucket with upper bound ``2**k`` where
  ``2**(k-1) < v <= 2**k`` (``math.frexp`` gives the exponent without
  logarithms).  Buckets are a sparse dict, so the dynamic range is
  wide (nanoseconds to gigabytes) at no cost for unused decades.
  Quantiles (:meth:`Histogram.quantile`) interpolate linearly inside
  the covering bucket and clamp to the observed min/max, which keeps
  ``q -> quantile(q)`` monotone — property-tested in
  ``tests/test_metrics.py``.

All three are addressed through a :class:`MetricsRegistry` of *families*
(one name + label-name tuple, many labeled children), mirroring the
Prometheus data model so :func:`render_prometheus` is a direct dump
(text exposition format v0.0.4).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain picklable dicts;
:meth:`MetricsRegistry.merge` is order-independent (counters and
histogram buckets sum, numeric gauges max), so BatchAnalyzer pool
workers can each record into a private registry and the parent can fold
the results in any completion order.

The process-global *current* registry defaults to
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons —
``current_registry().counter(...).inc()`` allocates nothing when
metrics are off, so hot paths may call it unconditionally.
:class:`SpanHistogramSink` bridges the tracer: attach it to a
:class:`~repro.obs.tracer.Tracer` and every finished span's wall time
feeds a histogram keyed by span name — existing instrumentation becomes
histogram data with zero call-site changes.

See ``docs/observability.md`` for naming conventions and the scrape
endpoints.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SpanHistogramSink",
    "current_registry",
    "render_prometheus",
    "rss_bytes",
    "set_registry",
    "use_registry",
]


# -- histogram -----------------------------------------------------------------

#: Bucket exponents are clamped to [_MIN_EXP, _MAX_EXP]: 2**-30 ~ 1ns as
#: seconds up to 2**30 ~ 1 GiB as bytes — one scheme covers both units.
_MIN_EXP = -30
_MAX_EXP = 30


def bucket_exponent(value: float) -> int:
    """The ``k`` with ``2**(k-1) < value <= 2**k`` (clamped).

    Non-positive values collapse into the smallest bucket: latencies and
    sizes are non-negative by construction, and a degenerate 0.0 (clock
    granularity) should count toward the count/sum without inventing a
    sign-aware bucket scheme.
    """
    if value <= 0.0:
        return _MIN_EXP
    mantissa, exp = math.frexp(value)  # value = mantissa * 2**exp, 0.5 <= m < 1
    if mantissa == 0.5:  # exact power of two sits on its bucket boundary
        exp -= 1
    return min(_MAX_EXP, max(_MIN_EXP, exp))


class Histogram:
    """Base-2 exponential histogram with interpolated quantiles.

    Thread-safe for ``observe``; ``snapshot``/``merge`` are guarded by
    the same lock.  State is four scalars plus a sparse exponent->count
    dict, so snapshots stay small and picklable no matter how many
    values were observed.
    """

    __slots__ = ("_lock", "buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        exp = bucket_exponent(value)
        with self._lock:
            self.buckets[exp] = self.buckets.get(exp, 0) + 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    # -- read-out --------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1), interpolated within the
        covering bucket and clamped to the observed min/max.  Returns
        0.0 for an empty histogram."""
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        target = q * self.count
        cumulative = 0
        for exp in sorted(self.buckets):
            in_bucket = self.buckets[exp]
            if cumulative + in_bucket >= target:
                lo = 0.0 if exp <= _MIN_EXP else 2.0 ** (exp - 1)
                hi = 2.0**exp
                fraction = (target - cumulative) / in_bucket
                value = lo + (hi - lo) * fraction
                return min(self.max, max(self.min, value))
            cumulative += in_bucket
        return self.max

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        with self._lock:
            return [self._quantile_locked(q) for q in qs]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "buckets": dict(self.buckets),
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
            }

    def merge(self, snap: dict) -> None:
        with self._lock:
            for exp, n in snap.get("buckets", {}).items():
                exp = int(exp)
                self.buckets[exp] = self.buckets.get(exp, 0) + n
            self.count += snap.get("count", 0)
            self.sum += snap.get("sum", 0.0)
            if snap.get("min") is not None:
                self.min = min(self.min, snap["min"])
            if snap.get("max") is not None:
                self.max = max(self.max, snap["max"])

    def to_json(self) -> dict:
        """Snapshot plus derived quantiles — the ``/v1/metrics.json``
        shape for one histogram child."""
        with self._lock:
            p50, p95, p99 = (self._quantile_locked(q) for q in (0.5, 0.95, 0.99))
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "p50": p50,
                "p95": p95,
                "p99": p99,
                "buckets": dict(self.buckets),
            }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Histogram":
        hist = cls()
        hist.merge(snap)
        return hist


# -- counters and gauges -------------------------------------------------------


class Counter:
    """Monotonic float total (per labeled child)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins value; ``set_function`` makes it lazy (resolved
    at collect/snapshot time — queue depth, RSS)."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._fn = None

    def set_function(self, fn: Callable[[], float]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return 0.0
        with self._lock:
            return self._value


# -- the null instrument (shared, allocation-free) -----------------------------


class _NullInstrument:
    """Stands in for every instrument of :class:`NullRegistry`.

    One shared instance answers every method, so disabled metrics cost
    a dict miss and an attribute call — no allocation on the hot path.
    """

    def labels(self, **_labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    value = 0.0


_NULL_INSTRUMENT = _NullInstrument()


# -- families ------------------------------------------------------------------

_KINDS = ("counter", "gauge", "histogram")


class MetricFamily:
    """One metric name + label names; children keyed by label values.

    A label-less family acts as its own single child: ``family.inc()``
    is ``family.labels().inc()``.
    """

    def __init__(self, name: str, kind: str, help: str, labelnames: Tuple[str, ...]):
        if kind not in _KINDS:
            raise ValueError("unknown metric kind: %r" % (kind,))
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram()

    def labels(self, **labels: str) -> Any:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "%s expects labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labels)))
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    # label-less convenience: the family is its single child
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self.labels().set_function(fn)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def quantile(self, q: float) -> float:
        return self.labels().quantile(q)

    @property
    def value(self) -> float:
        return self.labels().value

    def aggregate(self) -> Histogram:
        """All children folded into one histogram (histogram families
        only) — the cross-label quantile ``obs top`` renders."""
        merged = Histogram()
        for _key, child in self.children():
            merged.merge(child.snapshot())
        return merged


class MetricsRegistry:
    """A process- or service-scoped set of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create by name (the
    registered kind and label names must match on re-registration, so a
    typo cannot silently fork a family).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self, name: str, kind: str, help: str, labelnames: Tuple[str, ...]
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = MetricFamily(
                    name, kind, help, labelnames
                )
            elif family.kind != kind or family.labelnames != labelnames:
                raise ValueError(
                    "metric %r re-registered as %s%r (was %s%r)"
                    % (name, kind, labelnames, family.kind, family.labelnames)
                )
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, tuple(labelnames))

    def histogram(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, "histogram", help, tuple(labelnames))

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain picklable dict of every family — the cross-process
        wire format (workers snapshot, the parent merges)."""
        families = []
        for family in self.families():
            children = []
            for key, child in family.children():
                if family.kind == "counter":
                    data: Any = child.value
                elif family.kind == "gauge":
                    data = child.value
                else:
                    data = child.snapshot()
                children.append({"labels": list(key), "data": data})
            families.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "children": children,
                }
            )
        return {"pid": os.getpid(), "families": families}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` in: counters and histogram buckets
        sum, numeric gauges take the max — order-independent, so pool
        workers may land in any completion order."""
        for fam in snapshot.get("families", ()):
            family = self._family(
                fam["name"], fam["kind"], fam.get("help", ""),
                tuple(fam.get("labelnames", ())),
            )
            for child in fam.get("children", ()):
                labels = dict(zip(family.labelnames, child.get("labels", ())))
                instrument = family.labels(**labels)
                data = child.get("data")
                if family.kind == "counter":
                    instrument.inc(float(data))
                elif family.kind == "gauge":
                    instrument.set(max(instrument.value, float(data)))
                else:
                    instrument.merge(data)

    def to_json_dict(self) -> dict:
        """The ``/v1/metrics.json`` document: every family with values,
        histogram children carrying derived p50/p95/p99, plus a merged
        cross-label ``aggregate`` per histogram family."""
        families = []
        for family in self.families():
            children = []
            for key, child in family.children():
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    children.append({"labels": labels, **child.to_json()})
                else:
                    children.append({"labels": labels, "value": child.value})
            doc = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "children": children,
            }
            if family.kind == "histogram":
                doc["aggregate"] = family.aggregate().to_json()
            families.append(doc)
        return {"families": families}


class NullRegistry:
    """Metrics disabled: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        return _NULL_INSTRUMENT

    def families(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"pid": os.getpid(), "families": []}

    def merge(self, snapshot: dict) -> None:
        pass

    def to_json_dict(self) -> dict:
        return {"families": []}


#: The process-wide default registry (metrics off).
NULL_REGISTRY = NullRegistry()

_CURRENT = NULL_REGISTRY


def current_registry():
    """The process-global active registry (:data:`NULL_REGISTRY` by
    default)."""
    return _CURRENT


def set_registry(registry) -> object:
    """Install ``registry`` as current; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = registry
    return previous


class use_registry:
    """``with use_registry(r):`` — install for the block, restore after."""

    def __init__(self, registry):
        self.registry = registry
        self._previous = None

    def __enter__(self):
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_registry(self._previous)
        return False


# -- tracer bridge -------------------------------------------------------------


class SpanHistogramSink:
    """Tracer sink feeding every finished span's wall time into a
    histogram keyed by span name.

    Attach to a :class:`~repro.obs.tracer.Tracer` (``sinks=[...]``) and
    all existing span instrumentation becomes live histogram data —
    no call-site changes, and nothing is retained per span (duck-typed;
    deliberately not importing :class:`repro.obs.sinks.Sink` to keep
    this module import-free within the package).
    """

    def __init__(self, registry: MetricsRegistry, name: str = "droidracer_span_seconds"):
        self._family = registry.histogram(
            name, "wall seconds of finished tracer spans", ("span",)
        )
        self._errors = registry.counter(
            "droidracer_span_errors_total", "spans finished with status=error", ("span",)
        )

    def on_span(self, record) -> None:
        self._family.labels(span=record.name).observe(record.wall_seconds)
        if record.status == "error":
            self._errors.labels(span=record.name).inc()

    def on_close(self, tracer) -> None:
        pass


# -- Prometheus text exposition (v0.0.4) ---------------------------------------

#: Content type a scrape endpoint should serve.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames: Tuple[str, ...], key: Tuple[str, ...], extra: str = "") -> str:
    parts = [
        '%s="%s"' % (name, _escape_label(value))
        for name, value in zip(labelnames, key)
    ]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format v0.0.4.

    Histogram buckets are emitted cumulatively with ``le`` bounds at the
    powers of two that actually hold samples (plus ``+Inf``), so sparse
    exponents never inflate the scrape.
    """
    lines: List[str] = []
    for family in registry.families():
        lines.append("# HELP %s %s" % (family.name, family.help or family.name))
        lines.append("# TYPE %s %s" % (family.name, family.kind))
        for key, child in family.children():
            if family.kind in ("counter", "gauge"):
                lines.append(
                    "%s%s %s"
                    % (
                        family.name,
                        _labels_text(family.labelnames, key),
                        _format_value(child.value),
                    )
                )
                continue
            snap = child.snapshot()
            cumulative = 0
            for exp in sorted(snap["buckets"]):
                cumulative += snap["buckets"][exp]
                lines.append(
                    "%s_bucket%s %d"
                    % (
                        family.name,
                        _labels_text(
                            family.labelnames,
                            key,
                            'le="%s"' % _format_value(2.0**exp),
                        ),
                        cumulative,
                    )
                )
            lines.append(
                "%s_bucket%s %d"
                % (
                    family.name,
                    _labels_text(family.labelnames, key, 'le="+Inf"'),
                    snap["count"],
                )
            )
            labels = _labels_text(family.labelnames, key)
            lines.append(
                "%s_sum%s %s" % (family.name, labels, _format_value(snap["sum"]))
            )
            lines.append("%s_count%s %d" % (family.name, labels, snap["count"]))
    return "\n".join(lines) + "\n" if lines else ""


# -- process RSS ---------------------------------------------------------------


def rss_bytes() -> int:
    """Resident set size of this process in bytes (0 if unknown).

    Reads ``/proc/self/statm`` (Linux); falls back to the ``resource``
    module's peak RSS — a high-water mark, not the current value, but
    still the right order of magnitude for a memory gauge.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak) * 1024  # Linux reports KiB
    except Exception:
        return 0
