"""Cross-run regression analysis over the history store.

Two operations, both pure functions of :class:`~repro.obs.history.RunRecord`
lists (no I/O here — the CLI owns the stores):

* :func:`compare` — a span-by-span, counter-by-counter diff of two
  runs with a noise tolerance, for humans (``droidracer obs compare``);
* :func:`gate` — the CI contract (``droidracer obs gate``): exit
  non-zero when

  - **correctness drifts** — the race-report digest changed for an
    already-seen ``(trace_digest, config_digest)`` key.  Report digests
    exclude wall time and measured memory
    (:func:`repro.obs.history.report_digest`), so any difference means
    the detector's *answer* changed — there is no tolerance on this
    axis;
  - **performance drifts** — a span aggregate's wall time grew beyond
    ``threshold`` (a fraction: ``0.5`` = +50%) against the baseline,
    for spans whose baseline wall time is at least ``min_seconds``
    (sub-noise spans never gate).

Without a baseline store, :func:`gate` self-checks one store: every
key's records must agree on the report digest, and the latest record
per key is measured against its predecessor.  With a committed baseline
(CI mode), the current store's latest record per key is measured
against the baseline's latest record for the same key; keys absent
from the baseline are reported as unchecked, never as failures — a new
benchmark must not break the gate that predates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .history import RunRecord

__all__ = [
    "GateResult",
    "GateViolation",
    "RunComparison",
    "SpanDelta",
    "compare",
    "gate",
]


@dataclass
class SpanDelta:
    """One span name's wall/CPU movement between two runs."""

    name: str
    base_wall: float
    cur_wall: float
    base_cpu: float
    cur_cpu: float
    significant: bool

    @property
    def delta_wall(self) -> float:
        return self.cur_wall - self.base_wall

    @property
    def ratio(self) -> float:
        """``cur/base`` wall ratio (``inf`` for a new span)."""
        if self.base_wall <= 0.0:
            return float("inf") if self.cur_wall > 0.0 else 1.0
        return self.cur_wall / self.base_wall

    def describe(self) -> str:
        marker = " *" if self.significant else ""
        return "%-24s %9.4fs -> %9.4fs  (%+7.1f%%)%s" % (
            self.name,
            self.base_wall,
            self.cur_wall,
            (self.ratio - 1.0) * 100.0 if self.base_wall > 0 else float("inf"),
            marker,
        )


@dataclass
class RunComparison:
    """Everything :func:`compare` derives from two records."""

    base: RunRecord
    current: RunRecord
    tolerance: float
    span_deltas: List[SpanDelta] = field(default_factory=list)
    counter_diffs: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    closure_diffs: Dict[str, Tuple[object, object]] = field(default_factory=dict)
    report_drift: bool = False
    same_key: bool = True

    def significant(self) -> List[SpanDelta]:
        return [d for d in self.span_deltas if d.significant]

    def render(self) -> str:
        lines = [
            "comparing %s (%s) -> %s (%s)"
            % (
                self.base.run_id[:12] or "?",
                self.base.command,
                self.current.run_id[:12] or "?",
                self.current.command,
            )
        ]
        if not self.same_key:
            lines.append(
                "note: runs have different (trace, config) keys — timing "
                "deltas compare different workloads"
            )
        if self.report_drift:
            lines.append(
                "CORRECTNESS DRIFT: race-report digest changed "
                "(%s -> %s); races %d -> %d"
                % (
                    (self.base.report_digest or "-")[:12],
                    (self.current.report_digest or "-")[:12],
                    self.base.race_count,
                    self.current.race_count,
                )
            )
        elif self.same_key:
            lines.append(
                "report: identical digest, %d race(s)" % self.current.race_count
            )
        else:
            lines.append(
                "report: %d -> %d race(s) (digests not comparable across keys)"
                % (self.base.race_count, self.current.race_count)
            )
        lines.append("")
        lines.append(
            "%-24s %10s    %10s   %9s"
            % ("span", "base(s)", "current(s)", "delta")
        )
        for delta in self.span_deltas:
            lines.append(delta.describe())
        if not self.span_deltas:
            lines.append("(no span aggregates recorded)")
        lines.append(
            "(* = outside the %.0f%% noise tolerance)" % (self.tolerance * 100)
        )
        if self.counter_diffs:
            lines.append("")
            lines.append("counters that changed:")
            for name, (a, b) in sorted(self.counter_diffs.items()):
                lines.append("  %-24s %s -> %s" % (name, a, b))
        if self.closure_diffs:
            lines.append("")
            lines.append("closure statistics that changed:")
            for name, (a, b) in sorted(self.closure_diffs.items()):
                lines.append("  %-24s %s -> %s" % (name, a, b))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "base": self.base.run_id,
            "current": self.current.run_id,
            "tolerance": self.tolerance,
            "same_key": self.same_key,
            "report_drift": self.report_drift,
            "spans": [
                {
                    "name": d.name,
                    "base_wall": d.base_wall,
                    "cur_wall": d.cur_wall,
                    "base_cpu": d.base_cpu,
                    "cur_cpu": d.cur_cpu,
                    "significant": d.significant,
                }
                for d in self.span_deltas
            ],
            "counters": {
                name: list(pair) for name, pair in sorted(self.counter_diffs.items())
            },
            "closure": {
                name: list(pair) for name, pair in sorted(self.closure_diffs.items())
            },
        }


def compare(
    base: RunRecord, current: RunRecord, tolerance: float = 0.2
) -> RunComparison:
    """Diff two runs.  ``tolerance`` is the wall-time noise band as a
    fraction (0.2 = moves within ±20% are not flagged significant)."""
    comparison = RunComparison(
        base=base,
        current=current,
        tolerance=tolerance,
        same_key=base.key == current.key,
    )
    base_rows = {row["name"]: row for row in base.spans}
    cur_rows = {row["name"]: row for row in current.spans}
    names = list(base_rows)
    names.extend(n for n in cur_rows if n not in base_rows)
    for name in names:
        b = base_rows.get(name, {})
        c = cur_rows.get(name, {})
        base_wall = float(b.get("wall_seconds", 0.0))
        cur_wall = float(c.get("wall_seconds", 0.0))
        if base_wall > 0.0:
            significant = abs(cur_wall - base_wall) > tolerance * base_wall
        else:
            significant = cur_wall > 0.0
        comparison.span_deltas.append(
            SpanDelta(
                name=name,
                base_wall=base_wall,
                cur_wall=cur_wall,
                base_cpu=float(b.get("cpu_seconds", 0.0)),
                cur_cpu=float(c.get("cpu_seconds", 0.0)),
                significant=significant,
            )
        )
    comparison.span_deltas.sort(key=lambda d: -max(d.base_wall, d.cur_wall))
    for name in sorted(set(base.counters) | set(current.counters)):
        a, b = base.counters.get(name, 0), current.counters.get(name, 0)
        if a != b:
            comparison.counter_diffs[name] = (a, b)
    base_closure = base.closure or {}
    cur_closure = current.closure or {}
    for name in sorted(set(base_closure) | set(cur_closure)):
        a, b = base_closure.get(name), cur_closure.get(name)
        if a != b:
            comparison.closure_diffs[name] = (a, b)
    # Digest drift only means something on one (trace, config) key —
    # different keys legitimately produce different reports.
    if comparison.same_key and base.report_digest and current.report_digest:
        comparison.report_drift = base.report_digest != current.report_digest
    return comparison


@dataclass
class GateViolation:
    """One reason the gate fails."""

    kind: str  # "correctness" | "performance"
    key: str
    message: str
    base_run: str = ""
    current_run: str = ""

    def describe(self) -> str:
        return "[%s] %s" % (self.kind, self.message)


@dataclass
class GateResult:
    """What :func:`gate` decided and why."""

    violations: List[GateViolation] = field(default_factory=list)
    checked_keys: int = 0
    unchecked_keys: int = 0
    threshold: float = 0.5
    min_seconds: float = 0.05

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            "gate: %d key(s) checked, %d without a baseline "
            "(threshold +%.0f%%, min span %.3fs)"
            % (
                self.checked_keys,
                self.unchecked_keys,
                self.threshold * 100,
                self.min_seconds,
            )
        ]
        for violation in self.violations:
            lines.append("  " + violation.describe())
        lines.append("gate: %s" % ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checked_keys": self.checked_keys,
            "unchecked_keys": self.unchecked_keys,
            "threshold": self.threshold,
            "min_seconds": self.min_seconds,
            "violations": [
                {
                    "kind": v.kind,
                    "key": v.key,
                    "message": v.message,
                    "base_run": v.base_run,
                    "current_run": v.current_run,
                }
                for v in self.violations
            ],
        }


def _subject(record: RunRecord) -> str:
    return record.app or record.trace_name or record.trace_digest[:12]


def _check_pair(
    base: RunRecord,
    current: RunRecord,
    result: GateResult,
    threshold: float,
    min_seconds: float,
) -> None:
    """Append violations for one (baseline record, current record) pair."""
    if (
        base.report_digest
        and current.report_digest
        and base.report_digest != current.report_digest
    ):
        result.violations.append(
            GateViolation(
                kind="correctness",
                key=current.key,
                base_run=base.run_id,
                current_run=current.run_id,
                message=(
                    "%s (%s): race-report digest changed %s -> %s "
                    "(races %d -> %d)"
                    % (
                        _subject(current),
                        current.command,
                        (base.report_digest or "")[:12],
                        (current.report_digest or "")[:12],
                        base.race_count,
                        current.race_count,
                    )
                ),
            )
        )
    base_rows = {row["name"]: row for row in base.spans}
    for row in current.spans:
        name = row.get("name")
        b = base_rows.get(name)
        if b is None:
            continue
        base_wall = float(b.get("wall_seconds", 0.0))
        cur_wall = float(row.get("wall_seconds", 0.0))
        if base_wall < min_seconds:
            continue
        if cur_wall > base_wall * (1.0 + threshold):
            result.violations.append(
                GateViolation(
                    kind="performance",
                    key=current.key,
                    base_run=base.run_id,
                    current_run=current.run_id,
                    message=(
                        "%s (%s): span %s slowed %.4fs -> %.4fs "
                        "(%.2fx > %.2fx allowed)"
                        % (
                            _subject(current),
                            current.command,
                            name,
                            base_wall,
                            cur_wall,
                            cur_wall / base_wall,
                            1.0 + threshold,
                        )
                    ),
                )
            )


def gate(
    current: List[RunRecord],
    baseline: Optional[List[RunRecord]] = None,
    threshold: float = 0.5,
    min_seconds: float = 0.05,
) -> GateResult:
    """Run the regression gate.  See the module docstring for the
    contract; returns a :class:`GateResult` whose ``ok`` decides the
    exit code."""
    result = GateResult(threshold=threshold, min_seconds=min_seconds)

    if baseline is None:
        # Self-check mode: one store must be internally consistent.
        by_key: Dict[str, List[RunRecord]] = {}
        for record in current:
            by_key.setdefault(record.key, []).append(record)
        for key, records in by_key.items():
            digests = [r.report_digest for r in records if r.report_digest]
            if digests and len(set(digests)) > 1:
                first = next(r for r in records if r.report_digest)
                last = next(
                    r for r in reversed(records) if r.report_digest
                )
                result.violations.append(
                    GateViolation(
                        kind="correctness",
                        key=key,
                        base_run=first.run_id,
                        current_run=last.run_id,
                        message=(
                            "%s (%s): %d runs on one (trace, config) key "
                            "disagree on the race-report digest"
                            % (_subject(last), last.command, len(records))
                        ),
                    )
                )
            if len(records) >= 2:
                result.checked_keys += 1
                _check_pair(
                    records[-2], records[-1], result, threshold, min_seconds
                )
            else:
                result.unchecked_keys += 1
        return result

    base_latest: Dict[str, RunRecord] = {}
    for record in baseline:
        base_latest[record.key] = record
    cur_latest: Dict[str, RunRecord] = {}
    for record in current:
        cur_latest[record.key] = record
    for key, record in cur_latest.items():
        base = base_latest.get(key)
        if base is None:
            result.unchecked_keys += 1
            continue
        result.checked_keys += 1
        _check_pair(base, record, result, threshold, min_seconds)
    return result
