"""Span sinks: where finished :class:`~repro.obs.tracer.SpanRecord`\\ s go.

Every sink implements two methods:

* ``on_span(record)`` — called once per finished span, in completion
  order (children before parents, merged worker spans at merge time);
* ``on_close(tracer)`` — called by :meth:`Tracer.finish`; file sinks
  write/flush here, the summary sink prints here.

Provided sinks:

* :class:`MemorySink` — list of records in memory (the default; the
  tracer's ``spans``/``summary()``/``snapshot()`` read from it);
* :class:`JsonlSink` — one JSON object per line, spans as they finish,
  counters/gauges at close (:func:`read_jsonl` round-trips the file
  back into a mergeable snapshot);
* :class:`SummarySink` — human-readable per-span-name table (wall, CPU,
  self time, calls, histogram-derived p50/p95/max wall time, errors)
  plus counters/gauges, printed to stderr at close — the ``--metrics``
  CLI flag;
* :class:`ChromeTraceSink` — Chrome ``trace_event`` JSON, viewable in
  ``chrome://tracing`` or https://ui.perfetto.dev — the ``--trace-out``
  CLI flag.  Spans from merged worker snapshots appear as separate
  process lanes (records carry their origin pid).

See ``docs/observability.md`` for a worked Perfetto walkthrough.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, IO, List, Optional, Union

from .metrics import Histogram
from .tracer import SpanRecord

__all__ = [
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "Sink",
    "SummarySink",
    "aggregate_spans",
    "chrome_trace_dict",
    "read_jsonl",
    "render_summary",
]


class Sink:
    """Base class: a sink that ignores everything."""

    def on_span(self, record: SpanRecord) -> None:
        pass

    def on_close(self, tracer) -> None:
        pass


class MemorySink(Sink):
    """Keep every record in a list (zero-dependency default)."""

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []

    def on_span(self, record: SpanRecord) -> None:
        self.spans.append(record)


class JsonlSink(Sink):
    """Append-only JSONL event log.

    Span records stream out as they finish (``{"type": "span", ...}``);
    counters and gauges are written at close.  Accepts a path (opened
    and closed by the sink) or an open file object (left open).
    """

    def __init__(self, target: Union[str, IO[str]]):
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns = True

    def on_span(self, record: SpanRecord) -> None:
        payload = dict(record.to_dict(), type="span")
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def on_close(self, tracer) -> None:
        for name, value in sorted(tracer.counters.items()):
            self._handle.write(
                json.dumps({"type": "counter", "name": name, "value": value})
                + "\n"
            )
        for name, value in sorted(tracer.gauges.items()):
            self._handle.write(
                json.dumps({"type": "gauge", "name": name, "value": value})
                + "\n"
            )
        self._handle.flush()
        if self._owns:
            self._handle.close()


def read_jsonl(path: str) -> dict:
    """Load a :class:`JsonlSink` file back into a snapshot dict — the
    same shape :meth:`Tracer.snapshot` produces, so a logged run can be
    re-merged into a live tracer (``tracer.merge(read_jsonl(path))``)."""
    spans: List[dict] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, Any] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            kind = payload.pop("type", "span")
            if kind == "span":
                spans.append(payload)
            elif kind == "counter":
                counters[payload["name"]] = payload["value"]
            elif kind == "gauge":
                gauges[payload["name"]] = payload["value"]
    return {"spans": spans, "counters": counters, "gauges": gauges}


# -- aggregation and rendering --------------------------------------------------


def aggregate_spans(records: List[SpanRecord]) -> List[dict]:
    """Per-name aggregates, sorted by total wall time descending.

    ``self_seconds`` is wall time not covered by direct children —
    the number that tells you *which* phase to optimize when spans nest.
    """
    child_wall: Dict[Optional[int], float] = {}
    for record in records:
        if record.parent_id is not None:
            child_wall[record.parent_id] = (
                child_wall.get(record.parent_id, 0.0) + record.wall_seconds
            )
    rows: Dict[str, dict] = {}
    for record in records:
        row = rows.get(record.name)
        if row is None:
            row = rows[record.name] = {
                "name": record.name,
                "count": 0,
                "wall_seconds": 0.0,
                "cpu_seconds": 0.0,
                "self_seconds": 0.0,
                "errors": 0,
            }
        row["count"] += 1
        row["wall_seconds"] += record.wall_seconds
        row["cpu_seconds"] += record.cpu_seconds
        row["self_seconds"] += max(
            0.0, record.wall_seconds - child_wall.get(record.span_id, 0.0)
        )
        if record.status == "error":
            row["errors"] += 1
    return sorted(rows.values(), key=lambda row: -row["wall_seconds"])


def render_summary(
    records: List[SpanRecord],
    counters: Dict[str, float],
    gauges: Dict[str, Any],
) -> str:
    """The ``--metrics`` table: one row per span name plus counters.

    The p50/p95/max columns come from a per-name base-2
    :class:`~repro.obs.metrics.Histogram` over individual span wall
    times — tail latency, where the totals columns only show means.
    """
    rows = aggregate_spans(records)
    hists: Dict[str, Histogram] = {}
    for record in records:
        hist = hists.get(record.name)
        if hist is None:
            hist = hists[record.name] = Histogram()
        hist.observe(record.wall_seconds)
    width = max([len(row["name"]) for row in rows] + [4])
    lines = [
        "-- metrics " + "-" * max(0, width + 74 - 11),
        "%-*s %6s %9s %9s %9s %9s %9s %9s %4s"
        % (
            width,
            "span",
            "calls",
            "wall(s)",
            "self(s)",
            "cpu(s)",
            "p50(s)",
            "p95(s)",
            "max(s)",
            "err",
        ),
    ]
    for row in rows:
        hist = hists[row["name"]]
        p50, p95 = hist.quantiles((0.5, 0.95))
        lines.append(
            "%-*s %6d %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %4d"
            % (
                width,
                row["name"],
                row["count"],
                row["wall_seconds"],
                row["self_seconds"],
                row["cpu_seconds"],
                p50,
                p95,
                hist.snapshot()["max"] or 0.0,
                row["errors"],
            )
        )
    for name, value in sorted(counters.items()):
        lines.append("counter %-*s %s" % (width, name, value))
    for name, value in sorted(gauges.items()):
        lines.append("gauge   %-*s %s" % (width, name, value))
    return "\n".join(lines)


class SummarySink(Sink):
    """Print :func:`render_summary` to a stream (stderr) at close."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream
        self.spans: List[SpanRecord] = []

    def on_span(self, record: SpanRecord) -> None:
        self.spans.append(record)

    def on_close(self, tracer) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        print(render_summary(self.spans, tracer.counters, tracer.gauges), file=stream)


# -- Chrome trace_event export --------------------------------------------------


def chrome_trace_dict(
    records: List[SpanRecord],
    counters: Optional[Dict[str, float]] = None,
    gauges: Optional[Dict[str, Any]] = None,
) -> dict:
    """Records as a Chrome ``trace_event`` JSON object.

    Each span becomes one complete (``"ph": "X"``) event; timestamps are
    microseconds relative to the earliest span, so cross-process records
    (epoch-based ``start_wall``) line up on one timeline.  Thread lanes
    get ``thread_name`` metadata; counters/gauges ride in ``otherData``.
    """
    events: List[dict] = []
    epoch = min((r.start_wall for r in records), default=0.0)
    lanes: Dict[tuple, int] = {}
    for record in records:
        lane = (record.pid, record.thread)
        if lane not in lanes:
            tid = lanes[lane] = len(lanes)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": record.pid,
                    "tid": tid,
                    "args": {"name": record.thread},
                }
            )
        args = dict(record.attrs)
        if record.status != "ok":
            args["status"] = record.status
            if record.error:
                args["error"] = record.error
        events.append(
            {
                "ph": "X",
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ts": (record.start_wall - epoch) * 1e6,
                "dur": record.wall_seconds * 1e6,
                "pid": record.pid,
                "tid": lanes[lane],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(sorted((counters or {}).items())),
            "gauges": dict(sorted((gauges or {}).items())),
        },
    }


class ChromeTraceSink(Sink):
    """Write a ``chrome://tracing``/Perfetto-loadable JSON file at close."""

    def __init__(self, path: str):
        self.path = path
        self.spans: List[SpanRecord] = []

    def on_span(self, record: SpanRecord) -> None:
        self.spans.append(record)

    def on_close(self, tracer) -> None:
        payload = chrome_trace_dict(self.spans, tracer.counters, tracer.gauges)
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
