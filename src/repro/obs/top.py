"""``droidracer obs top`` — live terminal view over service telemetry.

Polls a running service's ``/v1/metrics.json`` (``--url``) or reads a
saved metrics document (``--snapshot``, e.g. from ``droidracer serve
--self-test --metrics-out FILE``) and renders one screen of the numbers
an operator wants first: request rate and latency quantiles, queue
depth and staleness, worker utilization, job wait-vs-run time, and the
triage tier's filter rate (a silent drop in filter rate means the cheap
tier stopped proving traces race-free — a correctness signal, not just
a performance one).

On a TTY the screen redraws every ``--interval`` seconds (qps computed
from the counter delta between polls); when stdout is **not** a TTY it
degrades to a single static snapshot and exits, so piping to a file or
running under CI does what you'd expect.  No dependencies beyond the
standard library — the "client" is ``urllib`` against the same asyncio
server the tests boot.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, IO, Optional

__all__ = ["derive_stats", "load_metrics", "render_screen", "run_top"]


def load_metrics(
    url: Optional[str] = None,
    snapshot: Optional[str] = None,
    timeout: float = 5.0,
) -> dict:
    """One metrics document, from a live service or a saved file."""
    if url:
        target = url.rstrip("/") + "/v1/metrics.json"
        with urllib.request.urlopen(target, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    if snapshot:
        with open(snapshot, "r", encoding="utf-8") as handle:
            return json.load(handle)
    raise ValueError("need a --url or a --snapshot file")


def _family(doc: dict, name: str) -> Optional[dict]:
    for fam in doc.get("families", ()):
        if fam.get("name") == name:
            return fam
    return None


def _gauge_value(doc: dict, name: str) -> float:
    fam = _family(doc, name)
    if not fam:
        return 0.0
    children = fam.get("children", ())
    return float(children[0]["value"]) if children else 0.0


def _aggregate(doc: dict, name: str) -> dict:
    fam = _family(doc, name)
    return (fam or {}).get("aggregate") or {"count": 0, "p50": 0, "p95": 0, "p99": 0}


def derive_stats(
    doc: dict,
    previous: Optional[dict] = None,
    interval: Optional[float] = None,
) -> Dict[str, Any]:
    """Screen-ready numbers from one (or two consecutive) documents.

    With a ``previous`` poll and the ``interval`` between them, qps is
    the counter delta over the wall interval; a single document falls
    back to the lifetime average (requests / uptime).
    """
    counters = doc.get("counters", {})
    requests = float(counters.get("service.requests", 0))
    uptime = float(doc.get("uptime_seconds", 0.0)) or 1e-9
    if previous is not None and interval:
        prev_requests = float(
            previous.get("counters", {}).get("service.requests", 0)
        )
        qps = max(0.0, requests - prev_requests) / interval
    else:
        qps = requests / uptime
    queue = doc.get("queue", {})
    pool = doc.get("pool", {})
    workers = int(pool.get("workers", 0)) or 1
    inflight = int(pool.get("inflight", 0))
    filtered = float(counters.get("service.triage_filtered", 0))
    escalated = float(counters.get("service.triage_escalated", 0))
    triaged = filtered + escalated
    return {
        "uptime_seconds": uptime,
        "qps": qps,
        "requests": int(requests),
        "request_latency": _aggregate(doc, "droidracer_http_request_seconds"),
        "job_wait": _aggregate(doc, "droidracer_job_wait_seconds"),
        "job_run": _aggregate(doc, "droidracer_job_run_seconds"),
        "queue_depth": int(queue.get("depth", 0)),
        "queue_oldest_seconds": _gauge_value(
            doc, "droidracer_queue_oldest_age_seconds"
        ),
        "queue_done": int(queue.get("done", 0)),
        "queue_failed": int(queue.get("failed", 0)),
        "workers": workers,
        "inflight": inflight,
        "utilization": inflight / workers,
        "pool_mode": pool.get("mode", "?"),
        "pool_restarts": int(pool.get("restarts", 0)),
        "triage_filtered": int(filtered),
        "triage_escalated": int(escalated),
        "triage_filter_rate": (filtered / triaged) if triaged else None,
        "rss_bytes": _gauge_value(doc, "droidracer_rss_bytes"),
        "jobs_completed": int(counters.get("service.jobs_completed", 0)),
        "races_found": int(counters.get("service.races_found", 0)),
    }


def _ms(seconds: Any) -> str:
    return "%.1fms" % (float(seconds or 0.0) * 1e3)


def _mib(num_bytes: float) -> str:
    return "%.1fMiB" % (num_bytes / (1 << 20))


def render_screen(stats: Dict[str, Any]) -> str:
    """The ``obs top`` screen as plain text (no escape codes — the
    caller owns clearing/looping)."""
    req = stats["request_latency"]
    run = stats["job_run"]
    wait = stats["job_wait"]
    rate = stats["triage_filter_rate"]
    lines = [
        "droidracer obs top — uptime %.1fs   qps %.1f   rss %s"
        % (stats["uptime_seconds"], stats["qps"], _mib(stats["rss_bytes"])),
        "",
        "requests  %-8d p50 %-9s p95 %-9s p99 %-9s (n=%d)"
        % (
            stats["requests"],
            _ms(req.get("p50")),
            _ms(req.get("p95")),
            _ms(req.get("p99")),
            int(req.get("count", 0)),
        ),
        "jobs      wait p50 %-9s run p50 %-9s p95 %-9s p99 %s"
        % (
            _ms(wait.get("p50")),
            _ms(run.get("p50")),
            _ms(run.get("p95")),
            _ms(run.get("p99")),
        ),
        "queue     depth %-4d oldest %-8s done %-6d failed %d"
        % (
            stats["queue_depth"],
            "%.1fs" % stats["queue_oldest_seconds"],
            stats["queue_done"],
            stats["queue_failed"],
        ),
        "workers   %d/%d busy (%.0f%% util, %s pool, %d restarts)"
        % (
            stats["inflight"],
            stats["workers"],
            stats["utilization"] * 100.0,
            stats["pool_mode"],
            stats["pool_restarts"],
        ),
        "triage    %s  (%d filtered / %d escalated)"
        % (
            "filter rate %.0f%%" % (rate * 100.0) if rate is not None else "no verdicts yet",
            stats["triage_filtered"],
            stats["triage_escalated"],
        ),
        "analysis  %d jobs completed, %d races found"
        % (stats["jobs_completed"], stats["races_found"]),
    ]
    return "\n".join(lines)


def run_top(
    url: Optional[str] = None,
    snapshot: Optional[str] = None,
    interval: float = 2.0,
    iterations: int = 0,
    stream: Optional[IO[str]] = None,
    force_live: bool = False,
) -> int:
    """Drive the view.  ``iterations=0`` means "until interrupted" on a
    TTY; a non-TTY stream always renders exactly one static snapshot.
    Returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    live = force_live or (hasattr(out, "isatty") and out.isatty())
    if snapshot and not url:
        live = False  # a file is a point-in-time document; looping is noise
    try:
        doc = load_metrics(url=url, snapshot=snapshot)
    except (OSError, urllib.error.URLError, json.JSONDecodeError, ValueError) as exc:
        print("obs top: %s" % exc, file=sys.stderr)
        return 1
    if not live:
        print(render_screen(derive_stats(doc)), file=out)
        return 0
    previous = doc
    shown = 0
    try:
        while True:
            out.write("\x1b[2J\x1b[H")  # clear + home
            out.write(render_screen(derive_stats(doc, None if shown == 0 else previous, interval)))
            out.write("\n")
            out.flush()
            shown += 1
            if iterations and shown >= iterations:
                return 0
            time.sleep(interval)
            previous = doc
            try:
                doc = load_metrics(url=url, snapshot=snapshot)
            except (OSError, urllib.error.URLError, json.JSONDecodeError) as exc:
                print("obs top: %s" % exc, file=sys.stderr)
                return 1
    except KeyboardInterrupt:
        return 0
