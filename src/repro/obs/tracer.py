"""Hierarchical span tracer: the measurement half of :mod:`repro.obs`.

One :class:`Tracer` instance owns everything a pipeline run measures:

* **spans** — ``with tracer.span("closure.saturate") as sp:`` captures
  wall time (``time.perf_counter``), CPU time (``time.process_time``),
  nesting (parent/depth via a per-thread stack), and exception status
  (a raising block is recorded with ``status="error"`` and re-raised);
* **counters** — monotonically accumulated named totals
  (``tracer.count("closure.fifo_edges", 3)``), summed on merge;
* **gauges** — last-write-wins named values (``tracer.gauge(...)``);
  on cross-process :meth:`Tracer.merge`, numeric gauges combine as
  **max** (worker order is nondeterministic, so "largest observed"
  is the only merge that is both meaningful and order-independent —
  e.g. peak closure memory across a pool); non-numeric gauges stay
  last-write-wins.

Finished spans are fanned out to pluggable sinks (:mod:`repro.obs.sinks`);
the default configuration is a single in-memory sink, so the tracer is
zero-dependency and allocation-light unless a file sink is attached.

The *current* tracer is process-global (:func:`current_tracer`), and the
default is :data:`NULL_TRACER` — a null object whose spans still measure
wall time (so timing fields like ``RaceReport.analysis_seconds`` have a
single source of truth) but record nothing and never touch a sink.
Instrumented code therefore calls ``current_tracer().span(...)``
unconditionally; enabling observability is swapping the current tracer
(:func:`use_tracer`), never a code change.

Cross-process protocol: a worker builds its own ``Tracer``, runs, and
ships ``tracer.snapshot()`` — a plain picklable dict — back with its
result; the parent calls :meth:`Tracer.merge` to graft the worker's span
tree (ids remapped, optionally re-rooted under a parent span) and sum
its counters.  ``SpanRecord.start_wall`` is ``time.time()``-based, so
merged spans stay on one comparable timeline across processes.

See ``docs/observability.md`` for the span/counter schema and naming
conventions.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class SpanRecord:
    """One finished span — the unit every sink consumes.

    ``start_wall`` is epoch-based (``time.time()``) so records from
    different processes share a timeline; ``wall_seconds`` is measured
    with ``time.perf_counter()`` for resolution.  ``cpu_seconds`` is
    process CPU time and includes the span's children.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    start_wall: float
    wall_seconds: float
    cpu_seconds: float
    status: str = "ok"  # "ok" | "error"
    error: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    thread: str = "MainThread"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_wall": self.start_wall,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            depth=data["depth"],
            start_wall=data["start_wall"],
            wall_seconds=data["wall_seconds"],
            cpu_seconds=data["cpu_seconds"],
            status=data.get("status", "ok"),
            error=data.get("error"),
            attrs=dict(data.get("attrs", {})),
            pid=data.get("pid", 0),
            thread=data.get("thread", "MainThread"),
        )


class Span:
    """Live handle yielded by :meth:`Tracer.span`.

    Usable inside the block (``sp.set(ops=123)`` attaches attributes)
    and after it — ``wall_seconds``/``cpu_seconds``/``status`` are final
    once the ``with`` block exits.
    """

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "start_wall",
        "wall_seconds",
        "cpu_seconds",
        "status",
        "error",
        "_t0",
        "_c0",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
        depth: int,
    ):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_wall = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.status = "ok"
        self.error: Optional[str] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (merged into ``attrs``)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.start_wall = time.time()
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        c1 = time.process_time()
        self.wall_seconds = t1 - self._t0
        self.cpu_seconds = c1 - self._c0
        if exc_type is not None:
            self.status = "error"
            self.error = "%s: %s" % (exc_type.__name__, exc)
        self.tracer._pop(self)
        return False  # never swallow


class _NullSpan:
    """Span stand-in used when tracing is disabled: measures wall time
    (timing fields still need one source of truth) and drops the rest."""

    __slots__ = ("_t0", "wall_seconds", "cpu_seconds", "status", "error")

    def __init__(self) -> None:
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.status = "ok"
        self.error: Optional[str] = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
        return False


class NullTracer:
    """Tracing disabled: spans time themselves, nothing is recorded."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NullSpan()

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def current_span_name(self) -> Optional[str]:
        return None


#: The process-wide default tracer (observability off).
NULL_TRACER = NullTracer()


def _is_numeric(value: Any) -> bool:
    """True for int/float gauge values (bool is a mode flag, not a
    magnitude — it keeps last-write-wins on merge)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class Tracer:
    """Collects spans, counters, and gauges; fans spans out to sinks.

    ``sinks`` defaults to a single in-memory sink
    (:class:`repro.obs.sinks.MemorySink`); pass an explicit list to
    change the fan-out.  Thread-safe: the span stack is per-thread
    (nesting follows each thread's own call structure) while records,
    counters, and gauges are shared under one lock.
    """

    enabled = True

    def __init__(self, sinks: Optional[Sequence] = None):
        from .sinks import MemorySink  # late import: sinks import SpanRecord

        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self.sinks = list(sinks) if sinks is not None else [MemorySink()]
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Any] = {}

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            self,
            name,
            attrs,
            span_id,
            parent.span_id if parent is not None else None,
            len(stack),
        )

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def current_span_name(self) -> Optional[str]:
        """Name of this thread's innermost open span (``None`` outside
        any span) — structured log records join against traces on it."""
        stack = self._stack()
        return stack[-1].name if stack else None

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)
        record = SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            depth=span.depth,
            start_wall=span.start_wall,
            wall_seconds=span.wall_seconds,
            cpu_seconds=span.cpu_seconds,
            status=span.status,
            error=span.error,
            attrs=span.attrs,
            pid=os.getpid(),
            thread=threading.current_thread().name,
        )
        self._emit(record)

    def _emit(self, record: SpanRecord) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.on_span(record)

    # -- counters and gauges --------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Any) -> None:
        with self._lock:
            self.gauges[name] = value

    # -- read-out -------------------------------------------------------------

    @property
    def spans(self) -> List[SpanRecord]:
        """Records held by the first in-memory sink (empty if none)."""
        from .sinks import MemorySink

        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.spans
        return []

    def summary(self) -> List[dict]:
        """Per-name aggregates over the in-memory records (see
        :func:`repro.obs.sinks.aggregate_spans`)."""
        from .sinks import aggregate_spans

        return aggregate_spans(self.spans)

    def metrics_dict(self) -> dict:
        """The ``metrics`` block emitted into ``--json`` reports."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": self.summary(),
        }

    def finish(self) -> None:
        """Flush every sink (summary tables print, files are written)."""
        for sink in self.sinks:
            sink.on_close(self)

    # -- cross-process merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """Plain picklable dict of everything recorded so far — ships a
        worker's span tree and counters across a process boundary."""
        return {
            "pid": os.getpid(),
            "spans": [record.to_dict() for record in self.spans],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def merge(self, snapshot: dict, parent: Optional[Span] = None) -> None:
        """Graft a :meth:`snapshot` into this tracer.

        Span ids are remapped to stay unique; root spans of the snapshot
        are re-parented under ``parent`` (when given) so a worker's tree
        nests below the span that dispatched it.  Counters are summed.
        Numeric gauges merge as **max** — pool workers finish in
        nondeterministic order, so any last-write-wins rule would make
        the merged value depend on scheduling; taking the maximum keeps
        the merge commutative and reads as "largest observed" (peak
        memory, largest trace).  Non-numeric gauges (mode strings and
        the like) keep last-write-wins.
        """
        records = [SpanRecord.from_dict(d) for d in snapshot.get("spans", ())]
        if records:
            with self._lock:
                offset = self._next_id
                self._next_id += max(r.span_id for r in records) + 1
            base_depth = parent.depth + 1 if parent is not None else 0
            for record in records:
                record.span_id += offset
                if record.parent_id is not None:
                    record.parent_id += offset
                elif parent is not None:
                    record.parent_id = parent.span_id
                record.depth += base_depth
                self._emit(record)
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            with self._lock:
                old = self.gauges.get(name)
                if _is_numeric(old) and _is_numeric(value):
                    self.gauges[name] = max(old, value)
                else:
                    self.gauges[name] = value


# -- the current tracer --------------------------------------------------------

_CURRENT = NULL_TRACER


def current_tracer():
    """The process-global active tracer (:data:`NULL_TRACER` by default)."""
    return _CURRENT


def set_tracer(tracer) -> object:
    """Install ``tracer`` as the current tracer; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    return previous


class use_tracer:
    """``with use_tracer(t):`` — install ``t`` for the block, restore after."""

    def __init__(self, tracer):
        self.tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(self._previous)
        return False
