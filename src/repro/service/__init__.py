"""``droidracer serve``: the async race-analysis service.

A stdlib-only asyncio HTTP front end over the sharded trace corpus —
device sessions POST execution traces, the service ingests, enqueues,
analyzes on a persistent worker pool, and serves job status plus
:class:`RaceReport` JSON identical to the offline ``droidracer
analyze`` path.  Layout:

* :mod:`repro.service.http` — minimal HTTP/1.1 parsing/serialization;
* :mod:`repro.service.jobs` — durable, bounded, idempotent job queue;
* :mod:`repro.service.app` — :class:`RaceService` (routes + scheduler +
  worker pool) and :class:`BackgroundServer` (thread-hosted instance
  for tests/benchmarks);
* :mod:`repro.service.client` — blocking :class:`ServiceClient` used by
  tests, the CI smoke driver, and ``serve --self-test``.

Full API and operational semantics: ``docs/service.md``.
"""

from .app import BackgroundServer, RaceService
from .client import ServiceClient, ServiceError
from .http import HttpError, Request, Response
from .jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    JobQueue,
    QueueFullError,
)

__all__ = [
    "BackgroundServer",
    "HttpError",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobQueue",
    "QueueFullError",
    "RaceService",
    "Request",
    "Response",
    "ServiceClient",
    "ServiceError",
]
